//! Durable snapshots and crash recovery (the persistence subsystem).
//!
//! The GDI-RMA engine is an in-memory system: the paper's evaluation
//! (§6) never survives a process failure. This module adds the missing
//! durability half for a serving deployment:
//!
//! * a **collective fuzzy checkpoint** ([`GdaRank::checkpoint`]): the
//!   fabric quiesces ([`rma::RankCtx::quiesce`], the drain barrier the
//!   server's group-commit cycle already rendezvouses on), every rank
//!   serializes its four windows (block pool, free lists, lock words,
//!   DHT partition *including the epoch word*) plus its explicit-index
//!   postings into a versioned per-rank snapshot file, and rank 0 writes
//!   a manifest carrying the metadata catalog and index definitions;
//! * a **per-rank logical redo log**: every committed transaction
//!   appends one frame describing its effects at holder granularity
//!   ([`RedoRecord`]), so recovery = *load latest snapshot + replay the
//!   log tail*. Appends are charged to the LogGP clock through
//!   [`rma::RankCtx::record_log_write`]; group commit amortizes the
//!   fixed submission overhead exactly as it amortizes RMA doorbells;
//! * **recovery** ([`recover`]): reads the `CURRENT` pointer, rebuilds
//!   the database object (catalog, index definitions) and a fresh
//!   fabric, then — collectively, inside `fabric.run` — restores every
//!   rank's windows and replays the redo tails
//!   ([`RecoveryPlan::restore_rank`]), ending with a fresh checkpoint
//!   so the next crash replays from a clean boundary.
//!
//! ## Snapshot publication protocol
//!
//! A checkpoint is crash-safe at every step: rank files and the
//! manifest are written to `ckpt-<id>/` under temporary names and
//! renamed — all *voted on* — before rank 0 atomically replaces the
//! `CURRENT` pointer. Only after a successful publish does each rank
//! truncate its redo log; truncation failure is non-fatal because every
//! log frame carries the checkpoint generation it was appended under,
//! so replay (and delta-patching scan views) skip frames from before
//! the published snapshot. That ordering means no unwind path ever has
//! to move `CURRENT` back: it only ever advances to a snapshot all
//! ranks have fully committed to.
//! A failed checkpoint (any rank; detected with an abort-vote
//! allreduce, like a collective commit) deletes its partial directory,
//! re-marks the dirty chunks it drained, and leaves the previous
//! snapshot — and the serving database — untouched.
//!
//! ## Incremental (delta) checkpoints
//!
//! Durability cost is proportional to *churn*, not database size: the
//! fabric tracks which chunks of each window were written since the
//! last checkpoint ([`rma::DirtyMap`], one chunk = one block), and a
//! checkpoint ordinarily writes only those chunks as a **delta** file
//! chained onto the last **full** snapshot. The manifest records the
//! chain (`full base, delta, delta, …`); recovery folds the chain in
//! order before replaying the redo tails. A checkpoint *rebases* to a
//! full snapshot when the chain is empty or too long, when a rank's
//! dirty fraction makes a delta pointless, or on explicit request
//! ([`GdaRank::checkpoint_full`]). Garbage collection never removes a
//! checkpoint directory still referenced by the current chain.
//!
//! ## Replay semantics
//!
//! Replay is collective and *phased*: ranks replay their logs one at a
//! time (barriers in between), so the lock-free structures see no
//! concurrency during recovery. Each [`RedoRecord::Upsert`] carries the
//! holder's post-commit **version** (bumped under the object's write
//! lock, hence strictly monotone per live object): a record applies
//! only if it is newer than the object's current state, which makes
//! replay idempotent and resolves cross-log ordering for objects
//! mutated from several ranks (e.g. mirror edge records). Objects are
//! re-materialized at their **original addresses**
//! ([`crate::blocks::BlockManager::acquire_at`]) so persisted `DPtr`
//! references stay valid. Replay runs in three sweeps, each phased over
//! all ranks:
//!
//! 1. **reserve** — claim every upserted primary block out of the free
//!    lists, so no replayed chain's continuation allocation can steal a
//!    primary another record still needs. Primaries actually *pulled
//!    from a free list* here are remembered: they were free at snapshot
//!    time, so later sweeps treat any bytes still decodable there (a
//!    stale pre-checkpoint incarnation — deletes leave data and chain
//!    pointers intact) as vacant rather than as an occupant, and any
//!    still unwritten after the last sweep (all their records refused
//!    by a tombstone) are released back to the pool;
//! 2. **deletes** — committed deletes land first, each leaving an
//!    identity-keyed *tombstone* `(primary, app_id, is_edge) →
//!    (version, rank, log position)`; their freed blocks go into a
//!    *deferred* set refilled into the pools only after the last sweep;
//! 3. **upserts** — in log order; a record at or before its object's
//!    tombstoned delete (same log: earlier position; cross-log: not a
//!    newer version) is refused, so a stale mirror update can never
//!    resurrect a deleted vertex, while a genuine recreate — or a
//!    different object reusing the block — applies cleanly.
//!
//! Two scope rules are deliberate (documented in
//! `docs/ARCHITECTURE.md`): catalog DDL (labels, property types, index
//! definitions) is durable at **checkpoint** granularity — take a
//! checkpoint after schema setup — and delete-then-recreate of the same
//! application id is assumed not to race across ranks between
//! checkpoints (the server's vertex routing guarantees this for all
//! served traffic).

use std::fs::{self, File, OpenOptions};
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use parking_lot::Mutex;
use rustc_hash::{FxHashMap, FxHashSet};

use gdi::{
    AppVertexId, Datatype, EntityType, GdiError, GdiResult, LabelId, Multiplicity, PTypeId,
    SizeType,
};
use rma::{CostModel, Fabric, WinId};

use crate::config::{GdaConfig, WIN_DATA, WIN_INDEX, WIN_SYSTEM, WIN_USAGE};
use crate::db::{GdaDb, GdaRank};
use crate::dptr::DPtr;
use crate::faults::{self, FaultMode, FaultPlane};
use crate::hio;
use crate::holder::Holder;
use crate::index::{IndexDef, IndexId, IndexShared, Posting};
use crate::meta::{MetaParts, MetaStore, PTypeDef};

/// Magic prefix of a per-rank snapshot file.
const SNAP_MAGIC: &[u8; 8] = b"GDASNAP\x01";
/// Magic prefix of a manifest file.
const MANIFEST_MAGIC: &[u8; 8] = b"GDAMANI\x01";
/// On-disk format version (bumped on incompatible layout changes).
/// v2: the checksum's FNV-1a prime was corrected (v1 shipped a
/// truncated constant), which changes every snapshot/manifest/frame
/// checksum — v1 files fail the checksum before the version check.
/// v3: the system window grew by one word (the per-rank topology-epoch
/// counter backing OLAP scan views), so every snapshot's window image
/// lengths changed.
/// v4: MVCC snapshot isolation — the block format gained a per-block
/// version-stamp word (`[next:8][stamp:8][payload]`), the holder header
/// grew to 48 bytes (commit epoch + archived-version pointer), the
/// system window gained three words (commit-epoch counter, read-epoch
/// watermark, min-active-snapshot), and the manifest's config encoding
/// gained the `mvcc`/`mvcc_chain_limit` fields.
/// v5: incremental checkpoints — snapshot files gained a kind byte
/// (full = 0, delta = 1) with delta files carrying the base id and
/// chunked window patches, the manifest gained the delta-chain list,
/// redo segments moved to constant per-rank names truncated at
/// publish, and every log frame gained the checkpoint generation it
/// was appended under.
const FORMAT_VERSION: u32 = 5;

/// Snapshot-kind byte: a self-contained full image.
const SNAP_FULL: u8 = 0;
/// Snapshot-kind byte: a delta patch over the previous chain member.
const SNAP_DELTA: u8 = 1;

/// A delta chain longer than this rebases to a full snapshot (bounds
/// recovery work and keeps gc able to reclaim old bases).
const DELTA_CHAIN_CAP: usize = 8;

// ---------------------------------------------------------------------
// binary encoding helpers
// ---------------------------------------------------------------------

/// FNV-1a over a byte slice (the snapshot/log checksum). The prime is
/// part of the on-disk format: changing it invalidates every existing
/// checksum and requires a [`FORMAT_VERSION`] bump.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Append-only little-endian encoder.
#[derive(Default)]
struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }
    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn bytes(&mut self, v: &[u8]) {
        self.u32(v.len() as u32);
        self.buf.extend_from_slice(v);
    }
    fn str(&mut self, v: &str) {
        self.bytes(v.as_bytes());
    }
}

/// Checked little-endian decoder over a byte slice.
struct Dec<'a> {
    b: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    fn new(b: &'a [u8]) -> Self {
        Self { b, pos: 0 }
    }
    fn take(&mut self, n: usize) -> GdiResult<&'a [u8]> {
        if self.pos + n > self.b.len() {
            return Err(GdiError::Io("truncated persistence record".into()));
        }
        let s = &self.b[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }
    fn u8(&mut self) -> GdiResult<u8> {
        Ok(self.take(1)?[0])
    }
    fn u32(&mut self) -> GdiResult<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }
    fn u64(&mut self) -> GdiResult<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
    fn bytes(&mut self) -> GdiResult<Vec<u8>> {
        let n = self.u32()? as usize;
        Ok(self.take(n)?.to_vec())
    }
    fn str(&mut self) -> GdiResult<String> {
        String::from_utf8(self.bytes()?).map_err(|_| GdiError::Io("invalid utf-8".into()))
    }
}

fn io_err(what: &str, e: std::io::Error) -> GdiError {
    GdiError::Io(format!("{what}: {e}"))
}

/// Sparse (zero-run-length) encoding of a window's raw bytes: windows
/// are mostly zero words, so a run-length split keeps snapshot files
/// proportional to *live* data.
fn encode_sparse(enc: &mut Enc, bytes: &[u8]) {
    debug_assert!(bytes.len().is_multiple_of(8));
    enc.u64(bytes.len() as u64);
    let words: Vec<u64> = bytes
        .chunks_exact(8)
        .map(|c| u64::from_le_bytes(c.try_into().unwrap()))
        .collect();
    let mut i = 0;
    let n = words.len();
    while i < n {
        let z0 = i;
        while i < n && words[i] == 0 {
            i += 1;
        }
        let zeros = (i - z0) as u32;
        let d0 = i;
        while i < n && words[i] != 0 {
            i += 1;
        }
        enc.u32(zeros);
        enc.u32((i - d0) as u32);
        for w in &words[d0..i] {
            enc.u64(*w);
        }
    }
}

/// Inverse of [`encode_sparse`].
fn decode_sparse(dec: &mut Dec) -> GdiResult<Vec<u8>> {
    let len = dec.u64()? as usize;
    if !len.is_multiple_of(8) {
        return Err(GdiError::Io("sparse window length not word-aligned".into()));
    }
    let mut out = Vec::with_capacity(len);
    while out.len() < len {
        let zeros = dec.u32()? as usize;
        let data = dec.u32()? as usize;
        if out.len() + (zeros + data) * 8 > len {
            return Err(GdiError::Io("sparse window run overflows".into()));
        }
        out.resize(out.len() + zeros * 8, 0);
        for _ in 0..data {
            out.extend_from_slice(&dec.u64()?.to_le_bytes());
        }
    }
    Ok(out)
}

// ---------------------------------------------------------------------
// redo records
// ---------------------------------------------------------------------

/// One logical effect of a committed transaction, as appended to the
/// committing rank's redo log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RedoRecord {
    /// The object at `primary` has (new) post-commit state `bytes`.
    Upsert {
        /// Raw `DPtr` of the object's primary block (its internal id).
        primary: u64,
        /// Application vertex id (0 for edge holders).
        app_id: u64,
        /// Is this a heavyweight-edge holder?
        is_edge: bool,
        /// Post-commit holder version (strictly monotone per live
        /// object; replay applies only newer records).
        version: u64,
        /// The serialized holder (what the write-back persisted).
        bytes: Vec<u8>,
    },
    /// The object at `primary` was deleted by the commit.
    Delete {
        /// Raw `DPtr` of the deleted object's primary block.
        primary: u64,
        /// Application vertex id (0 for edge holders).
        app_id: u64,
        /// Was this a heavyweight-edge holder?
        is_edge: bool,
        /// Version of the holder when it was deleted (replay deletes
        /// only objects at or below this version).
        version: u64,
    },
}

impl RedoRecord {
    fn encode(&self, enc: &mut Enc) {
        match self {
            RedoRecord::Upsert {
                primary,
                app_id,
                is_edge,
                version,
                bytes,
            } => {
                enc.u8(1);
                enc.u64(*primary);
                enc.u64(*app_id);
                enc.u8(*is_edge as u8);
                enc.u64(*version);
                enc.bytes(bytes);
            }
            RedoRecord::Delete {
                primary,
                app_id,
                is_edge,
                version,
            } => {
                enc.u8(2);
                enc.u64(*primary);
                enc.u64(*app_id);
                enc.u8(*is_edge as u8);
                enc.u64(*version);
            }
        }
    }

    fn decode(dec: &mut Dec) -> GdiResult<Self> {
        let tag = dec.u8()?;
        let primary = dec.u64()?;
        let app_id = dec.u64()?;
        let is_edge = dec.u8()? != 0;
        let version = dec.u64()?;
        match tag {
            1 => Ok(RedoRecord::Upsert {
                primary,
                app_id,
                is_edge,
                version,
                bytes: dec.bytes()?,
            }),
            2 => Ok(RedoRecord::Delete {
                primary,
                app_id,
                is_edge,
                version,
            }),
            _ => Err(GdiError::Io("unknown redo record tag".into())),
        }
    }
}

/// Frame a batch of records (one committed transaction) for the log:
/// `[payload_len u32][fnv1a u64][payload]`, where the payload starts
/// with the checkpoint generation the frame was appended under. Redo
/// files keep their name across checkpoints (truncation at publish),
/// so the generation is what lets replay — and the scan layer's
/// delta-patching — reject frames that predate the published snapshot
/// when a truncation failed or the process crashed between publish and
/// truncate.
fn encode_frame(records: &[RedoRecord], generation: u64) -> Vec<u8> {
    let mut payload = Enc::default();
    payload.u64(generation);
    payload.u32(records.len() as u32);
    for r in records {
        r.encode(&mut payload);
    }
    let mut out = Enc::default();
    out.u32(payload.buf.len() as u32);
    out.u64(fnv1a(&payload.buf));
    out.buf.extend_from_slice(&payload.buf);
    out.buf
}

/// Parse a log file's bytes into records, stopping at the first torn or
/// corrupt frame. Frames stamped with a generation below `min_gen`
/// parse but contribute no records: they describe commits already
/// captured by the snapshot being replayed onto. Returns the records
/// and the byte length of the valid prefix (the caller truncates the
/// file there before appending again).
fn parse_log(bytes: &[u8], min_gen: u64) -> (Vec<RedoRecord>, usize) {
    let mut records = Vec::new();
    let mut pos = 0usize;
    while pos + 12 <= bytes.len() {
        let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().unwrap()) as usize;
        let sum = u64::from_le_bytes(bytes[pos + 4..pos + 12].try_into().unwrap());
        let start = pos + 12;
        if start + len > bytes.len() {
            break; // torn tail
        }
        let payload = &bytes[start..start + len];
        if fnv1a(payload) != sum {
            break; // corrupt frame
        }
        let mut dec = Dec::new(payload);
        let Ok(generation) = dec.u64() else { break };
        let Ok(count) = dec.u32() else { break };
        let mut frame = Vec::with_capacity(count as usize);
        let mut ok = true;
        for _ in 0..count {
            match RedoRecord::decode(&mut dec) {
                Ok(r) => frame.push(r),
                Err(_) => {
                    ok = false;
                    break;
                }
            }
        }
        if !ok {
            break;
        }
        if generation >= min_gen {
            records.extend(frame);
        }
        pos = start + len;
    }
    (records, pos)
}

// ---------------------------------------------------------------------
// the store
// ---------------------------------------------------------------------

/// Where and how the persistence layer writes.
#[derive(Debug, Clone)]
pub struct PersistOptions {
    /// Directory holding snapshots, redo segments and the `CURRENT`
    /// pointer. Created on demand.
    pub dir: PathBuf,
    /// `fsync` snapshot files and every log append (durability against
    /// OS/machine failure, not just process failure). Off by default:
    /// tests and benches model the device cost through the LogGP clock
    /// instead of paying host fsyncs.
    pub sync: bool,
    /// Fabric execution backend for the fabric [`recover`] builds:
    /// `None` (default) follows the process default
    /// (`GDI_FABRIC_BACKEND`, else simulated), `Some(_)` pins one.
    pub backend: Option<rma::BackendKind>,
    /// Fault-injection plane probed at every persistence I/O boundary
    /// (see [`crate::faults`] for the point catalog). `None` (default)
    /// creates a private, empty plane; harnesses pass a shared one so
    /// the same registry covers the store and the fabric.
    pub faults: Option<Arc<FaultPlane>>,
}

impl PersistOptions {
    /// Options writing under `dir` without host-level fsync.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        Self {
            dir: dir.into(),
            sync: false,
            backend: None,
            faults: None,
        }
    }

    /// Pin the fabric execution backend used by [`recover`].
    pub fn backend(mut self, backend: rma::BackendKind) -> Self {
        self.backend = Some(backend);
        self
    }

    /// Share a fault-injection plane with the store (and, through
    /// [`recover`], with the fabric it builds).
    pub fn faults(mut self, plane: Arc<FaultPlane>) -> Self {
        self.faults = Some(plane);
        self
    }
}

/// Summary of one successful collective checkpoint.
#[derive(Debug, Clone)]
pub struct CheckpointReport {
    /// The published checkpoint id.
    pub id: u64,
    /// Was this a full snapshot (`true`) or a delta chained onto the
    /// previous chain member (`false`)?
    pub full: bool,
    /// Snapshot bytes written by each rank.
    pub per_rank_bytes: Vec<u64>,
    /// Dirty chunks shipped by each rank (0 for a full snapshot —
    /// every chunk shipped implicitly).
    pub per_rank_chunks: Vec<u64>,
    /// Simulated seconds the checkpoint stalled commits (quiesce entry
    /// to publish, max over ranks).
    pub sim_stall_s: f64,
    /// Wall-clock seconds of the collective (rank 0's view).
    pub wall_s: f64,
}

/// The shared persistence state of one database: per-rank redo writers,
/// the current checkpoint id, failure injection and the last checkpoint
/// report. Attached to a [`GdaDb`] via [`GdaDb::enable_persistence`] and
/// carried into every [`GdaRank`] at attach.
pub struct PersistStore {
    opts: PersistOptions,
    current: AtomicU64,
    /// The published delta chain, full base first, ending at `current`
    /// (empty at genesis). Everything in here is live recovery state:
    /// gc must not touch it.
    chain: Mutex<Vec<u64>>,
    writers: Vec<Mutex<Option<File>>>,
    log_errors: AtomicU64,
    unlogged_mutations: AtomicU64,
    faults: Arc<FaultPlane>,
    last_checkpoint: Mutex<Option<CheckpointReport>>,
}

impl std::fmt::Debug for PersistStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PersistStore")
            .field("dir", &self.opts.dir)
            .field("current", &self.current())
            .finish()
    }
}

impl PersistStore {
    fn new(opts: PersistOptions, nranks: usize, current: u64, chain: Vec<u64>) -> Arc<Self> {
        let faults = opts.faults.clone().unwrap_or_default();
        Arc::new(Self {
            opts,
            current: AtomicU64::new(current),
            chain: Mutex::new(chain),
            writers: (0..nranks).map(|_| Mutex::new(None)).collect(),
            log_errors: AtomicU64::new(0),
            unlogged_mutations: AtomicU64::new(0),
            faults,
            last_checkpoint: Mutex::new(None),
        })
    }

    /// The persistence directory.
    pub fn dir(&self) -> &Path {
        &self.opts.dir
    }

    /// The published checkpoint id (`0` = genesis: no snapshot yet,
    /// recovery re-initializes the storage and replays from the first
    /// log segment).
    pub fn current(&self) -> u64 {
        self.current.load(Ordering::Acquire)
    }

    /// The published snapshot chain: the full base first, every delta
    /// after it in order, ending at [`PersistStore::current`]. Empty at
    /// genesis. Recovery folds exactly these files.
    pub fn chain(&self) -> Vec<u64> {
        self.chain.lock().clone()
    }

    /// Redo-log appends that failed with an I/O error (the in-memory
    /// database kept serving; durability of those commits is lost).
    pub fn log_errors(&self) -> u64 {
        self.log_errors.load(Ordering::Relaxed)
    }

    /// Mutations applied *outside* the redo log (collective bulk loads,
    /// which are durable at checkpoint granularity and never logged).
    /// While this counter differs from what a cached scan view recorded
    /// at build time, the redo tail is not a complete delta — such
    /// views must rebuild rather than patch (`gda::scan`).
    pub fn unlogged_mutations(&self) -> u64 {
        self.unlogged_mutations.load(Ordering::Relaxed)
    }

    /// Record one unlogged mutation batch (bulk-load hook).
    pub(crate) fn note_unlogged_mutation(&self) {
        self.unlogged_mutations.fetch_add(1, Ordering::Relaxed);
    }

    /// The report of the most recent successful checkpoint.
    pub fn last_checkpoint(&self) -> Option<CheckpointReport> {
        self.last_checkpoint.lock().clone()
    }

    /// The fault-injection plane this store probes at every persistence
    /// I/O boundary (the catalog lives in [`crate::faults`]). Arm faults
    /// here to simulate failing disks, torn writes and read corruption;
    /// the plane is shared with the fabric when the store was created
    /// through [`PersistOptions::faults`] + [`rma::FabricBuilder::faults`].
    pub fn fault_plane(&self) -> &Arc<FaultPlane> {
        &self.faults
    }

    /// Probe `point` for `rank`. An armed [`FaultMode::Latency`] sleeps
    /// here and lets the operation proceed (the device stalled but
    /// worked); every other mode is returned for the caller to apply.
    pub(crate) fn probe_fault(&self, point: &str, rank: usize) -> Option<FaultMode> {
        match self.faults.check(point, rank)? {
            FaultMode::Latency(ns) => {
                std::thread::sleep(std::time::Duration::from_nanos(ns));
                None
            }
            mode => Some(mode),
        }
    }

    fn ckpt_dir(&self, id: u64) -> PathBuf {
        self.opts.dir.join(format!("ckpt-{id}"))
    }

    /// Does checkpoint `id`'s snapshot directory exist on disk?
    /// (Diagnostic/test helper — a failed checkpoint must leave none.)
    pub fn ckpt_dir_exists(&self, id: u64) -> bool {
        self.ckpt_dir(id).exists()
    }

    fn log_path(&self, rank: usize) -> PathBuf {
        self.opts.dir.join(format!("redo-rank-{rank}.log"))
    }

    fn current_path(&self) -> PathBuf {
        self.opts.dir.join("CURRENT")
    }

    /// Append one committed transaction's records to `rank`'s redo log.
    /// Returns the framed byte count (what the LogGP model charges).
    pub(crate) fn append(&self, rank: usize, records: &[RedoRecord]) -> GdiResult<usize> {
        let mut guard = self.writers[rank].lock();
        if guard.is_none() {
            let path = self.log_path(rank);
            let f = OpenOptions::new()
                .create(true)
                .append(true)
                .open(&path)
                .map_err(|e| io_err("open redo segment", e))?;
            if self.opts.sync {
                // the segment's directory entry must survive power loss
                // along with the synced appends that follow
                sync_dir(&self.opts.dir)?;
            }
            *guard = Some(f);
        }
        let frame = encode_frame(records, self.current());
        let f = guard.as_mut().unwrap();
        match self.probe_fault(faults::REDO_APPEND, rank) {
            Some(FaultMode::TornWrite(k)) => {
                // crash mid-append: the first `k` bytes land and stay —
                // recovery must truncate at the last checksum-valid frame
                let _ = f.write_all(&frame[..k.min(frame.len())]);
                let _ = f.sync_data();
                return Err(GdiError::Io("injected torn redo append".into()));
            }
            Some(_) => return Err(GdiError::Io("injected redo append failure".into())),
            None => {}
        }
        let pre_len = f.metadata().map(|m| m.len()).unwrap_or(0);
        if let Err(e) = f.write_all(&frame) {
            // A short write would leave a torn frame mid-log, and since
            // replay stops at the first invalid frame it would also orphan
            // every frame appended after it. Roll the file back to the
            // pre-append length so a *reported* failure loses only this
            // commit's durability, never the log's integrity.
            let _ = f.set_len(pre_len);
            return Err(io_err("append redo", e));
        }
        if self.opts.sync {
            f.sync_data().map_err(|e| io_err("sync redo", e))?;
        }
        Ok(frame.len())
    }

    pub(crate) fn note_log_error(&self) {
        self.log_errors.fetch_add(1, Ordering::Relaxed);
    }

    /// Position mark of `rank`'s redo log: `(checkpoint generation,
    /// byte length)`. A scan view records one mark per rank at build
    /// time; [`PersistStore::read_log_tail`] later replays exactly the
    /// records appended after the mark — the delta-patch source of
    /// `gda::scan`. The generation is load-bearing: the redo file keeps
    /// its name across checkpoints (truncation at publish), so a
    /// length-only mark taken before a checkpoint could silently
    /// address unrelated post-truncation bytes once commits regrow the
    /// file past the recorded length. Marks are only meaningful while
    /// no append is in flight (the quiescent-OLAP contract).
    pub fn log_mark(&self, rank: usize) -> (u64, u64) {
        let generation = self.current();
        let len = fs::metadata(self.log_path(rank))
            .map(|m| m.len())
            .unwrap_or(0);
        (generation, len)
    }

    /// Records appended to `rank`'s redo log after `mark`
    /// ([`PersistStore::log_mark`]). Returns `None` when the mark is no
    /// longer addressable — a checkpoint published since the mark was
    /// taken (the log was truncated, or is about to be inconsistent
    /// with the mark's length), or the file shrank — in which case the
    /// caller must fall back to a full rebuild.
    pub fn read_log_tail(&self, rank: usize, mark: (u64, u64)) -> Option<Vec<RedoRecord>> {
        use std::io::{Read, Seek, SeekFrom};
        let (generation, pos) = mark;
        if generation != self.current() {
            return None;
        }
        // seek to the mark and read only the tail: a delta patch must
        // cost O(delta), not O(total log since the last checkpoint)
        let mut f = match File::open(self.log_path(rank)) {
            Ok(f) => f,
            // a log that never received an append has no file; an
            // empty tail is only valid if the mark said "empty" too
            Err(_) if pos == 0 => return Some(Vec::new()),
            Err(_) => return None,
        };
        let len = f.metadata().ok()?.len();
        if pos > len {
            return None; // the file shrank: the mark is meaningless
        }
        f.seek(SeekFrom::Start(pos)).ok()?;
        let mut bytes = Vec::with_capacity((len - pos) as usize);
        f.read_to_end(&mut bytes).ok()?;
        // frames below the mark's generation are stale leftovers of a
        // failed truncation — already in the snapshot, not a delta
        let (records, _) = parse_log(&bytes, generation);
        Some(records)
    }

    /// Truncate `rank`'s redo log after a successful publish: every
    /// frame in it describes a commit the just-published chain already
    /// captures. Failure is non-fatal for the checkpoint — stale frames
    /// carry an older generation and are skipped at replay — so the
    /// caller only reports it.
    fn truncate_log(&self, rank: usize) -> GdiResult<()> {
        if self.probe_fault(faults::REDO_ROTATE, rank).is_some() {
            return Err(GdiError::Io("injected redo rotate failure".into()));
        }
        let mut guard = self.writers[rank].lock();
        // drop the append handle first: the next append reopens the
        // (now empty) file
        *guard = None;
        match OpenOptions::new().write(true).open(self.log_path(rank)) {
            Ok(f) => {
                f.set_len(0).map_err(|e| io_err("truncate redo log", e))?;
                if self.opts.sync {
                    f.sync_all().map_err(|e| io_err("sync redo log", e))?;
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
            Err(e) => return Err(io_err("truncate redo log", e)),
        }
        Ok(())
    }

    fn publish_current(&self, id: u64) -> GdiResult<()> {
        let tmp = self.opts.dir.join("CURRENT.tmp");
        fs::write(&tmp, format!("{id}\n")).map_err(|e| io_err("write CURRENT.tmp", e))?;
        if self.probe_fault(faults::CURRENT_RENAME, 0).is_some() {
            // crash between tmp write and rename: CURRENT still names
            // the previous chain, the orphan tmp file is harmless
            return Err(GdiError::Io("injected CURRENT publish failure".into()));
        }
        if self.opts.sync {
            File::open(&tmp)
                .and_then(|f| f.sync_all())
                .map_err(|e| io_err("sync CURRENT.tmp", e))?;
            // the snapshot dir and redo segments must be durably linked
            // before the pointer can durably name them
            sync_dir(&self.opts.dir)?;
        }
        fs::rename(&tmp, self.current_path()).map_err(|e| io_err("publish CURRENT", e))?;
        if self.opts.sync {
            sync_dir(&self.opts.dir)?;
        }
        Ok(())
    }

    /// Delete checkpoint directories that are no longer needed for
    /// recovery. A directory is kept if it belongs to the current
    /// published chain (a delta's base must outlive every delta
    /// stacked on it — deleting it would strand the whole chain) or if
    /// it is the immediately preceding checkpoint (so a failed *next*
    /// checkpoint can never strand the database without a recovery
    /// point). Entirely non-fatal: every step is best-effort, and a
    /// later checkpoint's gc catches up on anything left behind.
    fn gc(&self, id: u64) {
        if self.probe_fault(faults::SNAP_PRUNE, 0).is_some() {
            return; // simulated I/O failure: remove nothing
        }
        let keep: FxHashSet<u64> = self.chain.lock().iter().copied().collect();
        let Ok(entries) = fs::read_dir(&self.opts.dir) else {
            return;
        };
        for e in entries.flatten() {
            let name = e.file_name();
            let Some(name) = name.to_str() else { continue };
            if let Some(rest) = name.strip_prefix("ckpt-") {
                let Ok(n) = rest.parse::<u64>() else { continue };
                if n + 1 < id && !keep.contains(&n) {
                    let _ = fs::remove_dir_all(e.path());
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// manifest
// ---------------------------------------------------------------------

fn dtype_u8(d: Datatype) -> u8 {
    match d {
        Datatype::Uint8 => 0,
        Datatype::Uint16 => 1,
        Datatype::Uint32 => 2,
        Datatype::Uint64 => 3,
        Datatype::Int8 => 4,
        Datatype::Int16 => 5,
        Datatype::Int32 => 6,
        Datatype::Int64 => 7,
        Datatype::Float => 8,
        Datatype::Double => 9,
        Datatype::Bool => 10,
        Datatype::Char => 11,
        Datatype::Byte => 12,
    }
}

fn u8_dtype(v: u8) -> GdiResult<Datatype> {
    Ok(match v {
        0 => Datatype::Uint8,
        1 => Datatype::Uint16,
        2 => Datatype::Uint32,
        3 => Datatype::Uint64,
        4 => Datatype::Int8,
        5 => Datatype::Int16,
        6 => Datatype::Int32,
        7 => Datatype::Int64,
        8 => Datatype::Float,
        9 => Datatype::Double,
        10 => Datatype::Bool,
        11 => Datatype::Char,
        12 => Datatype::Byte,
        _ => return Err(GdiError::Io("bad datatype tag".into())),
    })
}

fn entity_u8(e: EntityType) -> u8 {
    match e {
        EntityType::Vertex => 0,
        EntityType::Edge => 1,
        EntityType::VertexEdge => 2,
    }
}

fn u8_entity(v: u8) -> GdiResult<EntityType> {
    Ok(match v {
        0 => EntityType::Vertex,
        1 => EntityType::Edge,
        2 => EntityType::VertexEdge,
        _ => return Err(GdiError::Io("bad entity tag".into())),
    })
}

fn mult_u8(m: Multiplicity) -> u8 {
    match m {
        Multiplicity::Single => 0,
        Multiplicity::Multi => 1,
    }
}

fn u8_mult(v: u8) -> GdiResult<Multiplicity> {
    Ok(match v {
        0 => Multiplicity::Single,
        1 => Multiplicity::Multi,
        _ => return Err(GdiError::Io("bad multiplicity tag".into())),
    })
}

fn stype_u8(s: SizeType) -> u8 {
    match s {
        SizeType::Fixed => 0,
        SizeType::Limited => 1,
        SizeType::NoLimit => 2,
    }
}

fn u8_stype(v: u8) -> GdiResult<SizeType> {
    Ok(match v {
        0 => SizeType::Fixed,
        1 => SizeType::Limited,
        2 => SizeType::NoLimit,
        _ => return Err(GdiError::Io("bad size-type tag".into())),
    })
}

fn encode_cfg(enc: &mut Enc, cfg: &GdaConfig) {
    enc.u64(cfg.block_size as u64);
    enc.u64(cfg.blocks_per_rank as u64);
    enc.u64(cfg.dht_buckets_per_rank as u64);
    enc.u64(cfg.dht_heap_per_rank as u64);
    enc.u64(cfg.max_lock_retries as u64);
    enc.u8(cfg.translation_cache as u8);
    enc.u64(cfg.translation_cache_capacity as u64);
    enc.u8(cfg.mvcc as u8);
    enc.u64(cfg.mvcc_chain_limit as u64);
}

fn decode_cfg(dec: &mut Dec) -> GdiResult<GdaConfig> {
    Ok(GdaConfig {
        block_size: dec.u64()? as usize,
        blocks_per_rank: dec.u64()? as usize,
        dht_buckets_per_rank: dec.u64()? as usize,
        dht_heap_per_rank: dec.u64()? as usize,
        max_lock_retries: dec.u64()? as usize,
        translation_cache: dec.u8()? != 0,
        translation_cache_capacity: dec.u64()? as usize,
        mvcc: dec.u8()? != 0,
        mvcc_chain_limit: dec.u64()? as usize,
    })
}

/// Everything a manifest carries (the shared, rank-independent half of
/// a snapshot).
struct Manifest {
    id: u64,
    name: String,
    nranks: usize,
    cfg: GdaConfig,
    /// The snapshot chain ending at `id`: the full base first, then
    /// every delta in order. Empty only for the genesis manifest (id
    /// 0, no snapshot). Recovery folds exactly these files and gc must
    /// keep them all.
    chain: Vec<u64>,
    meta: MetaParts,
    index_defs: Vec<IndexDef>,
    index_next_id: u32,
}

fn encode_manifest(m: &Manifest) -> Vec<u8> {
    let mut e = Enc::default();
    e.buf.extend_from_slice(MANIFEST_MAGIC);
    e.u32(FORMAT_VERSION);
    e.u64(m.id);
    e.str(&m.name);
    e.u32(m.nranks as u32);
    e.u32(m.chain.len() as u32);
    for c in &m.chain {
        e.u64(*c);
    }
    encode_cfg(&mut e, &m.cfg);
    e.u64(m.meta.epoch);
    e.u32(m.meta.next_label);
    e.u32(m.meta.next_ptype);
    e.u32(m.meta.labels.len() as u32);
    for l in &m.meta.labels {
        e.u32(l.id.0);
        e.str(&l.name);
    }
    e.u32(m.meta.ptypes.len() as u32);
    for p in &m.meta.ptypes {
        e.u32(p.id.0);
        e.str(&p.name);
        e.u8(dtype_u8(p.dtype));
        e.u8(entity_u8(p.entity));
        e.u8(mult_u8(p.mult));
        e.u8(stype_u8(p.stype));
        e.u64(p.count as u64);
    }
    e.u32(m.index_next_id);
    e.u32(m.index_defs.len() as u32);
    for d in &m.index_defs {
        e.u32(d.id.0);
        e.str(&d.name);
        e.u32(d.labels.len() as u32);
        for l in &d.labels {
            e.u32(l.0);
        }
        e.u32(d.ptypes.len() as u32);
        for p in &d.ptypes {
            e.u32(p.0);
        }
    }
    let sum = fnv1a(&e.buf);
    e.u64(sum);
    e.buf
}

fn decode_manifest(bytes: &[u8]) -> GdiResult<Manifest> {
    if bytes.len() < 16 {
        return Err(GdiError::Io("manifest too short".into()));
    }
    let (body, tail) = bytes.split_at(bytes.len() - 8);
    let sum = u64::from_le_bytes(tail.try_into().unwrap());
    if fnv1a(body) != sum {
        return Err(GdiError::Io("manifest checksum mismatch".into()));
    }
    let mut d = Dec::new(body);
    if d.take(8)? != MANIFEST_MAGIC {
        return Err(GdiError::Io("bad manifest magic".into()));
    }
    if d.u32()? != FORMAT_VERSION {
        return Err(GdiError::Io("unsupported manifest version".into()));
    }
    let id = d.u64()?;
    let name = d.str()?;
    let nranks = d.u32()? as usize;
    let nchain = d.u32()?;
    let mut chain = Vec::with_capacity(nchain as usize);
    for _ in 0..nchain {
        chain.push(d.u64()?);
    }
    if chain.last().copied().unwrap_or(id) != id {
        return Err(GdiError::Io("manifest chain does not end at id".into()));
    }
    let cfg = decode_cfg(&mut d)?;
    let epoch = d.u64()?;
    let next_label = d.u32()?;
    let next_ptype = d.u32()?;
    let nlabels = d.u32()?;
    let mut labels = Vec::with_capacity(nlabels as usize);
    for _ in 0..nlabels {
        let id = LabelId(d.u32()?);
        labels.push(crate::meta::LabelDef { id, name: d.str()? });
    }
    let nptypes = d.u32()?;
    let mut ptypes = Vec::with_capacity(nptypes as usize);
    for _ in 0..nptypes {
        ptypes.push(PTypeDef {
            id: PTypeId(d.u32()?),
            name: d.str()?,
            dtype: u8_dtype(d.u8()?)?,
            entity: u8_entity(d.u8()?)?,
            mult: u8_mult(d.u8()?)?,
            stype: u8_stype(d.u8()?)?,
            count: d.u64()? as usize,
        });
    }
    let index_next_id = d.u32()?;
    let ndefs = d.u32()?;
    let mut index_defs = Vec::with_capacity(ndefs as usize);
    for _ in 0..ndefs {
        let id = IndexId(d.u32()?);
        let name = d.str()?;
        let nl = d.u32()?;
        let mut dl = Vec::with_capacity(nl as usize);
        for _ in 0..nl {
            dl.push(LabelId(d.u32()?));
        }
        let np = d.u32()?;
        let mut dp = Vec::with_capacity(np as usize);
        for _ in 0..np {
            dp.push(PTypeId(d.u32()?));
        }
        index_defs.push(IndexDef {
            id,
            name,
            labels: dl,
            ptypes: dp,
        });
    }
    Ok(Manifest {
        id,
        name,
        nranks,
        cfg,
        chain,
        meta: MetaParts {
            labels,
            ptypes,
            next_label,
            next_ptype,
            epoch,
        },
        index_defs,
        index_next_id,
    })
}

fn manifest_from_db(db: &GdaDb, id: u64, chain: Vec<u64>) -> Manifest {
    let (index_defs, index_next_id) = db.indexes_shared().export_defs();
    Manifest {
        id,
        name: db.name.clone(),
        nranks: db.nranks(),
        cfg: db.cfg,
        chain,
        meta: db.meta_store().export_parts(),
        index_defs,
        index_next_id,
    }
}

/// `fsync` a directory so renames and file creations inside it survive
/// power loss (the rename itself is atomic but not durable until the
/// directory entry is flushed).
fn sync_dir(dir: &Path) -> GdiResult<()> {
    File::open(dir)
        .and_then(|d| d.sync_all())
        .map_err(|e| io_err("sync directory", e))
}

fn write_atomically(path: &Path, bytes: &[u8], sync: bool) -> GdiResult<()> {
    let tmp = path.with_extension("tmp");
    {
        let mut f = File::create(&tmp).map_err(|e| io_err("create snapshot tmp", e))?;
        f.write_all(bytes)
            .map_err(|e| io_err("write snapshot", e))?;
        if sync {
            f.sync_all().map_err(|e| io_err("sync snapshot", e))?;
        }
    }
    fs::rename(&tmp, path).map_err(|e| io_err("rename snapshot", e))?;
    if sync {
        if let Some(parent) = path.parent() {
            sync_dir(parent)?;
        }
    }
    Ok(())
}

/// Set up persistence for a fresh database: creates the directory,
/// writes the genesis manifest (checkpoint id 0: catalog as of now, no
/// window snapshot) and the `CURRENT` pointer. Fails if the directory
/// already contains a `CURRENT` (use [`recover`] for that).
pub(crate) fn create_store(db: &GdaDb, opts: PersistOptions) -> GdiResult<Arc<PersistStore>> {
    fs::create_dir_all(&opts.dir).map_err(|e| io_err("create persistence dir", e))?;
    let store = PersistStore::new(opts, db.nranks(), 0, Vec::new());
    if store.current_path().exists() {
        return Err(GdiError::AlreadyExists("persistence directory"));
    }
    let dir0 = store.ckpt_dir(0);
    fs::create_dir_all(&dir0).map_err(|e| io_err("create genesis dir", e))?;
    let manifest = encode_manifest(&manifest_from_db(db, 0, Vec::new()));
    write_atomically(&dir0.join("manifest.bin"), &manifest, store.opts.sync)?;
    store.publish_current(0)?;
    Ok(store)
}

// ---------------------------------------------------------------------
// checkpoint (collective)
// ---------------------------------------------------------------------

const ALL_WINDOWS: [WinId; 4] = [WIN_DATA, WIN_USAGE, WIN_SYSTEM, WIN_INDEX];

/// What a delta checkpoint ships for one rank: the chain member it
/// patches and the drained dirty bitmaps (one per window, in
/// [`ALL_WINDOWS`] order — the fabric tracks windows in `WinId` order,
/// which matches).
struct DeltaSpec<'a> {
    base: u64,
    bitmaps: &'a [Vec<u64>],
}

/// Write one rank's snapshot file — a self-contained full image, or
/// (with `delta`) only the chunks whose dirty bits are set. Returns
/// `(file bytes, chunks shipped)`; a full image reports 0 chunks.
fn write_rank_snapshot(
    eng: &GdaRank,
    store: &PersistStore,
    id: u64,
    dir: &Path,
    delta: Option<&DeltaSpec<'_>>,
) -> GdiResult<(u64, u64)> {
    let ctx = eng.ctx();
    let me = eng.rank();
    let injected = store.probe_fault(faults::SNAP_WRITE, me);
    if matches!(injected, Some(FaultMode::Error)) {
        return Err(GdiError::Io("injected checkpoint failure".into()));
    }
    let mut e = Enc::default();
    e.buf.extend_from_slice(SNAP_MAGIC);
    e.u32(FORMAT_VERSION);
    e.u64(id);
    e.u32(me as u32);
    e.u32(eng.nranks() as u32);
    encode_cfg(&mut e, eng.cfg());
    let mut shipped = 0u64;
    match delta {
        None => {
            e.u8(SNAP_FULL);
            for win in ALL_WINDOWS {
                let len = ctx.win_len_bytes(win);
                let mut buf = vec![0u8; len];
                ctx.get_bytes(win, me, 0, &mut buf);
                encode_sparse(&mut e, &buf);
            }
        }
        Some(d) => {
            let chunk = ctx.dirty_chunk_bytes();
            e.u8(SNAP_DELTA);
            e.u64(d.base);
            e.u32(chunk as u32);
            for win in ALL_WINDOWS {
                let len = ctx.win_len_bytes(win);
                let chunks: Vec<usize> = rma::dirty::set_chunks(&d.bitmaps[win.0])
                    .into_iter()
                    .filter(|c| c * chunk < len)
                    .collect();
                e.u64(len as u64);
                e.u32(chunks.len() as u32);
                for c in chunks {
                    let off = c * chunk;
                    let n = chunk.min(len - off);
                    let mut buf = vec![0u8; n];
                    ctx.get_bytes(win, me, off, &mut buf);
                    e.u32(c as u32);
                    e.bytes(&buf);
                    shipped += 1;
                }
            }
        }
    }
    let postings = eng.indexes().export_rank(me);
    e.u32(postings.len() as u32);
    for (ix, ps) in &postings {
        e.u32(ix.0);
        e.u64(ps.len() as u64);
        for p in ps {
            e.u64(p.vertex.raw());
            e.u64(p.app_id.0);
        }
    }
    let sum = fnv1a(&e.buf);
    e.u64(sum);
    // charge the device write to the simulated clock (sequential append
    // bandwidth, same device model as the redo log)
    ctx.charge_ns(ctx.cost_model().log_write(e.buf.len()));
    let path = dir.join(format!("rank-{me}.snap"));
    if let Some(FaultMode::TornWrite(k)) = injected {
        // crash mid-write: the tmp file keeps its partial bytes, the
        // rename never happens, and the checkpoint aborts collectively
        let _ = fs::write(path.with_extension("tmp"), &e.buf[..k.min(e.buf.len())]);
        return Err(GdiError::Io("injected torn snapshot write".into()));
    }
    write_atomically(&path, &e.buf, store.opts.sync)?;
    Ok((e.buf.len() as u64, shipped))
}

/// One rank's decoded snapshot file: the four window images (in
/// [`ALL_WINDOWS`] order: data, usage, system, index) plus the rank's
/// index postings. Shared with the reshard path, which lifts logical
/// contents out of the images instead of restoring them verbatim.
pub(crate) struct RankSnapshot {
    pub(crate) windows: Vec<Vec<u8>>,
    pub(crate) postings: Vec<(IndexId, Vec<Posting>)>,
    pub(crate) bytes: u64,
}

/// One window's delta patches: the window's byte length and the
/// `(chunk index, chunk bytes)` list.
type WindowPatches = (usize, Vec<(usize, Vec<u8>)>);

/// One decoded snapshot file, before chain folding: either a full
/// window image or a delta patch over the previous chain member.
enum SnapPiece {
    Full(RankSnapshot),
    Delta {
        base: u64,
        /// Per window, in [`ALL_WINDOWS`] order.
        patches: Vec<WindowPatches>,
        postings: Vec<(IndexId, Vec<Posting>)>,
        bytes: u64,
    },
}

/// Read and validate one snapshot file of checkpoint `id`, shard
/// `rank`, against `layout` (the config the shard was written under) —
/// no live fabric needed.
fn read_snapshot_piece(
    store: &PersistStore,
    id: u64,
    rank: usize,
    layout: &GdaConfig,
    nranks: usize,
) -> GdiResult<SnapPiece> {
    let path = store.ckpt_dir(id).join(format!("rank-{rank}.snap"));
    let mut bytes = fs::read(&path).map_err(|e| io_err("read rank snapshot", e))?;
    match store.probe_fault(faults::SNAP_READ, rank) {
        Some(FaultMode::BitFlip(k)) => faults::flip_bit(&mut bytes, k),
        Some(_) => return Err(GdiError::Io("injected snapshot read failure".into())),
        None => {}
    }
    if bytes.len() < 16 {
        return Err(GdiError::Io("rank snapshot too short".into()));
    }
    let (body, tail) = bytes.split_at(bytes.len() - 8);
    if fnv1a(body) != u64::from_le_bytes(tail.try_into().unwrap()) {
        return Err(GdiError::Io("rank snapshot checksum mismatch".into()));
    }
    let mut d = Dec::new(body);
    if d.take(8)? != SNAP_MAGIC {
        return Err(GdiError::Io("bad rank snapshot magic".into()));
    }
    if d.u32()? != FORMAT_VERSION {
        return Err(GdiError::Io("unsupported snapshot version".into()));
    }
    if d.u64()? != id || d.u32()? as usize != rank || d.u32()? as usize != nranks {
        return Err(GdiError::Io("rank snapshot identity mismatch".into()));
    }
    let cfg = decode_cfg(&mut d)?;
    if cfg.block_size != layout.block_size
        || cfg.blocks_per_rank != layout.blocks_per_rank
        || cfg.dht_buckets_per_rank != layout.dht_buckets_per_rank
        || cfg.dht_heap_per_rank != layout.dht_heap_per_rank
    {
        return Err(GdiError::Io("snapshot layout does not match config".into()));
    }
    let kind = d.u8()?;
    let mut windows = Vec::new();
    let mut delta = None;
    match kind {
        SNAP_FULL => {
            for _ in ALL_WINDOWS {
                windows.push(decode_sparse(&mut d)?);
            }
        }
        SNAP_DELTA => {
            let base = d.u64()?;
            let chunk = d.u32()? as usize;
            if chunk < 8 {
                return Err(GdiError::Io("bad delta chunk size".into()));
            }
            let mut patches = Vec::with_capacity(ALL_WINDOWS.len());
            for _ in ALL_WINDOWS {
                let win_len = d.u64()? as usize;
                let n = d.u32()? as usize;
                let mut ps = Vec::with_capacity(n);
                for _ in 0..n {
                    let c = d.u32()? as usize;
                    let data = d.bytes()?;
                    let off = c * chunk;
                    if off >= win_len || off + data.len() > win_len {
                        return Err(GdiError::Io("delta chunk out of window bounds".into()));
                    }
                    ps.push((off, data));
                }
                patches.push((win_len, ps));
            }
            delta = Some((base, patches));
        }
        _ => return Err(GdiError::Io("unknown snapshot kind".into())),
    }
    let nix = d.u32()?;
    let mut postings = Vec::with_capacity(nix as usize);
    for _ in 0..nix {
        let ix = IndexId(d.u32()?);
        let n = d.u64()?;
        let mut ps = Vec::with_capacity(n as usize);
        for _ in 0..n {
            let vertex = DPtr::from_raw(d.u64()?);
            let app_id = AppVertexId(d.u64()?);
            ps.push(Posting { vertex, app_id });
        }
        postings.push((ix, ps));
    }
    Ok(match delta {
        None => SnapPiece::Full(RankSnapshot {
            windows,
            postings,
            bytes: bytes.len() as u64,
        }),
        Some((base, patches)) => SnapPiece::Delta {
            base,
            patches,
            postings,
            bytes: bytes.len() as u64,
        },
    })
}

/// Fold the published snapshot chain into one logical rank image: the
/// full base restores every window verbatim, each delta overlays its
/// dirty chunks in chain order, and the *last* file's postings win
/// (every file carries the rank's full posting set). Both the
/// same-topology restore and the resharded restore go through here.
pub(crate) fn read_rank_snapshot_chain(
    store: &PersistStore,
    chain: &[u64],
    rank: usize,
    layout: &GdaConfig,
    nranks: usize,
) -> GdiResult<RankSnapshot> {
    let Some((&base_id, deltas)) = chain.split_first() else {
        return Err(GdiError::Io("empty snapshot chain".into()));
    };
    let SnapPiece::Full(mut snap) = read_snapshot_piece(store, base_id, rank, layout, nranks)?
    else {
        return Err(GdiError::Io(
            "snapshot chain base is not a full image".into(),
        ));
    };
    let mut prev = base_id;
    for &id in deltas {
        let SnapPiece::Delta {
            base,
            patches,
            postings,
            bytes,
        } = read_snapshot_piece(store, id, rank, layout, nranks)?
        else {
            return Err(GdiError::Io("snapshot chain member is not a delta".into()));
        };
        if base != prev {
            return Err(GdiError::Io("delta does not chain onto predecessor".into()));
        }
        for (win, (win_len, ps)) in snap.windows.iter_mut().zip(&patches) {
            if win.len() != *win_len {
                return Err(GdiError::Io("delta window size mismatch".into()));
            }
            for (off, data) in ps {
                win[*off..*off + data.len()].copy_from_slice(data);
            }
        }
        snap.postings = postings;
        snap.bytes += bytes;
        prev = id;
    }
    Ok(snap)
}

/// Re-read and checksum-validate every file of the published snapshot
/// chain that belongs to `rank` (plus the manifest, on rank 0): the
/// online scrub behind the maintenance verifier pass. Returns `(bytes
/// verified, errors found)` — an unreadable file counts as one error.
pub(crate) fn verify_rank_chain(store: &PersistStore, rank: usize) -> (u64, u64) {
    let mut bytes = 0u64;
    let mut errors = 0u64;
    let chain = store.chain();
    let mut check = |path: PathBuf, magic: &[u8; 8]| match fs::read(&path) {
        Ok(b) => {
            let ok = b.len() >= 16
                && b.starts_with(magic)
                && fnv1a(&b[..b.len() - 8])
                    == u64::from_le_bytes(b[b.len() - 8..].try_into().unwrap());
            bytes += b.len() as u64;
            if !ok {
                errors += 1;
            }
        }
        Err(_) => errors += 1,
    };
    for id in &chain {
        check(
            store.ckpt_dir(*id).join(format!("rank-{rank}.snap")),
            SNAP_MAGIC,
        );
        if rank == 0 {
            check(store.ckpt_dir(*id).join("manifest.bin"), MANIFEST_MAGIC);
        }
    }
    (bytes, errors)
}

/// The collective checkpoint body behind [`GdaRank::checkpoint`]:
/// delta when the chain and churn allow it, full otherwise.
pub(crate) fn checkpoint_rank(eng: &GdaRank) -> GdiResult<u64> {
    checkpoint_rank_inner(eng, false)
}

/// The collective body behind [`GdaRank::checkpoint_full`]: force a
/// full rebase regardless of chain length or churn.
pub(crate) fn checkpoint_rank_full(eng: &GdaRank) -> GdiResult<u64> {
    checkpoint_rank_inner(eng, true)
}

fn checkpoint_rank_inner(eng: &GdaRank, force_full: bool) -> GdiResult<u64> {
    let store = eng
        .persistence()
        .ok_or(GdiError::InvalidArgument("persistence not enabled"))?;
    let ctx = eng.ctx();
    let me = ctx.rank();
    let wall0 = Instant::now();
    ctx.quiesce();
    let sim0 = ctx.now_ns();
    let old = store.current();
    let id = old + 1;
    let dir = store.ckpt_dir(id);

    // Drain this rank's dirty map first: a delta ships exactly these
    // chunks, a full image supersedes them, and every unwind path
    // re-marks them so an aborted attempt loses no information.
    let drained = ctx.take_dirty(me);

    // Decide full vs delta collectively. A full rebase is forced when
    // the chain is empty (genesis, or right after one), has hit the
    // length cap (bounds recovery-time folding and lets gc reclaim old
    // bases), or any rank dirtied enough of its windows that a delta
    // stops paying for itself (≥ half the chunks; recovery restores
    // mark everything, so the first post-recovery checkpoint naturally
    // rebases).
    let chain = store.chain();
    let my_dirty = rma::dirty::dirty_chunks(&drained);
    let chunk = ctx.dirty_chunk_bytes();
    let total_chunks: u64 = ALL_WINDOWS
        .iter()
        .map(|w| ctx.win_len_bytes(*w).div_ceil(chunk) as u64)
        .sum();
    let want_full = force_full
        || chain.is_empty()
        || chain.len() >= DELTA_CHAIN_CAP
        || my_dirty.saturating_mul(2) >= total_chunks;
    let full = ctx.allreduce_any(want_full);
    let delta_spec = if full {
        None
    } else {
        Some(DeltaSpec {
            base: *chain.last().unwrap(),
            bitmaps: &drained,
        })
    };
    let chain_after: Vec<u64> = if full {
        vec![id]
    } else {
        chain.iter().copied().chain([id]).collect()
    };

    // rank 0 creates the directory; everyone votes on the outcome
    let dir_err = if me == 0 {
        fs::create_dir_all(&dir)
            .map_err(|e| io_err("create checkpoint dir", e))
            .err()
    } else {
        None
    };
    if ctx.allreduce_any(dir_err.is_some()) {
        ctx.remark_dirty(me, &drained);
        return Err(dir_err.unwrap_or_else(|| GdiError::Io("checkpoint dir failed".into())));
    }

    // every rank writes its snapshot file; manifest on rank 0
    let mut res = write_rank_snapshot(eng, &store, id, &dir, delta_spec.as_ref());
    if res.is_ok() && me == 0 {
        if store.probe_fault(faults::MANIFEST_WRITE, me).is_some() {
            res = Err(GdiError::Io("injected manifest write failure".into()));
        } else {
            let manifest = encode_manifest(&manifest_from_db(eng.db(), id, chain_after.clone()));
            if let Err(e) = write_atomically(&dir.join("manifest.bin"), &manifest, store.opts.sync)
            {
                res = Err(e);
            }
        }
    }
    if ctx.allreduce_any(res.is_err()) {
        ctx.remark_dirty(me, &drained);
        ctx.barrier();
        if me == 0 {
            let _ = fs::remove_dir_all(&dir);
        }
        ctx.barrier();
        return Err(res
            .err()
            .unwrap_or_else(|| GdiError::Io("checkpoint failed on a peer rank".into())));
    }
    let (bytes, shipped) = *res.as_ref().unwrap();

    // Rank 0 atomically swings `CURRENT`; everyone votes on the
    // outcome. A failed publish is atomic (tmp file + rename), so
    // CURRENT still names the old snapshot in every unwind path. The
    // fabric is quiesced for the whole collective, so unwinding loses
    // no commits.
    let publish = if me == 0 {
        store.publish_current(id)
    } else {
        Ok(())
    };
    if ctx.allreduce_any(publish.is_err()) {
        ctx.remark_dirty(me, &drained);
        ctx.barrier();
        if me == 0 {
            let _ = fs::remove_dir_all(&dir);
        }
        ctx.barrier();
        return Err(publish
            .err()
            .unwrap_or_else(|| GdiError::Io("checkpoint publish failed on a peer".into())));
    }
    store.current.store(id, Ordering::Release);
    *store.chain.lock() = chain_after;
    if !full {
        ctx.record_delta_checkpoint(shipped);
    }
    // Post-publish: every frame in the redo log describes a commit the
    // published chain captures, so truncate it. Failure is non-fatal —
    // the stale frames carry generation ≤ `old` and both replay and
    // scan-view patching skip them (`parse_log` / `log_mark`).
    if let Err(e) = store.truncate_log(me) {
        eprintln!("gda: redo truncation failed on rank {me} (non-fatal): {e}");
    }
    ctx.barrier();
    let per_rank_bytes = ctx.allgather(bytes);
    let per_rank_chunks = ctx.allgather(shipped);
    let stall_ns = ctx.allreduce_max_f64(ctx.now_ns() - sim0);
    if me == 0 {
        store.gc(id);
        *store.last_checkpoint.lock() = Some(CheckpointReport {
            id,
            full,
            per_rank_bytes,
            per_rank_chunks,
            sim_stall_s: stall_ns / 1e9,
            wall_s: wall0.elapsed().as_secs_f64(),
        });
    }
    ctx.barrier();
    Ok(id)
}

// ---------------------------------------------------------------------
// recovery
// ---------------------------------------------------------------------

/// What one rank did during [`RecoveryPlan::restore_rank`].
#[derive(Debug, Clone, Default)]
pub struct RankRecovery {
    /// This rank's id.
    pub rank: usize,
    /// Snapshot bytes this rank restored (0 at genesis).
    pub snapshot_bytes: u64,
    /// Redo-log bytes this rank parsed.
    pub log_bytes: u64,
    /// Records in this rank's log tail.
    pub records: u64,
    /// Records applied (newer than the restored state).
    pub applied: u64,
    /// Records skipped (older than or equal to the restored state —
    /// e.g. a re-replay after a recovery-time crash).
    pub skipped: u64,
    /// Records that failed to apply (resource exhaustion during
    /// replay; should be zero).
    pub errors: u64,
    /// Simulated seconds of restore + replay on this rank.
    pub sim_restore_s: f64,
    /// Wall-clock seconds of restore + replay on this rank.
    pub wall_restore_s: f64,
    /// Id of the checkpoint taken at the end of recovery (`None` if it
    /// failed; the database still serves, logs keep appending — except
    /// for a resharded recovery, where the closing checkpoint is
    /// mandatory and its failure fails the restore).
    pub final_checkpoint: Option<u64>,
    /// `Some(P)` when this restore resharded a `P`-rank snapshot onto a
    /// different live rank count (see [`recover_with_topology`]).
    pub resharded_from: Option<usize>,
}

/// Tombstone key: the deleted object's identity `(primary, app_id,
/// is_edge)`.
type TombKey = (u64, u64, bool);
/// Tombstone value: `(version at delete, deleting rank, log position)`.
type TombInfo = (u64, usize, usize);

/// The collective restore work [`recover`] hands back: every rank of
/// the freshly built fabric must call [`RecoveryPlan::restore_rank`]
/// (the server does this inside its serve loop) exactly once.
pub struct RecoveryPlan {
    snapshot_id: u64,
    restored: Vec<AtomicBool>,
    deferred: Mutex<FxHashSet<u64>>,
    /// Primaries sweep 1 actually *pulled out of a free list*: the block
    /// was free at snapshot time, so any bytes still decodable there are
    /// a stale pre-checkpoint incarnation (deletes leave data and the
    /// chain pointer intact), never an occupant. Replay treats these as
    /// vacant — following a stale chain would free or overwrite
    /// continuation blocks that now belong to other objects. A primary
    /// still claimed after the last sweep (its only upserts were refused
    /// by a tombstone) is released back to the pool.
    claimed: Mutex<FxHashSet<u64>>,
    /// Replayed deletes, keyed by object identity `(primary, app_id,
    /// is_edge)` → `(version at delete, deleting rank, log position)`.
    /// Deletes replay in a first pass; an upsert in the second pass
    /// consults its own identity's tombstone to distinguish a genuinely
    /// later state (same log at a later position, or a newer version
    /// cross-log) from an older record of the deleted object — which
    /// must never resurrect it.
    tombstones: Mutex<FxHashMap<TombKey, TombInfo>>,
    /// `Some` when the plan restores onto a different rank count than
    /// the snapshot was written by: [`RecoveryPlan::restore_rank`] then
    /// runs the elastic redistribution of the `reshard` module instead of
    /// the physical window restore.
    reshard: Option<crate::reshard::ReshardState>,
    stats: Mutex<Vec<Option<RankRecovery>>>,
}

impl std::fmt::Debug for RecoveryPlan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RecoveryPlan")
            .field("snapshot_id", &self.snapshot_id)
            .finish()
    }
}

impl RecoveryPlan {
    /// The checkpoint id the plan restores from (0 = genesis).
    pub fn snapshot_id(&self) -> u64 {
        self.snapshot_id
    }

    /// `Some(P)` when this plan reshards a `P`-rank snapshot onto a
    /// different live topology; `None` for a same-topology restore.
    pub fn resharding_from(&self) -> Option<usize> {
        self.reshard.as_ref().map(|rs| rs.map.snapshot_ranks())
    }

    /// Number of logical objects a resharded restore will redistribute
    /// (0 for a same-topology restore). Diagnostic/bench support.
    pub fn reshard_objects(&self) -> usize {
        self.reshard.as_ref().map_or(0, |rs| rs.object_count())
    }

    /// Per-rank recovery stats (filled as ranks finish restoring).
    pub fn rank_stats(&self) -> Vec<Option<RankRecovery>> {
        self.stats.lock().clone()
    }

    /// Collective: restore this rank's windows from the snapshot and
    /// replay the redo tails (phased across ranks), then take a fresh
    /// checkpoint. Every rank of the fabric must call this together,
    /// once; repeated calls return the recorded stats.
    pub fn restore_rank(&self, eng: &GdaRank) -> GdiResult<RankRecovery> {
        let me = eng.rank();
        if self.restored[me].swap(true, Ordering::SeqCst) {
            return self.stats.lock()[me]
                .clone()
                .ok_or(GdiError::InvalidArgument("restore already in progress"));
        }
        let store = eng
            .persistence()
            .ok_or(GdiError::InvalidArgument("persistence not enabled"))?;
        // elastic path: the snapshot was written by a different rank
        // count — redistribute instead of restoring windows verbatim
        if let Some(rs) = &self.reshard {
            return match crate::reshard::restore_rank_resharded(rs, eng, &store) {
                Ok(out) => {
                    self.stats.lock()[me] = Some(out.clone());
                    Ok(out)
                }
                Err(e) => {
                    self.restored[me].store(false, Ordering::SeqCst);
                    Err(e)
                }
            };
        }
        let ctx = eng.ctx();
        let wall0 = Instant::now();
        let sim0 = ctx.now_ns();
        // observe the live topology-epoch word *before* the window
        // restore rewinds it to its snapshot value: an in-place
        // recovery must leave the word strictly above every value a
        // pre-crash scan view could have been stamped with, or such a
        // view could revalidate after enough post-recovery commits
        let topo_word = eng.cfg().topo_word();
        let topo_before = ctx.aget_u64(crate::config::WIN_SYSTEM, me, topo_word);
        let mut out = RankRecovery {
            rank: me,
            ..Default::default()
        };

        // ---- read snapshot + redo tail, then vote ------------------
        // Every fallible step happens before the first barrier and is
        // voted on (like a collective commit): if any rank fails, all
        // ranks return an error together — an early unilateral return
        // would leave the peers deadlocked in the sweep barriers.
        let snap_read: GdiResult<Option<RankSnapshot>> = if self.snapshot_id == 0 {
            Ok(None)
        } else {
            read_rank_snapshot_chain(&store, &store.chain(), me, eng.cfg(), eng.nranks()).and_then(
                |snap| {
                    for (win, bytes) in ALL_WINDOWS.iter().zip(&snap.windows) {
                        if bytes.len() != ctx.win_len_bytes(*win) {
                            return Err(GdiError::Io("snapshot window size mismatch".into()));
                        }
                    }
                    Ok(Some(snap))
                },
            )
        };
        // only a genuinely absent redo log counts as an empty tail;
        // any other I/O error must surface, not silently drop commits
        let log_path = store.log_path(me);
        let log_read = match fs::read(&log_path) {
            Ok(b) => Ok(b),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(Vec::new()),
            Err(e) => Err(io_err("read redo segment", e)),
        };
        let log_read = match (log_read, store.probe_fault(faults::REDO_READ, me)) {
            (Ok(mut b), Some(FaultMode::BitFlip(k))) => {
                // silent media corruption: the frame checksum must catch
                // it and replay truncates at the last valid frame
                faults::flip_bit(&mut b, k);
                Ok(b)
            }
            (Ok(_), Some(_)) => Err(GdiError::Io("injected redo read failure".into())),
            (r, _) => r,
        };
        let my_err = snap_read.is_err() || log_read.is_err();
        if ctx.allreduce_any(my_err) {
            self.restored[me].store(false, Ordering::SeqCst);
            return Err(snap_read
                .err()
                .or(log_read.err())
                .unwrap_or_else(|| GdiError::Io("recovery failed on a peer rank".into())));
        }

        // ---- restore windows + postings (or re-init at genesis) -----
        match snap_read.unwrap() {
            None => eng.init_collective(),
            Some(snap) => {
                for (win, bytes) in ALL_WINDOWS.iter().zip(&snap.windows) {
                    ctx.put_bytes(*win, me, 0, bytes);
                }
                eng.indexes().import_rank(me, snap.postings);
                out.snapshot_bytes = snap.bytes;
                ctx.barrier();
            }
        }

        // ---- parse the redo tail, truncate any torn frame -----------
        // Frames stamped below the snapshot id are leftovers of a crash
        // between publish and truncation (or a failed truncation):
        // their commits are already in the restored chain, and
        // re-applying a pre-snapshot *delete* against post-snapshot
        // state would free blocks the free list already owns.
        let log_bytes = log_read.unwrap();
        let (records, valid_len) = parse_log(&log_bytes, self.snapshot_id);
        if valid_len < log_bytes.len() {
            if let Ok(f) = OpenOptions::new().write(true).open(&log_path) {
                let _ = f.set_len(valid_len as u64);
            }
        }
        // replay reads the tail back at device speed
        ctx.charge_ns(ctx.cost_model().log_write(valid_len));
        out.log_bytes = valid_len as u64;
        out.records = records.len() as u64;

        // ---- sweep 1 (phased): reserve every upserted primary -------
        for phase in 0..eng.nranks() {
            if phase == me {
                for rec in &records {
                    if let RedoRecord::Upsert { primary, .. } = rec {
                        // a primary actually pulled from a free list was
                        // free at snapshot time: whatever bytes it still
                        // holds are stale, not an occupant (see
                        // `RecoveryPlan::claimed`)
                        if eng.bm.acquire_at(DPtr::from_raw(*primary)) {
                            self.claimed.lock().insert(*primary);
                        }
                    }
                }
            }
            ctx.barrier();
        }

        // ---- sweep 2 (phased): replay deletes first. Every committed
        // delete lands (or tombstones) before any upsert replays, so an
        // upsert in sweep 3 never faces a live occupant it would have
        // to guess about — the occupant is either the object's own
        // older state or vacated bytes.
        for phase in 0..eng.nranks() {
            if phase == me {
                for (seq, rec) in records.iter().enumerate() {
                    if matches!(rec, RedoRecord::Delete { .. }) {
                        match apply_record(eng, rec, seq, self) {
                            Ok(true) => out.applied += 1,
                            Ok(false) => out.skipped += 1,
                            Err(_) => out.errors += 1,
                        }
                    }
                }
            }
            ctx.barrier();
        }

        // ---- sweep 3 (phased): replay upserts in log order ----------
        for phase in 0..eng.nranks() {
            if phase == me {
                for (seq, rec) in records.iter().enumerate() {
                    if matches!(rec, RedoRecord::Upsert { .. }) {
                        match apply_record(eng, rec, seq, self) {
                            Ok(true) => out.applied += 1,
                            Ok(false) => out.skipped += 1,
                            Err(_) => out.errors += 1,
                        }
                    }
                }
            }
            ctx.barrier();
        }

        // ---- release deferred frees (each rank its own pool) --------
        // A primary still in the claimed set was pulled from a free list
        // in sweep 1 but every record for it was refused by a tombstone
        // (object created and deleted post-checkpoint): hand it back
        // too, or it leaks — and the end-of-recovery checkpoint would
        // persist the leak.
        {
            let mut deferred = self.deferred.lock();
            let mut claimed = self.claimed.lock();
            let mine: FxHashSet<u64> = deferred
                .iter()
                .chain(claimed.iter())
                .copied()
                .filter(|raw| DPtr::from_raw(*raw).rank() == me)
                .collect();
            for raw in mine {
                deferred.remove(&raw);
                claimed.remove(&raw);
                eng.bm.release(DPtr::from_raw(raw));
            }
        }
        ctx.barrier();

        // advance every rank's commit-stamp counter past the largest
        // replayed version: future commits must stamp strictly above
        // anything the redo tails reintroduced (matters at genesis,
        // where the counters restart at zero)
        let my_max = records
            .iter()
            .map(|r| match r {
                RedoRecord::Upsert { version, .. } | RedoRecord::Delete { version, .. } => *version,
            })
            .max()
            .unwrap_or(0);
        let global_max = ctx.allreduce_max_u64(my_max);
        let stamp_word = eng.cfg().stamp_word();
        let cur = ctx.aget_u64(crate::config::WIN_SYSTEM, me, stamp_word);
        if cur < global_max {
            ctx.aput_u64(crate::config::WIN_SYSTEM, me, stamp_word, global_max);
        }
        // MVCC: re-derive the read-epoch watermark. Commits log before
        // they publish, so replayed upserts can carry commit epochs
        // above the restored watermark word (and at genesis the word
        // restarts at zero) — yet replay materializes only the latest
        // version of each object, no archives, so every replayed epoch
        // must sit at or below the watermark for snapshot readers to
        // resolve it without a chain walk. The epoch counter resumes at
        // the watermark: no commit was mid-flight (the crash ended them
        // all), so no allocated-but-unpublished epoch can be pending.
        let my_epoch_max = records
            .iter()
            .map(|r| match r {
                RedoRecord::Upsert { bytes, .. } => holder_commit_epoch(bytes),
                _ => 0,
            })
            .max()
            .unwrap_or(0);
        let epoch_max = ctx.allreduce_max_u64(my_epoch_max);
        if me == 0 {
            let w_word = eng.cfg().watermark_word();
            let w = ctx
                .aget_u64(crate::config::WIN_SYSTEM, 0, w_word)
                .max(epoch_max);
            ctx.aput_u64(crate::config::WIN_SYSTEM, 0, w_word, w);
            let c_word = eng.cfg().epoch_counter_word();
            if ctx.aget_u64(crate::config::WIN_SYSTEM, 0, c_word) < w {
                ctx.aput_u64(crate::config::WIN_SYSTEM, 0, c_word, w);
            }
        }
        // replicate the re-derived watermark into every rank's local
        // shadow word (pins read the shadow — it must be at least `W`
        // before any post-recovery reader pins)
        ctx.barrier();
        let w_now = ctx.aget_u64(crate::config::WIN_SYSTEM, 0, eng.cfg().watermark_word());
        ctx.aput_u64(
            crate::config::WIN_SYSTEM,
            me,
            eng.cfg().wmark_shadow_word(),
            w_now,
        );
        // no reader survives a crash: clear any restored min-active-
        // snapshot registration
        ctx.aput_u64(
            crate::config::WIN_SYSTEM,
            me,
            eng.cfg().snap_word(),
            u64::MAX,
        );
        // same discipline for the topology-epoch word: jump past both
        // the restored value and anything observed pre-restore, so no
        // pre-crash view stamp can ever match again (replayed topology
        // changes were applied without bumps), and drop this attach's
        // own cached view
        let topo_now = ctx.aget_u64(crate::config::WIN_SYSTEM, me, topo_word);
        ctx.aput_u64(
            crate::config::WIN_SYSTEM,
            me,
            topo_word,
            topo_now.max(topo_before) + 1,
        );
        eng.drop_scan_cache();
        ctx.barrier();

        out.sim_restore_s = (ctx.now_ns() - sim0) / 1e9;
        out.wall_restore_s = wall0.elapsed().as_secs_f64();

        // ---- fresh checkpoint: the next crash replays from here -----
        // Always a full rebase: a delta would chain this (possibly
        // resharded — different rank count!) state onto the pre-crash
        // chain, and the reshard path rebuilds windows logically, so
        // its dirty map does not cover everything the old base lacks.
        out.final_checkpoint = eng.checkpoint_full().ok();

        self.stats.lock()[me] = Some(out.clone());
        Ok(out)
    }
}

/// Commit epoch carried by an encoded holder image (0 when too short).
fn holder_commit_epoch(bytes: &[u8]) -> u64 {
    use crate::holder::COMMIT_EPOCH_OFFSET;
    bytes
        .get(COMMIT_EPOCH_OFFSET..COMMIT_EPOCH_OFFSET + 8)
        .map(|b| u64::from_le_bytes(b.try_into().unwrap()))
        .unwrap_or(0)
}

/// Strip version-chain state from a replayed holder image: the archives
/// its `prev` pointed at were never logged, so replaying the pointer
/// would dangle into space that may be free or reused. Commit epoch
/// (and the version stamp) are preserved — the recovered watermark is
/// raised to cover every replayed epoch, so snapshot readers never need
/// the missing chain. In-image archives of an overwritten occupant are
/// deliberately left allocated-but-unreachable rather than freed:
/// distinguishing them from reused blocks mid-replay is not worth the
/// corruption risk, and the leak is bounded by the chain limit.
fn sanitize_replayed_holder(bytes: &[u8]) -> Vec<u8> {
    let mut out = bytes.to_vec();
    if out.len() >= crate::holder::HEADER_BYTES {
        let mut flags = u32::from_le_bytes(out[12..16].try_into().unwrap());
        flags &= !crate::holder::DEPTH_MASK;
        out[12..16].copy_from_slice(&flags.to_le_bytes());
        out[40..48].fill(0); // prev
    }
    out
}

/// Apply one redo record against the restored state. `seq` is the
/// record's position in its log (the same-log ordering authority).
/// Returns whether it was applied (`false` = skipped as stale).
/// Quiesced single-writer: the phased replay guarantees no concurrency.
fn apply_record(
    eng: &GdaRank,
    rec: &RedoRecord,
    seq: usize,
    plan: &RecoveryPlan,
) -> GdiResult<bool> {
    let ctx = eng.ctx();
    let me = eng.rank();
    match rec {
        RedoRecord::Upsert {
            primary,
            app_id,
            is_edge,
            version,
            bytes,
        } => {
            let dp = DPtr::from_raw(*primary);
            let bytes = &sanitize_replayed_holder(bytes);
            // a record at or before its object's tombstoned delete must
            // never resurrect the object: "later than the delete" is a
            // later position in the same log, or a newer version from
            // another log (a genuine recreate)
            let key = (*primary, *app_id, *is_edge);
            {
                let mut tombs = plan.tombstones.lock();
                if let Some(&(t_ver, t_rank, t_seq)) = tombs.get(&key) {
                    let later = if t_rank == me {
                        seq > t_seq
                    } else {
                        *version > t_ver
                    };
                    if !later {
                        return Ok(false);
                    }
                    tombs.remove(&key);
                }
            }
            // a primary in the deferred-free set was vacated by a
            // replayed delete, and one in the claimed set was already
            // free at snapshot time. In both cases any bytes still
            // decodable there are stale — possibly a pre-checkpoint
            // incarnation of this very app id at an older version, left
            // intact by its (pre-checkpoint, hence unlogged-in-the-tail)
            // delete — and must not be read as an occupant: following
            // the stale chain pointer would overwrite or double-free
            // continuation blocks that belong to other objects now.
            let vacant =
                plan.deferred.lock().contains(primary) || plan.claimed.lock().contains(primary);
            let occupant = if vacant {
                None
            } else {
                hio::read_chain(ctx, eng.cfg(), dp)
                    .ok()
                    .and_then(|(cur, blocks)| Holder::try_decode(&cur).map(|h| (h, blocks)))
            };
            match occupant {
                Some((cur, mut blocks)) if cur.app_id == *app_id && cur.is_edge == *is_edge => {
                    if cur.version >= *version {
                        return Ok(false); // replay is idempotent
                    }
                    // a shrinking rewrite must not release surplus
                    // continuation blocks straight into the pool —
                    // another not-yet-replayed record's primary could
                    // still be one of them (it was allocated at
                    // snapshot time, so sweep 1 could not reserve it).
                    // Pop them into the deferred set ourselves; the
                    // write then neither grows nor frees past `needed`.
                    let needed = hio::blocks_needed(eng.cfg(), bytes.len());
                    if blocks.len() > needed {
                        let mut d = plan.deferred.lock();
                        while blocks.len() > needed {
                            d.insert(blocks.pop().unwrap().raw());
                        }
                    }
                    hio::write_chain(ctx, &eng.bm, bytes, &mut blocks)?;
                }
                _ => {
                    // vacant: reserved in sweep 1, vacated by a delete,
                    // or stale bytes of a pre-checkpoint occupant whose
                    // committed delete freed the block. Clearing the
                    // claimed/deferred marks makes the block a genuine
                    // occupant from here on: a later record of the same
                    // object takes the occupant path (preserving the
                    // chain just written) and end-of-replay won't
                    // release it.
                    eng.bm.acquire_at(dp);
                    plan.deferred.lock().remove(primary);
                    plan.claimed.lock().remove(primary);
                    let mut blocks = vec![dp];
                    hio::write_chain(ctx, &eng.bm, bytes, &mut blocks)?;
                }
            }
            if !is_edge {
                match eng.dht.lookup(*app_id) {
                    Some(raw) if raw == *primary => {}
                    Some(_) => {
                        eng.dht.delete(*app_id);
                        eng.dht.insert(*app_id, *primary)?;
                    }
                    None => eng.dht.insert(*app_id, *primary)?,
                }
                let holder = Holder::try_decode(bytes)
                    .ok_or(GdiError::Io("corrupt holder in redo record".into()))?;
                eng.indexes()
                    .reindex_vertex(dp, AppVertexId(*app_id), Some(&holder.labels()));
            }
            Ok(true)
        }
        RedoRecord::Delete {
            primary,
            app_id,
            is_edge,
            version,
        } => {
            let dp = DPtr::from_raw(*primary);
            // the logical delete is a committed fact: tombstone it for
            // the upsert pass regardless of the physical state here
            plan.tombstones
                .lock()
                .insert((*primary, *app_id, *is_edge), (*version, me, seq));
            // a primary claimed out of a free list in sweep 1 was free
            // at snapshot time: the object this delete targets exists
            // only in not-yet-replayed upserts, and any decodable bytes
            // are a stale earlier incarnation whose chain must not be
            // freed (its continuation blocks belong to other objects)
            if plan.claimed.lock().contains(primary) {
                return Ok(false);
            }
            let vacated = plan.deferred.lock().contains(primary);
            let Ok((cur, blocks)) = hio::read_chain(ctx, eng.cfg(), dp) else {
                return Ok(false); // nothing physical to free
            };
            let Some(cur) = Holder::try_decode(&cur) else {
                return Ok(false);
            };
            if vacated || cur.app_id != *app_id || cur.is_edge != *is_edge {
                return Ok(false); // not (or no longer) this object
            }
            if cur.version > *version {
                return Ok(false); // a newer state won (re-replay)
            }
            // defer the frees: pools are refilled only after the last
            // phase, so no replayed chain can steal a primary another
            // record still needs (see the module docs)
            let mut d = plan.deferred.lock();
            for b in blocks {
                d.insert(b.raw());
            }
            drop(d);
            if !is_edge {
                if eng.dht.lookup(*app_id) == Some(*primary) {
                    eng.dht.delete(*app_id);
                }
                eng.indexes().reindex_vertex(dp, AppVertexId(*app_id), None);
            }
            Ok(true)
        }
    }
}

/// Rebuild a database from its persistence directory: reads `CURRENT`,
/// restores the catalog and index definitions from the manifest, and
/// returns the database, a freshly built fabric and the
/// [`RecoveryPlan`] whose [`RecoveryPlan::restore_rank`] every rank
/// must run inside `fabric.run` before serving. Boots the topology the
/// snapshot was written by; use [`recover_with_topology`] to restore
/// onto a different rank count.
pub fn recover(
    opts: PersistOptions,
    cost: CostModel,
) -> GdiResult<(Arc<GdaDb>, Fabric, Arc<RecoveryPlan>)> {
    recover_with_topology(opts, cost, None)
}

/// [`recover`] with an **elastic target topology**: restore the latest
/// snapshot (written by `P` ranks) onto `target_ranks = Some(Q)` ranks.
///
/// `None` (or `Some(P)`) boots the snapshot's own topology and restores
/// physically. For `Q ≠ P` the returned plan carries a full
/// redistribution (see `docs/ARCHITECTURE.md` § Resharding): the logical database
/// contents — every vertex, edge, property, index posting and DHT entry,
/// snapshot *plus* replayed redo tails — are rebuilt on the `Q`-rank
/// fabric under the new ownership map, and a fresh `Q`-topology
/// checkpoint commits the reshard before the restore returns. The
/// database's config is grown automatically where `Q` ranks need more
/// per-rank capacity than `P` did (scale-in).
pub fn recover_with_topology(
    opts: PersistOptions,
    cost: CostModel,
    target_ranks: Option<usize>,
) -> GdiResult<(Arc<GdaDb>, Fabric, Arc<RecoveryPlan>)> {
    let current = fs::read_to_string(opts.dir.join("CURRENT"))
        .map_err(|e| io_err("read CURRENT", e))?
        .trim()
        .parse::<u64>()
        .map_err(|_| GdiError::Io("corrupt CURRENT pointer".into()))?;
    let manifest_path = opts.dir.join(format!("ckpt-{current}/manifest.bin"));
    let mut manifest_bytes = fs::read(&manifest_path).map_err(|e| io_err("read manifest", e))?;
    if let Some(plane) = &opts.faults {
        match plane.check(faults::MANIFEST_READ, 0) {
            Some(FaultMode::BitFlip(k)) => faults::flip_bit(&mut manifest_bytes, k),
            Some(FaultMode::Latency(ns)) => std::thread::sleep(std::time::Duration::from_nanos(ns)),
            Some(_) => return Err(GdiError::Io("injected manifest read failure".into())),
            None => {}
        }
    }
    let manifest = decode_manifest(&manifest_bytes)?;
    if manifest.id != current {
        return Err(GdiError::Io("manifest id does not match CURRENT".into()));
    }
    let snapshot_ranks = manifest.nranks;
    let live_ranks = target_ranks.unwrap_or(snapshot_ranks);
    if live_ranks == 0 || live_ranks > u16::MAX as usize {
        return Err(GdiError::InvalidArgument(
            "target rank count must be in 1..=65535",
        ));
    }

    let backend = opts.backend;
    let store = PersistStore::new(opts, live_ranks, current, manifest.chain.clone());

    // elastic path: read the P snapshot shards + logs and build the
    // redistribution plan (same topology skips straight to the
    // physical restore — `reshard` stays `None`)
    let reshard = if live_ranks == snapshot_ranks {
        None
    } else {
        let mut snapshots: Vec<Option<RankSnapshot>> = Vec::with_capacity(snapshot_ranks);
        let mut snap_bytes = Vec::with_capacity(snapshot_ranks);
        for rank in 0..snapshot_ranks {
            if current == 0 {
                snapshots.push(None); // genesis: logs only
                snap_bytes.push(0);
                continue;
            }
            let snap = read_rank_snapshot_chain(
                &store,
                &manifest.chain,
                rank,
                &manifest.cfg,
                snapshot_ranks,
            )?;
            snap_bytes.push(snap.bytes);
            snapshots.push(Some(snap));
        }
        let mut logs: Vec<Vec<RedoRecord>> = Vec::with_capacity(snapshot_ranks);
        let mut log_bytes = Vec::with_capacity(snapshot_ranks);
        for rank in 0..snapshot_ranks {
            // the P-topology logs are read-only here (no truncation):
            // they must stay intact for a fallback same-topology
            // recovery should the reshard abort
            let bytes = match fs::read(store.log_path(rank)) {
                Ok(b) => b,
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
                Err(e) => return Err(io_err("read redo segment", e)),
            };
            let (records, valid_len) = parse_log(&bytes, current);
            log_bytes.push(valid_len as u64);
            logs.push(records);
        }
        Some(crate::reshard::plan(
            &manifest.cfg,
            crate::rankmap::RankMap::resharded(snapshot_ranks, live_ranks),
            &manifest.index_defs,
            &snapshots,
            &logs,
            snap_bytes,
            log_bytes,
        )?)
    };

    // one construction tail for both paths; only the config differs
    // (a reshard may have grown per-rank capacity for scale-in)
    let cfg = reshard.as_ref().map_or(manifest.cfg, |r| r.cfg);
    let meta = MetaStore::from_parts(manifest.meta);
    let indexes = IndexShared::from_parts(live_ranks, manifest.index_defs, manifest.index_next_id);
    let db = GdaDb::restore(&manifest.name, cfg, live_ranks, meta, indexes);
    let faults_plane = store.fault_plane().clone();
    db.set_persistence(store);
    // the booted fabric shares the store's fault plane, so one arming
    // call covers fabric latency points and persistence I/O points
    let fabric = db
        .cfg
        .build_fabric_shared(live_ranks, cost, backend, Some(faults_plane));
    let plan = Arc::new(RecoveryPlan {
        snapshot_id: current,
        restored: (0..live_ranks).map(|_| AtomicBool::new(false)).collect(),
        deferred: Mutex::new(FxHashSet::default()),
        claimed: Mutex::new(FxHashSet::default()),
        tombstones: Mutex::new(FxHashMap::default()),
        reshard,
        stats: Mutex::new(vec![None; live_ranks]),
    });
    Ok((db, fabric, plan))
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use gdi::{AccessMode, EdgeOrientation, PropertyValue, TxStatus};

    /// A unique, self-cleaning persistence directory for one test.
    pub(crate) struct TestDir(pub PathBuf);

    impl TestDir {
        pub(crate) fn new(tag: &str) -> Self {
            static SEQ: AtomicU64 = AtomicU64::new(0);
            let dir = std::env::temp_dir().join(format!(
                "gda-persist-{tag}-{}-{}",
                std::process::id(),
                SEQ.fetch_add(1, Ordering::Relaxed)
            ));
            let _ = fs::remove_dir_all(&dir);
            TestDir(dir)
        }
    }

    impl Drop for TestDir {
        fn drop(&mut self) {
            let _ = fs::remove_dir_all(&self.0);
        }
    }

    #[test]
    fn redo_frame_roundtrip_and_torn_tail() {
        let records = vec![
            RedoRecord::Upsert {
                primary: DPtr::new(1, 256).raw(),
                app_id: 7,
                is_edge: false,
                version: 3,
                bytes: vec![1, 2, 3, 4, 5],
            },
            RedoRecord::Delete {
                primary: DPtr::new(0, 128).raw(),
                app_id: 9,
                is_edge: true,
                version: 11,
            },
        ];
        let mut log = encode_frame(&records[..1], 3);
        log.extend_from_slice(&encode_frame(&records[1..], 4));
        let full_len = log.len();
        let (parsed, len) = parse_log(&log, 0);
        assert_eq!(parsed, records);
        assert_eq!(len, full_len);
        // torn tail: drop the final byte — the last frame is ignored
        let (parsed, len) = parse_log(&log[..full_len - 1], 0);
        assert_eq!(parsed, records[..1]);
        assert!(len < full_len);
        // corrupt checksum: flip a payload byte of frame 2
        let mut bad = log.clone();
        *bad.last_mut().unwrap() ^= 0xFF;
        let (parsed, _) = parse_log(&bad, 0);
        assert_eq!(parsed, records[..1]);
        // generation filter: frames below min_gen parse (their bytes
        // count toward the valid prefix) but contribute no records
        let (parsed, len) = parse_log(&log, 4);
        assert_eq!(parsed, records[1..]);
        assert_eq!(len, full_len);
        let (parsed, len) = parse_log(&log, 5);
        assert!(parsed.is_empty());
        assert_eq!(len, full_len);
    }

    #[test]
    fn sparse_window_roundtrip() {
        for pattern in [
            vec![0u8; 64],
            (0u8..=255).cycle().take(512).collect::<Vec<u8>>(),
            {
                let mut v = vec![0u8; 1024];
                v[8] = 1;
                v[512] = 2;
                v[1016] = 3;
                v
            },
        ] {
            let mut e = Enc::default();
            encode_sparse(&mut e, &pattern);
            let mut d = Dec::new(&e.buf);
            assert_eq!(decode_sparse(&mut d).unwrap(), pattern);
            assert_eq!(d.pos, e.buf.len());
        }
        // all-zero windows compress to a few bytes
        let mut e = Enc::default();
        encode_sparse(&mut e, &vec![0u8; 1 << 20]);
        assert!(e.buf.len() < 32);
    }

    #[test]
    fn manifest_roundtrip() {
        let db = GdaDb::new("mani", GdaConfig::tiny(), 4);
        db.meta.create_label("Person").unwrap();
        db.meta
            .create_ptype(
                "age",
                Datatype::Uint64,
                EntityType::Vertex,
                Multiplicity::Single,
                SizeType::Fixed,
                1,
            )
            .unwrap();
        db.indexes
            .create("people", vec![LabelId(1)], vec![])
            .unwrap();
        let m = manifest_from_db(&db, 5, vec![3, 4, 5]);
        let bytes = encode_manifest(&m);
        let back = decode_manifest(&bytes).unwrap();
        assert_eq!(back.id, 5);
        assert_eq!(back.name, "mani");
        assert_eq!(back.nranks, 4);
        assert_eq!(back.chain, vec![3, 4, 5]);
        assert_eq!(back.meta, db.meta.export_parts());
        assert_eq!(back.index_defs, db.indexes.export_defs().0);
        // corruption is detected
        let mut bad = bytes.clone();
        bad[20] ^= 0xFF;
        assert!(decode_manifest(&bad).is_err());
    }

    /// Full lifecycle on one rank: commits → checkpoint → more commits
    /// (redo tail) → "crash" → recover → all committed state is back,
    /// uncommitted state is not.
    #[test]
    fn checkpoint_replay_roundtrip_single_rank() {
        let td = TestDir::new("single");
        let cfg = GdaConfig::tiny();
        {
            let (db, fabric) = GdaDb::with_fabric("p", cfg, 1, CostModel::zero());
            db.enable_persistence(PersistOptions::new(&td.0)).unwrap();
            fabric.run(|ctx| {
                let eng = db.attach(ctx);
                eng.init_collective();
                let age = eng
                    .create_ptype(
                        "age",
                        Datatype::Uint64,
                        EntityType::Vertex,
                        Multiplicity::Single,
                        SizeType::Fixed,
                        1,
                    )
                    .unwrap();
                let tx = eng.begin(AccessMode::ReadWrite);
                for i in 0..10u64 {
                    let v = tx.create_vertex(AppVertexId(i)).unwrap();
                    tx.add_property(v, age, &PropertyValue::U64(i * 10))
                        .unwrap();
                }
                tx.commit().unwrap();
                assert_eq!(eng.checkpoint().unwrap(), 1);
                // post-checkpoint commits live only in the redo tail
                let tx = eng.begin(AccessMode::ReadWrite);
                let a = tx.translate_vertex_id(AppVertexId(0)).unwrap();
                let b = tx.translate_vertex_id(AppVertexId(1)).unwrap();
                tx.add_edge(a, b, None, true).unwrap();
                tx.update_property(a, age, &PropertyValue::U64(999))
                    .unwrap();
                tx.commit().unwrap();
                let tx = eng.begin(AccessMode::ReadWrite);
                let d = tx.translate_vertex_id(AppVertexId(9)).unwrap();
                tx.delete_vertex(d).unwrap();
                tx.commit().unwrap();
                // an aborted transaction must not be recovered
                let tx = eng.begin(AccessMode::ReadWrite);
                tx.create_vertex(AppVertexId(777)).unwrap();
                tx.abort();
            });
            // db + fabric dropped here: the "crash"
        }
        let (db, fabric, plan) = recover(PersistOptions::new(&td.0), CostModel::zero()).unwrap();
        assert_eq!(plan.snapshot_id(), 1);
        fabric.run(|ctx| {
            let eng = db.attach(ctx);
            let rec = plan.restore_rank(&eng).unwrap();
            assert!(rec.records >= 2, "redo tail replayed: {rec:?}");
            assert_eq!(rec.errors, 0);
            assert_eq!(rec.final_checkpoint, Some(2));
            let age = eng.meta().ptype_from_name("age").unwrap();
            let tx = eng.begin(AccessMode::ReadOnly);
            let a = tx.translate_vertex_id(AppVertexId(0)).unwrap();
            assert_eq!(tx.property(a, age).unwrap(), Some(PropertyValue::U64(999)));
            assert_eq!(tx.edge_count(a, EdgeOrientation::Outgoing).unwrap(), 1);
            for i in 1..9u64 {
                let v = tx.translate_vertex_id(AppVertexId(i)).unwrap();
                assert_eq!(
                    tx.property(v, age).unwrap(),
                    Some(PropertyValue::U64(i * 10)),
                    "vertex {i}"
                );
            }
            assert!(tx.translate_vertex_id(AppVertexId(9)).is_err(), "deleted");
            assert!(tx.translate_vertex_id(AppVertexId(777)).is_err(), "aborted");
            assert_eq!(tx.status(), TxStatus::Active);
            tx.commit().unwrap();
            // the recovered database accepts new transactions
            let tx = eng.begin(AccessMode::ReadWrite);
            tx.create_vertex(AppVertexId(100)).unwrap();
            tx.commit().unwrap();
        });
    }

    /// Genesis recovery: no checkpoint ever ran — replay from segment 0
    /// onto re-initialized storage.
    #[test]
    fn genesis_recovery_without_checkpoint() {
        let td = TestDir::new("genesis");
        let cfg = GdaConfig::tiny();
        {
            let (db, fabric) = GdaDb::with_fabric("g", cfg, 2, CostModel::zero());
            db.enable_persistence(PersistOptions::new(&td.0)).unwrap();
            fabric.run(|ctx| {
                let eng = db.attach(ctx);
                eng.init_collective();
                if ctx.rank() == 0 {
                    let tx = eng.begin(AccessMode::ReadWrite);
                    for i in 0..6u64 {
                        tx.create_vertex(AppVertexId(i)).unwrap();
                    }
                    tx.commit().unwrap();
                }
                ctx.barrier();
                if ctx.rank() == 1 {
                    let tx = eng.begin(AccessMode::ReadWrite);
                    let a = tx.translate_vertex_id(AppVertexId(2)).unwrap();
                    let b = tx.translate_vertex_id(AppVertexId(3)).unwrap();
                    tx.add_edge(a, b, None, true).unwrap();
                    tx.commit().unwrap();
                }
                ctx.barrier();
            });
        }
        let (db, fabric, plan) = recover(PersistOptions::new(&td.0), CostModel::zero()).unwrap();
        assert_eq!(plan.snapshot_id(), 0);
        fabric.run(|ctx| {
            let eng = db.attach(ctx);
            plan.restore_rank(&eng).unwrap();
            let tx = eng.begin(AccessMode::ReadOnly);
            for i in 0..6u64 {
                tx.translate_vertex_id(AppVertexId(i)).unwrap();
            }
            let a = tx.translate_vertex_id(AppVertexId(2)).unwrap();
            assert_eq!(tx.edge_count(a, EdgeOrientation::Outgoing).unwrap(), 1);
            tx.commit().unwrap();
        });
    }

    /// Delete-then-recreate across a checkpoint boundary: the replay
    /// must re-point the DHT at the recreated vertex's (possibly
    /// different) primary block.
    #[test]
    fn replay_handles_delete_and_recreate() {
        let td = TestDir::new("recreate");
        let cfg = GdaConfig::tiny();
        {
            let (db, fabric) = GdaDb::with_fabric("r", cfg, 1, CostModel::zero());
            db.enable_persistence(PersistOptions::new(&td.0)).unwrap();
            fabric.run(|ctx| {
                let eng = db.attach(ctx);
                eng.init_collective();
                let tx = eng.begin(AccessMode::ReadWrite);
                tx.create_vertex(AppVertexId(1)).unwrap();
                tx.create_vertex(AppVertexId(2)).unwrap();
                tx.commit().unwrap();
                eng.checkpoint().unwrap();
                for _ in 0..3 {
                    let tx = eng.begin(AccessMode::ReadWrite);
                    let v = tx.translate_vertex_id(AppVertexId(1)).unwrap();
                    tx.delete_vertex(v).unwrap();
                    tx.commit().unwrap();
                    let tx = eng.begin(AccessMode::ReadWrite);
                    tx.create_vertex(AppVertexId(1)).unwrap();
                    tx.commit().unwrap();
                }
            });
        }
        let (db, fabric, plan) = recover(PersistOptions::new(&td.0), CostModel::zero()).unwrap();
        fabric.run(|ctx| {
            let eng = db.attach(ctx);
            let rec = plan.restore_rank(&eng).unwrap();
            assert_eq!(rec.errors, 0);
            let tx = eng.begin(AccessMode::ReadOnly);
            tx.translate_vertex_id(AppVertexId(1)).unwrap();
            tx.translate_vertex_id(AppVertexId(2)).unwrap();
            tx.commit().unwrap();
            // storage is not leaking: delete the vertices and verify the
            // pool drains back to full
            let tx = eng.begin(AccessMode::ReadWrite);
            for i in [1u64, 2] {
                let v = tx.translate_vertex_id(AppVertexId(i)).unwrap();
                tx.delete_vertex(v).unwrap();
            }
            tx.commit().unwrap();
            assert_eq!(eng.bm.count_free(0), eng.cfg().blocks_per_rank);
        });
    }

    /// Regression: a replayed holder *shrink* must not release its
    /// surplus continuation blocks straight into the pool. Sweep 1
    /// cannot reserve a primary that was still allocated (as another
    /// chain's continuation) at snapshot time, so a continuation block
    /// freed mid-replay and re-acquired by a different chain would
    /// later be clobbered by the record whose primary it became.
    /// Choreography: X (3 blocks, rank-1 pool) shrinks in rank 0's log;
    /// Y and Z (rank-1 owners, Z multi-block) are created afterwards —
    /// Y from rank 1's log, Z from rank 0's — reusing X's freed blocks
    /// as their primaries.
    #[test]
    fn replayed_shrink_defers_continuation_frees() {
        let td = TestDir::new("shrink");
        let cfg = GdaConfig::tiny(); // 128 B blocks, 120 B payload
        let big = PropertyValue::Bytes(vec![0xAB; 260]); // 3-block holder
        {
            let (db, fabric) = GdaDb::with_fabric("s", cfg, 2, CostModel::zero());
            db.enable_persistence(PersistOptions::new(&td.0)).unwrap();
            fabric.run(|ctx| {
                let eng = db.attach(ctx);
                eng.init_collective();
                let blob = if ctx.rank() == 0 {
                    Some(
                        eng.create_ptype(
                            "blob",
                            Datatype::Byte,
                            EntityType::Vertex,
                            Multiplicity::Single,
                            SizeType::NoLimit,
                            0,
                        )
                        .unwrap(),
                    )
                } else {
                    None
                };
                ctx.barrier();
                eng.refresh_meta();
                let blob = blob.unwrap_or_else(|| eng.meta().ptype_from_name("blob").unwrap());
                // X: app 1 (owner rank 1), 3 blocks
                if ctx.rank() == 0 {
                    let tx = eng.begin(AccessMode::ReadWrite);
                    let x = tx.create_vertex(AppVertexId(1)).unwrap();
                    tx.add_property(x, blob, &big).unwrap();
                    tx.commit().unwrap();
                }
                ctx.barrier();
                eng.checkpoint().unwrap();
                // rank 0's log: shrink X back to one block
                if ctx.rank() == 0 {
                    let tx = eng.begin(AccessMode::ReadWrite);
                    let x = tx.translate_vertex_id(AppVertexId(1)).unwrap();
                    tx.remove_properties(x, blob).unwrap();
                    tx.commit().unwrap();
                }
                ctx.barrier();
                // rank 1's log: Y (app 3, owner rank 1) reuses a freed
                // continuation of X as its primary
                if ctx.rank() == 1 {
                    let tx = eng.begin(AccessMode::ReadWrite);
                    let y = tx.create_vertex(AppVertexId(3)).unwrap();
                    tx.add_property(y, blob, &PropertyValue::Bytes(vec![33]))
                        .unwrap();
                    tx.commit().unwrap();
                }
                ctx.barrier();
                // rank 0's log again: Z (app 5, owner rank 1),
                // multi-block — its replay-time continuation allocation
                // must not steal Y's primary
                if ctx.rank() == 0 {
                    let tx = eng.begin(AccessMode::ReadWrite);
                    let z = tx.create_vertex(AppVertexId(5)).unwrap();
                    tx.add_property(z, blob, &big).unwrap();
                    tx.commit().unwrap();
                }
                ctx.barrier();
            });
        }
        let (db, fabric, plan) = recover(PersistOptions::new(&td.0), CostModel::zero()).unwrap();
        fabric.run(|ctx| {
            let eng = db.attach(ctx);
            let rec = plan.restore_rank(&eng).unwrap();
            assert_eq!(rec.errors, 0, "{rec:?}");
            let blob = eng.meta().ptype_from_name("blob").unwrap();
            let tx = eng.begin(AccessMode::ReadOnly);
            let x = tx.translate_vertex_id(AppVertexId(1)).unwrap();
            assert_eq!(tx.property(x, blob).unwrap(), None, "shrink replayed");
            let y = tx.translate_vertex_id(AppVertexId(3)).unwrap();
            assert_eq!(
                tx.property(y, blob).unwrap(),
                Some(PropertyValue::Bytes(vec![33]))
            );
            let z = tx.translate_vertex_id(AppVertexId(5)).unwrap();
            assert_eq!(
                tx.property(z, blob).unwrap(),
                Some(PropertyValue::Bytes(vec![0xAB; 260])),
                "Z's chain was clobbered by a reused continuation block"
            );
            tx.commit().unwrap();
        });
    }

    /// A failed (injected) checkpoint must leave the previous snapshot
    /// usable and the database serving.
    #[test]
    fn failed_checkpoint_keeps_previous_snapshot() {
        let td = TestDir::new("failckpt");
        let cfg = GdaConfig::tiny();
        {
            let (db, fabric) = GdaDb::with_fabric("f", cfg, 2, CostModel::zero());
            let store = db.enable_persistence(PersistOptions::new(&td.0)).unwrap();
            fabric.run(|ctx| {
                let eng = db.attach(ctx);
                eng.init_collective();
                if ctx.rank() == 0 {
                    let tx = eng.begin(AccessMode::ReadWrite);
                    for i in 0..4u64 {
                        tx.create_vertex(AppVertexId(i)).unwrap();
                    }
                    tx.commit().unwrap();
                }
                ctx.barrier();
                assert_eq!(eng.checkpoint().unwrap(), 1);
                // one arming call (not one per rank thread): the fault
                // is scoped to rank 0's snapshot write and fires once
                if ctx.rank() == 0 {
                    store
                        .fault_plane()
                        .arm_at(faults::SNAP_WRITE, Some(0), 0, 1, FaultMode::Error);
                }
                let err = eng.checkpoint();
                assert!(err.is_err(), "injected failure must surface");
                // the failed attempt left no partial snapshot behind
                assert_eq!(store.current(), 1);
                assert!(!store.ckpt_dir(2).exists());
                // the database still serves and still logs durably
                if ctx.rank() == 0 {
                    let tx = eng.begin(AccessMode::ReadWrite);
                    tx.create_vertex(AppVertexId(50)).unwrap();
                    tx.commit().unwrap();
                }
                ctx.barrier();
                // and a later checkpoint succeeds again
                assert_eq!(eng.checkpoint().unwrap(), 2);
            });
        }
        let (db, fabric, plan) = recover(PersistOptions::new(&td.0), CostModel::zero()).unwrap();
        assert_eq!(plan.snapshot_id(), 2);
        fabric.run(|ctx| {
            let eng = db.attach(ctx);
            plan.restore_rank(&eng).unwrap();
            let tx = eng.begin(AccessMode::ReadOnly);
            for i in [0u64, 1, 2, 3, 50] {
                tx.translate_vertex_id(AppVertexId(i)).unwrap();
            }
            tx.commit().unwrap();
        });
    }

    /// A torn final frame (crash mid-append) must not poison the log:
    /// recovery truncates at the last checksum-valid frame, keeps every
    /// earlier commit, and never surfaces an I/O error.
    #[test]
    fn torn_redo_tail_truncates_and_recovers() {
        let td = TestDir::new("torntail");
        let cfg = GdaConfig::tiny();
        {
            let (db, fabric) = GdaDb::with_fabric("tt", cfg, 1, CostModel::zero());
            let store = db.enable_persistence(PersistOptions::new(&td.0)).unwrap();
            fabric.run(|ctx| {
                let eng = db.attach(ctx);
                eng.init_collective();
                let tx = eng.begin(AccessMode::ReadWrite);
                for i in 0..4u64 {
                    tx.create_vertex(AppVertexId(i)).unwrap();
                }
                tx.commit().unwrap();
                // crash mid-append: only 10 bytes of the next frame land
                store
                    .fault_plane()
                    .arm(faults::REDO_APPEND, FaultMode::TornWrite(10));
                let tx = eng.begin(AccessMode::ReadWrite);
                tx.create_vertex(AppVertexId(50)).unwrap();
                tx.commit().unwrap(); // in-memory commit stands
                assert_eq!(store.log_errors(), 1, "lost durability is counted");
            });
        }
        let torn_len = fs::metadata(td.0.join("redo-rank-0.log")).unwrap().len();
        let (db, fabric, plan) = recover(PersistOptions::new(&td.0), CostModel::zero()).unwrap();
        fabric.run(|ctx| {
            let eng = db.attach(ctx);
            let rec = plan.restore_rank(&eng).unwrap();
            assert_eq!(rec.errors, 0);
            assert!(
                rec.log_bytes < torn_len,
                "the torn bytes must be truncated, not parsed: {} !< {torn_len}",
                rec.log_bytes
            );
            let tx = eng.begin(AccessMode::ReadOnly);
            for i in 0..4u64 {
                tx.translate_vertex_id(AppVertexId(i)).unwrap();
            }
            // the torn commit was never durable
            assert!(tx.translate_vertex_id(AppVertexId(50)).is_err());
            tx.commit().unwrap();
        });
    }

    /// An append that *fails* (device error, no crash) must leave the
    /// log well-formed: commits after the failed one land and stay
    /// recoverable — a partial frame may never orphan later frames.
    #[test]
    fn failed_append_keeps_later_frames_recoverable() {
        let td = TestDir::new("failapp");
        let cfg = GdaConfig::tiny();
        {
            let (db, fabric) = GdaDb::with_fabric("fa", cfg, 1, CostModel::zero());
            let store = db.enable_persistence(PersistOptions::new(&td.0)).unwrap();
            fabric.run(|ctx| {
                let eng = db.attach(ctx);
                eng.init_collective();
                let tx = eng.begin(AccessMode::ReadWrite);
                for i in 0..4u64 {
                    tx.create_vertex(AppVertexId(i)).unwrap();
                }
                tx.commit().unwrap();
                store
                    .fault_plane()
                    .arm(faults::REDO_APPEND, FaultMode::Error);
                let tx = eng.begin(AccessMode::ReadWrite);
                tx.create_vertex(AppVertexId(50)).unwrap();
                tx.commit().unwrap(); // durability lost, commit serves on
                assert_eq!(store.log_errors(), 1);
                // the log keeps appending cleanly after the error
                let tx = eng.begin(AccessMode::ReadWrite);
                tx.create_vertex(AppVertexId(60)).unwrap();
                tx.commit().unwrap();
                assert_eq!(store.log_errors(), 1);
            });
        }
        let (db, fabric, plan) = recover(PersistOptions::new(&td.0), CostModel::zero()).unwrap();
        fabric.run(|ctx| {
            let eng = db.attach(ctx);
            let rec = plan.restore_rank(&eng).unwrap();
            assert_eq!(rec.errors, 0);
            let tx = eng.begin(AccessMode::ReadOnly);
            for i in [0u64, 1, 2, 3, 60] {
                tx.translate_vertex_id(AppVertexId(i)).unwrap();
            }
            assert!(
                tx.translate_vertex_id(AppVertexId(50)).is_err(),
                "the failed append's commit was never durable"
            );
            tx.commit().unwrap();
        });
    }

    /// A checkpoint that crashes at the `CURRENT` swing — after every
    /// rank wrote its snapshot piece, before publication — must leave
    /// every rank's log tail replayable against the *previous* snapshot.
    #[test]
    fn failed_publish_leaves_all_log_tails_replayable() {
        let td = TestDir::new("failpub");
        let cfg = GdaConfig::tiny();
        {
            let (db, fabric) = GdaDb::with_fabric("fp", cfg, 2, CostModel::zero());
            let store = db.enable_persistence(PersistOptions::new(&td.0)).unwrap();
            fabric.run(|ctx| {
                let eng = db.attach(ctx);
                eng.init_collective();
                if ctx.rank() == 0 {
                    let tx = eng.begin(AccessMode::ReadWrite);
                    for i in 0..4u64 {
                        tx.create_vertex(AppVertexId(i)).unwrap();
                    }
                    tx.commit().unwrap();
                }
                ctx.barrier();
                assert_eq!(eng.checkpoint().unwrap(), 1);
                // post-checkpoint commits on *both* ranks: until the next
                // publish they live only in the per-rank redo tails
                let tx = eng.begin(AccessMode::ReadWrite);
                tx.create_vertex(AppVertexId(100 + ctx.rank() as u64))
                    .unwrap();
                tx.commit().unwrap();
                if ctx.rank() == 0 {
                    store
                        .fault_plane()
                        .arm(faults::CURRENT_RENAME, FaultMode::Error);
                }
                ctx.barrier();
                assert!(eng.checkpoint().is_err(), "publish crash must abort");
                // nothing rotated: every rank's tail still holds its commits
                let log = td.0.join(format!("redo-rank-{}.log", ctx.rank()));
                assert!(fs::metadata(&log).unwrap().len() > 0);
                assert_eq!(store.current(), 1);
                assert!(!store.ckpt_dir_exists(2), "aborted attempt unwinds");
            });
        }
        let cur = fs::read_to_string(td.0.join("CURRENT")).unwrap();
        assert_eq!(cur.trim(), "1", "CURRENT still names the old snapshot");
        let (db, fabric, plan) = recover(PersistOptions::new(&td.0), CostModel::zero()).unwrap();
        assert_eq!(plan.snapshot_id(), 1);
        fabric.run(|ctx| {
            let eng = db.attach(ctx);
            let rec = plan.restore_rank(&eng).unwrap();
            assert_eq!(rec.errors, 0);
            let tx = eng.begin(AccessMode::ReadOnly);
            for i in [0u64, 1, 2, 3, 100, 101] {
                tx.translate_vertex_id(AppVertexId(i))
                    .unwrap_or_else(|e| panic!("vertex {i} lost: {e}"));
            }
            tx.commit().unwrap();
        });
    }

    /// Multi-rank traffic with cross-rank mirror updates: recovery must
    /// reconstruct identical read state on every rank.
    #[test]
    fn multi_rank_recovery_with_mirrors() {
        let td = TestDir::new("multi");
        let cfg = GdaConfig::tiny();
        let expected_edges = 12usize;
        {
            let (db, fabric) = GdaDb::with_fabric("m", cfg, 4, CostModel::zero());
            db.enable_persistence(PersistOptions::new(&td.0)).unwrap();
            fabric.run(|ctx| {
                let eng = db.attach(ctx);
                eng.init_collective();
                if ctx.rank() == 0 {
                    let tx = eng.begin(AccessMode::ReadWrite);
                    for i in 0..16u64 {
                        tx.create_vertex(AppVertexId(i)).unwrap();
                    }
                    tx.commit().unwrap();
                }
                ctx.barrier();
                eng.checkpoint().unwrap();
                // every rank adds edges from its own vertices (routed),
                // landing mirror updates in other ranks' holders
                let me = ctx.rank() as u64;
                for k in 0..3u64 {
                    let tx = eng.begin(AccessMode::ReadWrite);
                    let a = tx.translate_vertex_id(AppVertexId(me + 4 * k)).unwrap();
                    let b = tx
                        .translate_vertex_id(AppVertexId((me + 4 * k + 5) % 16))
                        .unwrap();
                    tx.add_edge(a, b, None, true).unwrap();
                    tx.commit().unwrap();
                    ctx.barrier();
                }
            });
        }
        let (db, fabric, plan) = recover(PersistOptions::new(&td.0), CostModel::zero()).unwrap();
        fabric.run(|ctx| {
            let eng = db.attach(ctx);
            let rec = plan.restore_rank(&eng).unwrap();
            assert_eq!(rec.errors, 0, "{rec:?}");
            let tx = eng.begin(AccessMode::ReadOnly);
            let mut out_edges = 0usize;
            for i in 0..16u64 {
                let v = tx.translate_vertex_id(AppVertexId(i)).unwrap();
                out_edges += tx.edge_count(v, EdgeOrientation::Outgoing).unwrap();
                // mirror invariant: in-degree total matches out-degree
            }
            assert_eq!(out_edges, expected_edges);
            tx.commit().unwrap();
            ctx.barrier();
        });
    }

    /// Regression: a primary that was *free at snapshot time* (its
    /// pre-checkpoint occupant was deleted before the checkpoint, which
    /// leaves the bytes and every chain pointer intact in `WIN_DATA`)
    /// can still decode as a stale incarnation of the very app id a
    /// post-checkpoint commit recreated there — the delete is not in
    /// the replayed tail, so nothing vacates the block. Replay must
    /// treat a sweep-1-claimed primary as vacant: following the stale
    /// chain makes `write_chain` reuse continuation blocks that belong
    /// to other replayed records.
    /// Choreography (2 ranks; apps 1/3/5 live in rank 1's pool):
    /// X (app 1, 3 blocks P→C1→C2) is created and deleted before the
    /// checkpoint, so the snapshot holds the intact stale chain with
    /// all three blocks free. After the checkpoint, rank 1 creates
    /// dummies that take C2 and C1 as their primaries, then rank 0
    /// recreates app 1 — LIFO hands it P. Replay runs rank 0's log
    /// first: at that moment the stale chain is still fully readable,
    /// and mistaking it for an occupant writes app 1's 3-block holder
    /// over C1/C2 — the dummies' primaries.
    #[test]
    fn replay_ignores_stale_chain_of_precheckpoint_deleted_holder() {
        let td = TestDir::new("stalechain");
        let cfg = GdaConfig::tiny(); // 128 B blocks, 120 B payload
        let big = PropertyValue::Bytes(vec![0xCD; 260]); // 3-block holder
        let big2 = PropertyValue::Bytes(vec![0xEE; 260]); // recreate's blob
        {
            let (db, fabric) = GdaDb::with_fabric("sc", cfg, 2, CostModel::zero());
            db.enable_persistence(PersistOptions::new(&td.0)).unwrap();
            fabric.run(|ctx| {
                let eng = db.attach(ctx);
                eng.init_collective();
                let blob = if ctx.rank() == 0 {
                    Some(
                        eng.create_ptype(
                            "blob",
                            Datatype::Byte,
                            EntityType::Vertex,
                            Multiplicity::Single,
                            SizeType::NoLimit,
                            0,
                        )
                        .unwrap(),
                    )
                } else {
                    None
                };
                ctx.barrier();
                eng.refresh_meta();
                let blob = blob.unwrap_or_else(|| eng.meta().ptype_from_name("blob").unwrap());
                // X: app 1 (rank-1 pool), 3 blocks — created and deleted
                // entirely before the checkpoint
                if ctx.rank() == 0 {
                    let tx = eng.begin(AccessMode::ReadWrite);
                    let x = tx.create_vertex(AppVertexId(1)).unwrap();
                    tx.add_property(x, blob, &big).unwrap();
                    tx.commit().unwrap();
                    let tx = eng.begin(AccessMode::ReadWrite);
                    let x = tx.translate_vertex_id(AppVertexId(1)).unwrap();
                    tx.delete_vertex(x).unwrap();
                    tx.commit().unwrap();
                }
                ctx.barrier();
                eng.checkpoint().unwrap();
                // rank 1's log: dummies take C2 and C1 as primaries
                if ctx.rank() == 1 {
                    for app in [3u64, 5] {
                        let tx = eng.begin(AccessMode::ReadWrite);
                        let d = tx.create_vertex(AppVertexId(app)).unwrap();
                        tx.add_property(d, blob, &PropertyValue::Bytes(vec![app as u8]))
                            .unwrap();
                        tx.commit().unwrap();
                    }
                }
                ctx.barrier();
                // rank 0's log: recreate app 1 at P, 3 blocks again
                if ctx.rank() == 0 {
                    let tx = eng.begin(AccessMode::ReadWrite);
                    let v = tx.create_vertex(AppVertexId(1)).unwrap();
                    tx.add_property(v, blob, &big2).unwrap();
                    tx.commit().unwrap();
                }
                ctx.barrier();
            });
        }
        let (db, fabric, plan) = recover(PersistOptions::new(&td.0), CostModel::zero()).unwrap();
        fabric.run(|ctx| {
            let eng = db.attach(ctx);
            let rec = plan.restore_rank(&eng).unwrap();
            assert_eq!(rec.errors, 0, "{rec:?}");
            let blob = eng.meta().ptype_from_name("blob").unwrap();
            let tx = eng.begin(AccessMode::ReadOnly);
            for (app, want) in [(1u64, vec![0xEE; 260]), (3, vec![3]), (5, vec![5])] {
                let v = tx.translate_vertex_id(AppVertexId(app)).unwrap();
                assert_eq!(
                    tx.property(v, blob).unwrap(),
                    Some(PropertyValue::Bytes(want)),
                    "app {app}"
                );
            }
            tx.commit().unwrap();
            ctx.barrier();
            // pool accounting survived: deleting everything must drain
            // rank 1's pool back to exactly full — a stale chain
            // replayed as an occupant corrupts it
            if ctx.rank() == 0 {
                let tx = eng.begin(AccessMode::ReadWrite);
                for app in [1u64, 3, 5] {
                    let v = tx.translate_vertex_id(AppVertexId(app)).unwrap();
                    tx.delete_vertex(v).unwrap();
                }
                tx.commit().unwrap();
            }
            ctx.barrier();
            assert_eq!(eng.bm.count_free(1), eng.cfg().blocks_per_rank);
            ctx.barrier();
        });
    }

    /// Regression: enabling persistence on a database that already
    /// carries in-memory `version + 1` bumps (they never touched the
    /// owner-rank stamp counters) must not let a later incarnation of
    /// an app id stamp *below* an earlier logged delete. The logged
    /// delete caps the owner's commit-stamp counter, so a cross-rank
    /// recreate in the redo tail stamps above the tombstone version and
    /// survives replay instead of being refused as stale.
    #[test]
    fn midlife_persistence_keeps_cross_log_versions_ordered() {
        let td = TestDir::new("midlife");
        let cfg = GdaConfig::tiny();
        {
            let (db, fabric) = GdaDb::with_fabric("ml", cfg, 2, CostModel::zero());
            // phase 1: no persistence — versions grow by unstamped +1s
            fabric.run(|ctx| {
                let eng = db.attach(ctx);
                eng.init_collective();
                if ctx.rank() == 0 {
                    let age = eng
                        .create_ptype(
                            "age",
                            Datatype::Uint64,
                            EntityType::Vertex,
                            Multiplicity::Single,
                            SizeType::Fixed,
                            1,
                        )
                        .unwrap();
                    let tx = eng.begin(AccessMode::ReadWrite);
                    let v = tx.create_vertex(AppVertexId(1)).unwrap();
                    tx.add_property(v, age, &PropertyValue::U64(0)).unwrap();
                    tx.commit().unwrap();
                    for i in 1..4u64 {
                        let tx = eng.begin(AccessMode::ReadWrite);
                        let v = tx.translate_vertex_id(AppVertexId(1)).unwrap();
                        tx.update_property(v, age, &PropertyValue::U64(i)).unwrap();
                        tx.commit().unwrap();
                    }
                }
                ctx.barrier();
            });
            // phase 2: persistence enabled mid-life; checkpoint captures
            // the pre-persistence state, then delete and recreate land
            // in *different* ranks' redo tails
            db.enable_persistence(PersistOptions::new(&td.0)).unwrap();
            fabric.run(|ctx| {
                let eng = db.attach(ctx);
                eng.refresh_meta();
                eng.checkpoint().unwrap();
                if ctx.rank() == 0 {
                    let tx = eng.begin(AccessMode::ReadWrite);
                    let v = tx.translate_vertex_id(AppVertexId(1)).unwrap();
                    tx.delete_vertex(v).unwrap();
                    tx.commit().unwrap();
                }
                ctx.barrier();
                if ctx.rank() == 1 {
                    let age = eng.meta().ptype_from_name("age").unwrap();
                    let tx = eng.begin(AccessMode::ReadWrite);
                    let v = tx.create_vertex(AppVertexId(1)).unwrap();
                    tx.add_property(v, age, &PropertyValue::U64(77)).unwrap();
                    tx.commit().unwrap();
                }
                ctx.barrier();
            });
        }
        let (db, fabric, plan) = recover(PersistOptions::new(&td.0), CostModel::zero()).unwrap();
        fabric.run(|ctx| {
            let eng = db.attach(ctx);
            let rec = plan.restore_rank(&eng).unwrap();
            assert_eq!(rec.errors, 0, "{rec:?}");
            let age = eng.meta().ptype_from_name("age").unwrap();
            let tx = eng.begin(AccessMode::ReadOnly);
            let v = tx
                .translate_vertex_id(AppVertexId(1))
                .expect("the cross-rank recreate must survive replay");
            assert_eq!(tx.property(v, age).unwrap(), Some(PropertyValue::U64(77)));
            tx.commit().unwrap();
        });
    }

    /// Regression: an object created *and* deleted after the checkpoint
    /// leaves only refused records in the tail (the delete tombstones
    /// its upsert). The primary sweep 1 claimed for the upsert must be
    /// released at end of replay, not leaked into every later
    /// checkpoint.
    #[test]
    fn refused_upsert_releases_claimed_primary() {
        let td = TestDir::new("refusedclaim");
        let cfg = GdaConfig::tiny();
        {
            let (db, fabric) = GdaDb::with_fabric("rc", cfg, 1, CostModel::zero());
            db.enable_persistence(PersistOptions::new(&td.0)).unwrap();
            fabric.run(|ctx| {
                let eng = db.attach(ctx);
                eng.init_collective();
                let tx = eng.begin(AccessMode::ReadWrite);
                tx.create_vertex(AppVertexId(1)).unwrap();
                tx.commit().unwrap();
                eng.checkpoint().unwrap();
                // tail: create app 2, then delete it again
                let tx = eng.begin(AccessMode::ReadWrite);
                tx.create_vertex(AppVertexId(2)).unwrap();
                tx.commit().unwrap();
                let tx = eng.begin(AccessMode::ReadWrite);
                let v = tx.translate_vertex_id(AppVertexId(2)).unwrap();
                tx.delete_vertex(v).unwrap();
                tx.commit().unwrap();
            });
        }
        let (db, fabric, plan) = recover(PersistOptions::new(&td.0), CostModel::zero()).unwrap();
        fabric.run(|ctx| {
            let eng = db.attach(ctx);
            let rec = plan.restore_rank(&eng).unwrap();
            assert_eq!(rec.errors, 0, "{rec:?}");
            let tx = eng.begin(AccessMode::ReadOnly);
            tx.translate_vertex_id(AppVertexId(1)).unwrap();
            assert!(tx.translate_vertex_id(AppVertexId(2)).is_err());
            tx.commit().unwrap();
            // app 2's sweep-1-claimed primary went back to the pool
            let tx = eng.begin(AccessMode::ReadWrite);
            let v = tx.translate_vertex_id(AppVertexId(1)).unwrap();
            tx.delete_vertex(v).unwrap();
            tx.commit().unwrap();
            assert_eq!(eng.bm.count_free(0), eng.cfg().blocks_per_rank);
        });
    }

    /// Per app id: `None` (does not translate) or the `val` property
    /// plus the any-orientation edge count.
    type Observed = Vec<(u64, Option<(Option<PropertyValue>, usize)>)>;

    /// The observable state a reshard must preserve: per app id the
    /// `val` property and the any-orientation edge count, plus (when an
    /// index exists) the global set of indexed app ids.
    fn observable_state(eng: &GdaRank, ids: u64, val: PTypeId) -> Observed {
        let tx = eng.begin(AccessMode::ReadOnly);
        let out = (0..ids)
            .map(|i| {
                let entry = tx.translate_vertex_id(AppVertexId(i)).ok().map(|v| {
                    (
                        tx.property(v, val).unwrap(),
                        tx.edge_count(v, EdgeOrientation::Any).unwrap(),
                    )
                });
                (i, entry)
            })
            .collect();
        tx.commit().unwrap();
        out
    }

    /// Elastic reshard end to end: a 2-rank database with properties,
    /// lightweight + heavyweight edges, an index, a checkpoint and a
    /// redo tail (including a delete) restores identically onto 1, 3
    /// and 5 ranks — and the resharded database checkpoints at its own
    /// topology, so a further same-topology recovery works.
    #[test]
    fn resharded_recovery_preserves_state_across_rank_counts() {
        let td = TestDir::new("reshard");
        let cfg = GdaConfig::tiny();
        let ids = 10u64;
        {
            let (db, fabric) = GdaDb::with_fabric("rs", cfg, 2, CostModel::zero());
            db.enable_persistence(PersistOptions::new(&td.0)).unwrap();
            fabric.run(|ctx| {
                let eng = db.attach(ctx);
                eng.init_collective();
                if ctx.rank() == 0 {
                    eng.create_label("Node").unwrap();
                    eng.create_ptype(
                        "val",
                        Datatype::Uint64,
                        EntityType::Vertex,
                        Multiplicity::Single,
                        SizeType::Fixed,
                        1,
                    )
                    .unwrap();
                    eng.create_ptype(
                        "weight",
                        Datatype::Uint64,
                        EntityType::Edge,
                        Multiplicity::Single,
                        SizeType::Fixed,
                        1,
                    )
                    .unwrap();
                    eng.create_index("nodes", vec![LabelId(1)], vec![]).unwrap();
                }
                ctx.barrier();
                eng.refresh_meta();
                let val = eng.meta().ptype_from_name("val").unwrap();
                let weight = eng.meta().ptype_from_name("weight").unwrap();
                if ctx.rank() == 0 {
                    let tx = eng.begin(AccessMode::ReadWrite);
                    for i in 0..ids {
                        let v = tx.create_vertex(AppVertexId(i)).unwrap();
                        tx.add_property(v, val, &PropertyValue::U64(i * 7)).unwrap();
                        if i.is_multiple_of(2) {
                            tx.add_label(v, LabelId(1)).unwrap();
                        }
                    }
                    tx.commit().unwrap();
                    // a heavyweight edge (property on the edge)
                    let tx = eng.begin(AccessMode::ReadWrite);
                    let a = tx.translate_vertex_id(AppVertexId(0)).unwrap();
                    let b = tx.translate_vertex_id(AppVertexId(3)).unwrap();
                    let e = tx.add_edge(a, b, None, true).unwrap();
                    tx.set_edge_property(e, weight, &PropertyValue::U64(42))
                        .unwrap();
                    tx.commit().unwrap();
                }
                ctx.barrier();
                eng.checkpoint().unwrap();
                // redo tail: cross-rank edges, an update, a delete, and
                // a vertex that exists only in the logs
                if ctx.rank() == 1 {
                    let tx = eng.begin(AccessMode::ReadWrite);
                    let a = tx.translate_vertex_id(AppVertexId(1)).unwrap();
                    let b = tx.translate_vertex_id(AppVertexId(6)).unwrap();
                    tx.add_edge(a, b, None, true).unwrap();
                    tx.update_property(a, val, &PropertyValue::U64(999))
                        .unwrap();
                    tx.commit().unwrap();
                }
                ctx.barrier();
                if ctx.rank() == 0 {
                    let tx = eng.begin(AccessMode::ReadWrite);
                    let d = tx.translate_vertex_id(AppVertexId(4)).unwrap();
                    tx.delete_vertex(d).unwrap();
                    tx.commit().unwrap();
                    let tx = eng.begin(AccessMode::ReadWrite);
                    let v = tx.create_vertex(AppVertexId(100)).unwrap();
                    tx.add_property(v, val, &PropertyValue::U64(5)).unwrap();
                    tx.commit().unwrap();
                }
                ctx.barrier();
            });
        }
        // reference: what a same-topology recovery reads back
        let want = {
            let (db, fabric, plan) =
                recover(PersistOptions::new(&td.0), CostModel::zero()).unwrap();
            let states = fabric.run(|ctx| {
                let eng = db.attach(ctx);
                plan.restore_rank(&eng).unwrap();
                let val = eng.meta().ptype_from_name("val").unwrap();
                observable_state(&eng, 101, val)
            });
            states.into_iter().next().unwrap()
        };
        // each reshard's closing checkpoint becomes the next snapshot,
        // so the chain re-reshards its own output: 2 → 1 → 3 → 5
        let mut from = 2usize;
        for q in [1usize, 3, 5] {
            let (db, fabric, plan) =
                recover_with_topology(PersistOptions::new(&td.0), CostModel::zero(), Some(q))
                    .unwrap();
            assert_eq!(plan.resharding_from(), Some(from), "Q={q}");
            assert!(plan.reshard_objects() > 0);
            let states = fabric.run(|ctx| {
                let eng = db.attach(ctx);
                let rec = plan.restore_rank(&eng).unwrap();
                assert_eq!(rec.resharded_from, Some(from));
                assert!(rec.final_checkpoint.is_some(), "reshard must publish");
                let val = eng.meta().ptype_from_name("val").unwrap();
                let weight = eng.meta().ptype_from_name("weight").unwrap();
                let got = observable_state(&eng, 101, val);
                // the heavy edge's property survived the move
                let tx = eng.begin(AccessMode::ReadOnly);
                let a = tx.translate_vertex_id(AppVertexId(0)).unwrap();
                let e = tx.edges(a, EdgeOrientation::Outgoing).unwrap()[0];
                assert_eq!(
                    tx.edge_property(e, weight).unwrap(),
                    Some(PropertyValue::U64(42)),
                    "Q={q}"
                );
                tx.commit().unwrap();
                // index postings survived membership-exact (vertex 4
                // was even/labelled but deleted in the tail)
                let ix = eng.all_indexes()[0].id;
                let mine: Vec<u64> = eng
                    .local_index_vertices(ix)
                    .into_iter()
                    .map(|p| p.app_id.0)
                    .collect();
                let mut all: Vec<u64> = ctx.allgatherv(mine).into_iter().flatten().collect();
                all.sort_unstable();
                assert_eq!(all, vec![0, 2, 6, 8], "Q={q}");
                // the resharded database accepts new transactions
                if ctx.rank() == 0 {
                    let tx = eng.begin(AccessMode::ReadWrite);
                    tx.create_vertex(AppVertexId(500 + q as u64)).unwrap();
                    tx.commit().unwrap();
                }
                ctx.barrier();
                got
            });
            for state in &states {
                assert_eq!(state, &want, "Q={q} diverged from same-topology recovery");
            }
            // the reshard's closing checkpoint is a native Q-topology
            // snapshot: a plain recover() boots Q ranks from it
            let (db2, fabric2, plan2) =
                recover(PersistOptions::new(&td.0), CostModel::zero()).unwrap();
            assert_eq!(db2.nranks(), q);
            let states2 = fabric2.run(|ctx| {
                let eng = db2.attach(ctx);
                let rec = plan2.restore_rank(&eng).unwrap();
                assert_eq!(rec.errors, 0);
                let val = eng.meta().ptype_from_name("val").unwrap();
                observable_state(&eng, 101, val)
            });
            let mut follow = states2.into_iter().next().unwrap();
            // drop the vertices added post-reshard before comparing
            follow.retain(|(id, _)| *id < 500);
            assert_eq!(follow, want, "post-reshard recovery at Q={q}");
            from = q;
        }
    }

    /// Genesis reshard: no checkpoint was ever taken — the logical
    /// state comes entirely from the redo logs, rebuilt on more ranks.
    #[test]
    fn genesis_reshard_replays_logs_onto_new_topology() {
        let td = TestDir::new("genesis-reshard");
        let cfg = GdaConfig::tiny();
        {
            let (db, fabric) = GdaDb::with_fabric("gr", cfg, 2, CostModel::zero());
            db.enable_persistence(PersistOptions::new(&td.0)).unwrap();
            fabric.run(|ctx| {
                let eng = db.attach(ctx);
                eng.init_collective();
                if ctx.rank() == 0 {
                    let tx = eng.begin(AccessMode::ReadWrite);
                    for i in 0..6u64 {
                        tx.create_vertex(AppVertexId(i)).unwrap();
                    }
                    tx.commit().unwrap();
                }
                ctx.barrier();
                if ctx.rank() == 1 {
                    let tx = eng.begin(AccessMode::ReadWrite);
                    let a = tx.translate_vertex_id(AppVertexId(2)).unwrap();
                    let b = tx.translate_vertex_id(AppVertexId(5)).unwrap();
                    tx.add_edge(a, b, None, true).unwrap();
                    tx.commit().unwrap();
                }
                ctx.barrier();
            });
        }
        let (db, fabric, plan) =
            recover_with_topology(PersistOptions::new(&td.0), CostModel::zero(), Some(3)).unwrap();
        assert_eq!(plan.snapshot_id(), 0);
        fabric.run(|ctx| {
            let eng = db.attach(ctx);
            plan.restore_rank(&eng).unwrap();
            let tx = eng.begin(AccessMode::ReadOnly);
            for i in 0..6u64 {
                tx.translate_vertex_id(AppVertexId(i)).unwrap();
            }
            let a = tx.translate_vertex_id(AppVertexId(2)).unwrap();
            assert_eq!(tx.edge_count(a, EdgeOrientation::Outgoing).unwrap(), 1);
            tx.commit().unwrap();
        });
    }

    /// A mid-reshard failure on a *receiving* rank must abort the whole
    /// restore collectively (no barrier deadlock), leave `CURRENT` at
    /// the previous P-topology snapshot, and keep a plain same-topology
    /// recovery of that snapshot fully working.
    #[test]
    fn failed_reshard_keeps_previous_snapshot_recoverable() {
        let td = TestDir::new("failreshard");
        let cfg = GdaConfig::tiny();
        {
            let (db, fabric) = GdaDb::with_fabric("fr", cfg, 2, CostModel::zero());
            db.enable_persistence(PersistOptions::new(&td.0)).unwrap();
            fabric.run(|ctx| {
                let eng = db.attach(ctx);
                eng.init_collective();
                if ctx.rank() == 0 {
                    let tx = eng.begin(AccessMode::ReadWrite);
                    for i in 0..8u64 {
                        tx.create_vertex(AppVertexId(i)).unwrap();
                    }
                    tx.commit().unwrap();
                }
                ctx.barrier();
                eng.checkpoint().unwrap();
                if ctx.rank() == 1 {
                    let tx = eng.begin(AccessMode::ReadWrite);
                    tx.create_vertex(AppVertexId(50)).unwrap();
                    tx.commit().unwrap();
                }
                ctx.barrier();
            });
        }
        {
            let (db, fabric, plan) =
                recover_with_topology(PersistOptions::new(&td.0), CostModel::zero(), Some(4))
                    .unwrap();
            db.persistence().unwrap().fault_plane().arm_at(
                faults::RESHARD_REDISTRIBUTE,
                Some(1),
                0,
                1,
                FaultMode::Error,
            );
            let results = fabric.run(|ctx| {
                let eng = db.attach(ctx);
                plan.restore_rank(&eng).err()
            });
            assert!(
                results.iter().all(|e| e.is_some()),
                "every rank must observe the collective abort: {results:?}"
            );
        }
        // CURRENT still names the P-topology snapshot...
        let cur = fs::read_to_string(td.0.join("CURRENT")).unwrap();
        assert_eq!(cur.trim(), "1", "aborted reshard must not publish");
        // ...and the untouched snapshot + logs recover at P as before
        let (db, fabric, plan) = recover(PersistOptions::new(&td.0), CostModel::zero()).unwrap();
        assert_eq!(db.nranks(), 2);
        fabric.run(|ctx| {
            let eng = db.attach(ctx);
            let rec = plan.restore_rank(&eng).unwrap();
            assert_eq!(rec.errors, 0);
            let tx = eng.begin(AccessMode::ReadOnly);
            for i in (0..8u64).chain([50]) {
                tx.translate_vertex_id(AppVertexId(i)).unwrap();
            }
            tx.commit().unwrap();
        });
    }

    /// Scale-in concentrates all data on fewer ranks: the live config
    /// must grow (blocks / DHT heap) so a 4-rank dataset fits on 1.
    #[test]
    fn scale_in_grows_per_rank_capacity() {
        let td = TestDir::new("scalein");
        let cfg = GdaConfig::tiny(); // 256 blocks, 256 heap entries/rank
        let per_rank = 120u64; // ~480 vertices: far beyond one tiny rank
        {
            let (db, fabric) = GdaDb::with_fabric("si", cfg, 4, CostModel::zero());
            db.enable_persistence(PersistOptions::new(&td.0)).unwrap();
            fabric.run(|ctx| {
                let eng = db.attach(ctx);
                eng.init_collective();
                let me = ctx.rank() as u64;
                let tx = eng.begin(AccessMode::ReadWrite);
                for k in 0..per_rank {
                    tx.create_vertex(AppVertexId(me + 4 * k)).unwrap();
                }
                tx.commit().unwrap();
                ctx.barrier();
                eng.checkpoint().unwrap();
            });
        }
        let (db, fabric, plan) =
            recover_with_topology(PersistOptions::new(&td.0), CostModel::zero(), Some(1)).unwrap();
        assert!(
            db.cfg.blocks_per_rank > cfg.blocks_per_rank,
            "block pool must grow for scale-in: {}",
            db.cfg.blocks_per_rank
        );
        assert!(db.cfg.dht_heap_per_rank > cfg.dht_heap_per_rank);
        fabric.run(|ctx| {
            let eng = db.attach(ctx);
            let rec = plan.restore_rank(&eng).unwrap();
            assert_eq!(rec.errors, 0, "{rec:?}");
            let tx = eng.begin(AccessMode::ReadOnly);
            for i in 0..per_rank * 4 {
                tx.translate_vertex_id(AppVertexId(i)).unwrap();
            }
            tx.commit().unwrap();
        });
    }

    /// Regression: a *peer* rank's redo-log truncation failing after
    /// `CURRENT` has been published must be non-fatal — the checkpoint
    /// still succeeds — and the stale frames it leaves behind (a
    /// create *and delete* of app 40, both already captured by the
    /// snapshot) must be skipped at replay via their generation stamp.
    /// Without the stamp, replaying the stale delete against the new
    /// snapshot double-frees blocks the free list already owns, which
    /// the end-of-test pool accounting catches.
    #[test]
    fn failed_peer_truncation_is_nonfatal_and_stale_frames_are_skipped() {
        let td = TestDir::new("failtrunc");
        let cfg = GdaConfig::tiny();
        {
            let (db, fabric) = GdaDb::with_fabric("ft", cfg, 2, CostModel::zero());
            let store = db.enable_persistence(PersistOptions::new(&td.0)).unwrap();
            fabric.run(|ctx| {
                let eng = db.attach(ctx);
                eng.init_collective();
                if ctx.rank() == 0 {
                    let tx = eng.begin(AccessMode::ReadWrite);
                    for i in 0..4u64 {
                        tx.create_vertex(AppVertexId(i)).unwrap();
                    }
                    tx.commit().unwrap();
                }
                ctx.barrier();
                assert_eq!(eng.checkpoint().unwrap(), 1);
                // rank 1's log: create and delete app 40 — both of
                // these land in checkpoint 2's snapshot, so replaying
                // them *against* it is the double-free hazard
                if ctx.rank() == 1 {
                    let tx = eng.begin(AccessMode::ReadWrite);
                    tx.create_vertex(AppVertexId(40)).unwrap();
                    tx.commit().unwrap();
                    let tx = eng.begin(AccessMode::ReadWrite);
                    let v = tx.translate_vertex_id(AppVertexId(40)).unwrap();
                    tx.delete_vertex(v).unwrap();
                    tx.commit().unwrap();
                    store.fault_plane().arm_at(
                        faults::REDO_ROTATE,
                        Some(1),
                        0,
                        1,
                        FaultMode::Error,
                    );
                }
                ctx.barrier();
                // truncation fails on rank 1, yet the checkpoint stands
                assert_eq!(eng.checkpoint().unwrap(), 2);
                assert_eq!(store.current(), 2);
                assert!(store.ckpt_dir_exists(2));
                let cur = fs::read_to_string(td.0.join("CURRENT")).unwrap();
                assert_eq!(cur.trim(), "2");
                // rank 1's log still holds the stale generation-1 frames
                if ctx.rank() == 1 {
                    assert!(
                        fs::metadata(td.0.join("redo-rank-1.log")).unwrap().len() > 0,
                        "the failed truncation must leave the stale frames"
                    );
                    // and new commits append *after* them, generation 2
                    let tx = eng.begin(AccessMode::ReadWrite);
                    tx.create_vertex(AppVertexId(50)).unwrap();
                    tx.commit().unwrap();
                }
                ctx.barrier();
            });
        }
        let (db, fabric, plan) = recover(PersistOptions::new(&td.0), CostModel::zero()).unwrap();
        assert_eq!(plan.snapshot_id(), 2);
        fabric.run(|ctx| {
            let eng = db.attach(ctx);
            let rec = plan.restore_rank(&eng).unwrap();
            assert_eq!(rec.errors, 0, "{rec:?}");
            let tx = eng.begin(AccessMode::ReadOnly);
            for i in [0u64, 1, 2, 3, 50] {
                tx.translate_vertex_id(AppVertexId(i)).unwrap();
            }
            assert!(
                tx.translate_vertex_id(AppVertexId(40)).is_err(),
                "the stale frames must not resurrect app 40"
            );
            tx.commit().unwrap();
            ctx.barrier();
            // pool accounting: deleting everything drains both pools
            // back to full — a replayed stale delete corrupts this
            if ctx.rank() == 0 {
                let tx = eng.begin(AccessMode::ReadWrite);
                for i in [0u64, 1, 2, 3, 50] {
                    let v = tx.translate_vertex_id(AppVertexId(i)).unwrap();
                    tx.delete_vertex(v).unwrap();
                }
                tx.commit().unwrap();
            }
            ctx.barrier();
            assert_eq!(eng.bm.count_free(0), eng.cfg().blocks_per_rank);
            assert_eq!(eng.bm.count_free(1), eng.cfg().blocks_per_rank);
            ctx.barrier();
        });
    }

    /// Regression (stale-mark patching): a `log_mark` taken before a
    /// checkpoint must not be usable afterwards. The redo file keeps
    /// its name and is truncated at publish, so once post-checkpoint
    /// commits regrow the file past the marked length, a length-only
    /// mark would silently read unrelated bytes (typically mid-frame →
    /// an empty "delta") instead of forcing the rebuild.
    #[test]
    fn log_mark_from_previous_generation_forces_rebuild() {
        let td = TestDir::new("stalemark");
        let cfg = GdaConfig::tiny();
        let (db, fabric) = GdaDb::with_fabric("sm", cfg, 1, CostModel::zero());
        let store = db.enable_persistence(PersistOptions::new(&td.0)).unwrap();
        fabric.run(|ctx| {
            let eng = db.attach(ctx);
            eng.init_collective();
            let tx = eng.begin(AccessMode::ReadWrite);
            tx.create_vertex(AppVertexId(1)).unwrap();
            tx.commit().unwrap();
            let mark = store.log_mark(0);
            // sanity: the tail after the mark is addressable pre-ckpt
            let tx = eng.begin(AccessMode::ReadWrite);
            tx.create_vertex(AppVertexId(2)).unwrap();
            tx.commit().unwrap();
            assert!(!store.read_log_tail(0, mark).unwrap().is_empty());
            // a checkpoint truncates the log and bumps the generation
            eng.checkpoint().unwrap();
            // regrow the file well past the marked length
            for i in 10..30u64 {
                let tx = eng.begin(AccessMode::ReadWrite);
                tx.create_vertex(AppVertexId(i)).unwrap();
                tx.commit().unwrap();
            }
            let len_now = fs::metadata(td.0.join("redo-rank-0.log")).unwrap().len();
            assert!(len_now > mark.1, "the file must have regrown past the mark");
            assert!(
                store.read_log_tail(0, mark).is_none(),
                "a pre-checkpoint mark must force a rebuild, not patch"
            );
            // a fresh mark patches normally again
            let mark2 = store.log_mark(0);
            let tx = eng.begin(AccessMode::ReadWrite);
            tx.create_vertex(AppVertexId(90)).unwrap();
            tx.commit().unwrap();
            assert_eq!(store.read_log_tail(0, mark2).unwrap().len(), 1);
        });
    }

    /// Delta checkpoints chain onto the full base, shrink with churn
    /// rather than database size, survive recovery — and gc must keep
    /// every chain member alive (the old `id - 1` rule would delete
    /// the base right out from under the deltas).
    #[test]
    fn delta_chain_recovers_and_gc_keeps_base() {
        let td = TestDir::new("deltachain");
        let cfg = GdaConfig::tiny();
        {
            let (db, fabric) = GdaDb::with_fabric("dc", cfg, 1, CostModel::zero());
            let store = db.enable_persistence(PersistOptions::new(&td.0)).unwrap();
            fabric.run(|ctx| {
                let eng = db.attach(ctx);
                eng.init_collective();
                let tx = eng.begin(AccessMode::ReadWrite);
                for i in 0..40u64 {
                    tx.create_vertex(AppVertexId(i)).unwrap();
                }
                tx.commit().unwrap();
                // first checkpoint: full (chain was empty)
                assert_eq!(eng.checkpoint().unwrap(), 1);
                let full = store.last_checkpoint().unwrap();
                assert!(full.full);
                assert_eq!(store.chain(), vec![1]);
                // small churn → delta, much smaller than the full image
                let tx = eng.begin(AccessMode::ReadWrite);
                tx.create_vertex(AppVertexId(100)).unwrap();
                tx.commit().unwrap();
                assert_eq!(eng.checkpoint().unwrap(), 2);
                let delta = store.last_checkpoint().unwrap();
                assert!(!delta.full, "small churn must produce a delta");
                assert!(delta.per_rank_chunks.iter().sum::<u64>() > 0);
                assert!(
                    delta.per_rank_bytes.iter().sum::<u64>()
                        < full.per_rank_bytes.iter().sum::<u64>() / 2,
                    "delta {delta:?} vs full {full:?}"
                );
                // second delta: the old `n + 1 < id` gc rule would now
                // delete ckpt-1 — the chain's base
                let tx = eng.begin(AccessMode::ReadWrite);
                tx.create_vertex(AppVertexId(101)).unwrap();
                tx.commit().unwrap();
                assert_eq!(eng.checkpoint().unwrap(), 3);
                assert_eq!(store.chain(), vec![1, 2, 3]);
                assert!(
                    store.ckpt_dir_exists(1),
                    "gc must never remove a delta chain's base"
                );
                // a redo tail on top of the chain
                let tx = eng.begin(AccessMode::ReadWrite);
                tx.create_vertex(AppVertexId(102)).unwrap();
                tx.commit().unwrap();
            });
        }
        let (db, fabric, plan) = recover(PersistOptions::new(&td.0), CostModel::zero()).unwrap();
        assert_eq!(plan.snapshot_id(), 3);
        fabric.run(|ctx| {
            let eng = db.attach(ctx);
            let rec = plan.restore_rank(&eng).unwrap();
            assert_eq!(rec.errors, 0, "{rec:?}");
            let tx = eng.begin(AccessMode::ReadOnly);
            for i in (0..40u64).chain([100, 101, 102]) {
                tx.translate_vertex_id(AppVertexId(i)).unwrap();
            }
            tx.commit().unwrap();
        });
    }

    /// A full rebase resets the chain, and gc of the *new* chain
    /// reclaims the previous chain's files — while an injected gc
    /// failure is non-fatal and a later gc catches up.
    #[test]
    fn rebase_resets_chain_and_gc_failure_is_nonfatal() {
        let td = TestDir::new("rebase");
        let cfg = GdaConfig::tiny();
        let (db, fabric) = GdaDb::with_fabric("rb", cfg, 1, CostModel::zero());
        let store = db.enable_persistence(PersistOptions::new(&td.0)).unwrap();
        fabric.run(|ctx| {
            let eng = db.attach(ctx);
            eng.init_collective();
            let tx = eng.begin(AccessMode::ReadWrite);
            for i in 0..20u64 {
                tx.create_vertex(AppVertexId(i)).unwrap();
            }
            tx.commit().unwrap();
            assert_eq!(eng.checkpoint().unwrap(), 1); // full
            let tx = eng.begin(AccessMode::ReadWrite);
            tx.create_vertex(AppVertexId(100)).unwrap();
            tx.commit().unwrap();
            assert_eq!(eng.checkpoint().unwrap(), 2); // delta on 1
            assert_eq!(store.chain(), vec![1, 2]);
            // forced rebase with gc injected to fail: the checkpoint
            // must still succeed and leave the stale chain on disk
            store
                .fault_plane()
                .arm(faults::SNAP_PRUNE, FaultMode::Error);
            let tx = eng.begin(AccessMode::ReadWrite);
            tx.create_vertex(AppVertexId(101)).unwrap();
            tx.commit().unwrap();
            assert_eq!(eng.checkpoint_full().unwrap(), 3);
            assert!(store.last_checkpoint().unwrap().full);
            assert_eq!(store.chain(), vec![3]);
            assert!(store.ckpt_dir_exists(1), "failed gc removes nothing");
            assert!(store.ckpt_dir_exists(2));
            // the next checkpoint's gc catches up: only the live chain
            // and its immediate predecessor survive
            let tx = eng.begin(AccessMode::ReadWrite);
            tx.create_vertex(AppVertexId(102)).unwrap();
            tx.commit().unwrap();
            assert_eq!(eng.checkpoint().unwrap(), 4); // delta on 3
            assert_eq!(store.chain(), vec![3, 4]);
            assert!(!store.ckpt_dir_exists(1), "caught up");
            assert!(!store.ckpt_dir_exists(2));
            assert!(store.ckpt_dir_exists(3));
            assert!(store.ckpt_dir_exists(4));
        });
    }
}

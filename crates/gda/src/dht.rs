//! Lock-free, fully-offloaded distributed hash table (§5.7, Listing 4).
//!
//! GDA resolves application vertex ids to internal `DPtr`s through a DHT
//! whose *every* operation — insert, lookup and delete — is implemented
//! with one-sided puts/gets/CAS only ("to the best of our knowledge, the
//! first DHT with all its operations being fully offloaded, including
//! deletes").
//!
//! Layout (per rank, in the index window):
//!
//! ```text
//! word 0                  : tagged free-list head of the entry heap
//! word 1                  : epoch word `delete_epoch:32 | insert_epoch:32`
//! words 2..=B+1           : buckets — each holds the heap index of the
//!                           first chain entry (0 = empty)
//! words B+2..             : heap of 3-word entries {key, value, next}
//! ```
//!
//! The **epoch word** backs the per-rank translation cache
//! ([`crate::cache`]): every successful `delete` bumps the high half and
//! every `insert` bumps the low half with one remote `fadd`, so a cached
//! positive translation is trusted only while the owner rank's delete
//! epoch is unchanged, and a cached negative entry only while the insert
//! epoch is unchanged — one `aget` revalidates either, instead of a
//! remote chain walk.
//!
//! A key `k` hashes to bucket rank `h(k) mod P` and bucket index
//! `(h(k)/P) mod B`; chains stay on the bucket's rank (distributed
//! chaining: any rank walks them one-sidedly).
//!
//! **Deletion protocol** (Listing 4): the first CAS redirects the victim's
//! `next` pointer *to the victim itself*, marking it logically deleted;
//! the second CAS swings the predecessor cell past the victim. Readers that
//! encounter a self-pointing entry restart, because the chain beyond it is
//! only recoverable by the deleting process (which remembered the original
//! successor and retries the unlink until it succeeds).

use gdi::{GdiError, GdiResult};
use rma::RankCtx;

use crate::config::{GdaConfig, WIN_INDEX};
use crate::dptr::TaggedIdx;

/// Word index of the heap free-list head.
const HEAP_HEAD_WORD: usize = 0;

/// Word index of the per-rank epoch counter (`delete:32 | insert:32`).
const EPOCH_WORD: usize = 1;

/// `fadd` delta bumping the delete half of the epoch word.
const EPOCH_DEL_DELTA: u64 = 1 << 32;

/// `fadd` delta bumping the insert half of the epoch word.
const EPOCH_INS_DELTA: u64 = 1;

/// Delete half of an epoch word (invalidates positive cached entries).
#[inline]
pub const fn epoch_del(word: u64) -> u32 {
    (word >> 32) as u32
}

/// Insert half of an epoch word (invalidates negative cached entries).
#[inline]
pub const fn epoch_ins(word: u64) -> u32 {
    word as u32
}

/// Sentinel key stored in freed heap entries so that in-flight traversals
/// can never match them. Application keys must be `< u64::MAX`.
const FREE_KEY: u64 = u64::MAX;

/// 64-bit finalizer (splitmix64): good avalanche for sequential app ids.
#[inline]
pub fn hash64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// The distributed hash table, bound to a rank context.
pub struct Dht<'c, 'f> {
    ctx: &'c RankCtx<'f>,
    cfg: GdaConfig,
}

impl<'c, 'f> Dht<'c, 'f> {
    /// Bind a DHT view to a rank context.
    pub fn new(ctx: &'c RankCtx<'f>, cfg: GdaConfig) -> Self {
        Self { ctx, cfg }
    }

    #[inline]
    fn nbuckets(&self) -> usize {
        self.cfg.dht_buckets_per_rank
    }

    #[inline]
    fn heap_base(&self) -> usize {
        2 + self.nbuckets()
    }

    /// Word of bucket `b`.
    #[inline]
    fn bucket_word(&self, b: usize) -> usize {
        2 + b
    }

    /// First word of heap entry `idx` (1-based).
    #[inline]
    fn entry_word(&self, idx: u64) -> usize {
        self.heap_base() + 3 * (idx as usize - 1)
    }

    /// Word of the `next` field of heap entry `idx`.
    #[inline]
    fn next_word(&self, idx: u64) -> usize {
        self.entry_word(idx) + 2
    }

    /// Bucket placement of a key. Delegates the rank/bucket formulas to
    /// [`crate::rankmap`] (the single authoritative copy — resharding
    /// re-evaluates them under a different rank count).
    #[inline]
    fn place(&self, key: u64) -> (usize, usize) {
        let rank = crate::rankmap::dht_rank(key, self.ctx.nranks());
        let bucket = crate::rankmap::dht_bucket(key, self.ctx.nranks(), self.nbuckets());
        (rank, self.bucket_word(bucket))
    }

    /// The rank whose index window holds `key`'s chain (and thus whose
    /// epoch word validates cached translations of `key`).
    #[inline]
    pub fn placement_rank(&self, key: u64) -> usize {
        self.place(key).0
    }

    /// Atomically read `rank`'s epoch word (one remote `aget`) — the
    /// translation-cache revalidation primitive.
    #[inline]
    pub fn read_epoch(&self, rank: usize) -> u64 {
        self.ctx.aget_u64(WIN_INDEX, rank, EPOCH_WORD)
    }

    /// Collective: initialize this rank's heap free list; ends in a barrier.
    ///
    /// The free list is threaded through the **value** word of free entries
    /// (not the `next` word): freed entries keep their self-pointing `next`
    /// from the deletion protocol, so a traverser that still holds a pointer
    /// to a reclaimed entry sees `next == self`, restarts its walk from the
    /// bucket, and can never follow a free-list link into unrelated memory.
    /// Their key word holds the reserved free-key sentinel (`u64::MAX`),
    /// so they can never match a lookup.
    pub fn init_collective(&self) {
        let me = self.ctx.rank();
        // empty every bucket (re-initialization must not leave stale chain
        // heads pointing into the rebuilt free list)
        for b in 0..self.nbuckets() {
            self.ctx.put_u64(WIN_INDEX, me, self.bucket_word(b), 0);
        }
        self.ctx.put_u64(WIN_INDEX, me, EPOCH_WORD, 0);
        let n = self.cfg.dht_heap_per_rank as u64;
        for i in 1..=n {
            let link = if i < n { i + 1 } else { 0 };
            let ew = self.entry_word(i);
            self.ctx.put_u64(WIN_INDEX, me, ew, FREE_KEY);
            self.ctx.put_u64(WIN_INDEX, me, ew + 1, link);
            self.ctx.put_u64(WIN_INDEX, me, ew + 2, i); // self-pointing
        }
        self.ctx
            .put_u64(WIN_INDEX, me, HEAP_HEAD_WORD, TaggedIdx::new(0, 1).raw());
        self.ctx.barrier();
    }

    /// Allocate a heap entry on `target` (tagged-CAS free list, like BGDL
    /// blocks; the link lives in the entry's value word).
    fn alloc(&self, target: usize) -> GdiResult<u64> {
        let mut head = TaggedIdx::from_raw(self.ctx.aget_u64(WIN_INDEX, target, HEAP_HEAD_WORD));
        loop {
            let idx = head.idx();
            if idx == 0 {
                return Err(GdiError::OutOfMemory);
            }
            let link = self
                .ctx
                .get_u64(WIN_INDEX, target, self.entry_word(idx) + 1);
            let prev = self.ctx.cas_u64(
                WIN_INDEX,
                target,
                HEAP_HEAD_WORD,
                head.raw(),
                head.bump(link).raw(),
            );
            if prev == head.raw() {
                return Ok(idx);
            }
            head = TaggedIdx::from_raw(prev);
        }
    }

    /// Return a heap entry to `target`'s free list. The entry must already
    /// be self-pointing (marked by the deletion protocol).
    fn dealloc(&self, target: usize, idx: u64) {
        let ew = self.entry_word(idx);
        self.ctx.put_u64(WIN_INDEX, target, ew, FREE_KEY);
        let mut head = TaggedIdx::from_raw(self.ctx.aget_u64(WIN_INDEX, target, HEAP_HEAD_WORD));
        loop {
            self.ctx.put_u64(WIN_INDEX, target, ew + 1, head.idx());
            let prev = self.ctx.cas_u64(
                WIN_INDEX,
                target,
                HEAP_HEAD_WORD,
                head.raw(),
                head.bump(idx).raw(),
            );
            if prev == head.raw() {
                return;
            }
            head = TaggedIdx::from_raw(prev);
        }
    }

    /// Insert a key/value pair (Listing 4 `insert`). Keys are expected to
    /// be unique; duplicate keys yield multiple entries, with lookups
    /// returning the most recently inserted.
    pub fn insert(&self, key: u64, value: u64) -> GdiResult<()> {
        self.insert_traced(key, value).map(|_| ())
    }

    /// [`Dht::insert`], returning the owner rank's epoch word as observed
    /// by the insert-epoch bump (the pre-bump value): the delete half of
    /// that word is what a write-through cache entry for `key` must
    /// record, since it was current while `key` was being published.
    pub fn insert_traced(&self, key: u64, value: u64) -> GdiResult<u64> {
        self.insert_impl(key, value, true)
    }

    /// Bulk-load variant of [`Dht::insert`] that skips the per-insert
    /// epoch bump. A batch of quiet inserts must be followed by a
    /// collective round of [`Dht::bump_own_insert_epoch`] before any
    /// reader may trust a cached negative entry again.
    pub fn insert_quiet(&self, key: u64, value: u64) -> GdiResult<()> {
        self.insert_impl(key, value, false).map(|_| ())
    }

    /// Bump this rank's own insert epoch once — the batched equivalent
    /// of per-insert bumps after a quiet bulk load. Called by **every**
    /// rank of a collective load (before its closing barrier), each
    /// rank's word advances exactly once and every cached negative
    /// entry anywhere is retired, at one local atomic per rank instead
    /// of `P` remote fadds per inserted key.
    pub fn bump_own_insert_epoch(&self) {
        if !self.cfg.translation_cache {
            return;
        }
        self.ctx
            .fadd_u64(WIN_INDEX, self.ctx.rank(), EPOCH_WORD, EPOCH_INS_DELTA);
    }

    fn insert_impl(&self, key: u64, value: u64, bump: bool) -> GdiResult<u64> {
        assert_ne!(key, FREE_KEY, "u64::MAX is a reserved key");
        let (rank, bucket) = self.place(key);
        let entry = self.alloc(rank)?;
        let ew = self.entry_word(entry);
        self.ctx.put_u64(WIN_INDEX, rank, ew, key);
        self.ctx.put_u64(WIN_INDEX, rank, ew + 1, value);
        loop {
            let head = self.ctx.aget_u64(WIN_INDEX, rank, bucket);
            self.ctx.put_u64(WIN_INDEX, rank, ew + 2, head);
            self.ctx.flush(rank);
            let prev = self.ctx.cas_u64(WIN_INDEX, rank, bucket, head, entry);
            if prev == head {
                if !bump || !self.cfg.translation_cache {
                    // nothing (yet) reads the epoch word: skip the remote
                    // bump so the path matches seed costs
                    return Ok(0);
                }
                // publish, then bump: a reader that cached a negative
                // entry just before the bump revalidates on its next
                // epoch check and finds the key. The returned (pre-bump)
                // word is safe for a write-through *positive* entry:
                // no delete of this key can land before the bump, since
                // the inserting transaction still holds the write lock
                // on the vertex a deleter would have to acquire first.
                return Ok(self
                    .ctx
                    .fadd_u64(WIN_INDEX, rank, EPOCH_WORD, EPOCH_INS_DELTA));
            }
        }
    }

    /// Look up a key (Listing 4 `lookup`).
    pub fn lookup(&self, key: u64) -> Option<u64> {
        let (rank, bucket) = self.place(key);
        'restart: loop {
            let mut ptr = self.ctx.aget_u64(WIN_INDEX, rank, bucket);
            if ptr == 0 {
                return None;
            }
            while ptr != 0 {
                let ew = self.entry_word(ptr);
                let k = self.ctx.get_u64(WIN_INDEX, rank, ew);
                let v = self.ctx.get_u64(WIN_INDEX, rank, ew + 1);
                let next = self.ctx.get_u64(WIN_INDEX, rank, ew + 2);
                if next == ptr {
                    // entry is being deleted: chain beyond it is opaque
                    std::thread::yield_now();
                    continue 'restart;
                }
                if k == key {
                    return Some(v);
                }
                ptr = next;
            }
            return None;
        }
    }

    /// Delete a key (Listing 4 `delete`). Returns whether it was present.
    pub fn delete(&self, key: u64) -> bool {
        self.delete_traced(key).is_some()
    }

    /// [`Dht::delete`], returning `Some(epoch word)` when the key was
    /// present: the insert half of that word is what a write-through
    /// *negative* cache entry for `key` must record. The word is read
    /// **before the unlink**, because a re-create of the same key can
    /// only publish (and bump the insert epoch) after the entry is
    /// unlinked — recording a pre-unlink insert epoch therefore
    /// guarantees the negative entry self-invalidates against any
    /// recreation, instead of folding a racing re-create's bump into
    /// the recorded epoch and masking the new vertex forever.
    pub fn delete_traced(&self, key: u64) -> Option<u64> {
        let (rank, bucket) = self.place(key);
        'restart: loop {
            let mut cur = self.ctx.aget_u64(WIN_INDEX, rank, bucket);
            while cur != 0 {
                let ew = self.entry_word(cur);
                let k = self.ctx.get_u64(WIN_INDEX, rank, ew);
                let next = self.ctx.get_u64(WIN_INDEX, rank, ew + 2);
                if next == cur {
                    // someone is deleting `cur`; restart once it is unlinked
                    std::thread::yield_now();
                    continue 'restart;
                }
                if k == key {
                    // CAS 1: mark the entry by pointing its next to itself
                    let prev = self
                        .ctx
                        .cas_u64(WIN_INDEX, rank, self.next_word(cur), next, cur);
                    if prev != next {
                        // lost a race (entry or its successor changed)
                        continue 'restart;
                    }
                    if !self.cfg.translation_cache {
                        self.unlink(rank, bucket, cur, next);
                        self.dealloc(rank, cur);
                        return Some(0);
                    }
                    // epoch snapshot before the unlink (see doc comment)
                    let word = self.read_epoch(rank);
                    // CAS 2: unlink — we own `cur`; retry until the
                    // predecessor cell is swung past it
                    self.unlink(rank, bucket, cur, next);
                    self.dealloc(rank, cur);
                    // bump the owner's delete epoch so cached positive
                    // translations of this rank revalidate
                    self.ctx
                        .fadd_u64(WIN_INDEX, rank, EPOCH_WORD, EPOCH_DEL_DELTA);
                    return Some(word);
                }
                cur = next;
            }
            return None;
        }
    }

    /// Swing whichever cell currently points at `victim` to `successor`.
    /// The caller owns `victim` (marked by CAS 1), so this terminates as
    /// soon as a consistent predecessor is found — walking restarts while
    /// neighbouring deletions are in flight.
    fn unlink(&self, rank: usize, bucket: usize, victim: u64, successor: u64) {
        loop {
            let mut cell = bucket;
            let mut ptr = self.ctx.aget_u64(WIN_INDEX, rank, cell);
            loop {
                if ptr == victim {
                    let prev = self.ctx.cas_u64(WIN_INDEX, rank, cell, victim, successor);
                    if prev == victim {
                        return;
                    }
                    break; // cell changed under us: rewalk from the bucket
                }
                if ptr == 0 {
                    // victim temporarily unreachable (a neighbouring marked
                    // entry hides it); wait for that deleter to finish
                    break;
                }
                let nw = self.next_word(ptr);
                let next = self.ctx.get_u64(WIN_INDEX, rank, nw);
                if next == ptr {
                    // marked predecessor: its deleter will restore
                    // reachability; rewalk
                    break;
                }
                cell = nw;
                ptr = next;
            }
            std::thread::yield_now();
        }
    }

    /// Number of live entries in this rank's buckets (diagnostic; walks all
    /// local chains).
    pub fn local_len(&self) -> usize {
        /// Bucket-walk restarts before giving up on a chain that always
        /// has a delete in flight (pathological churn): the walk then
        /// keeps the entries counted so far instead of livelocking.
        const MAX_RESTARTS: usize = 64;
        let me = self.ctx.rank();
        let mut n = 0;
        for b in 0..self.nbuckets() {
            let mut restarts = 0;
            'bucket: loop {
                let mut count = 0;
                let mut ptr = self.ctx.aget_u64(WIN_INDEX, me, self.bucket_word(b));
                while ptr != 0 {
                    let next = self.ctx.get_u64(WIN_INDEX, me, self.next_word(ptr));
                    if next == ptr {
                        // a marked (self-pointing) entry hides its
                        // successors — the chain beyond it is only
                        // recoverable by the deleting process. Restart
                        // this bucket like `lookup` does instead of
                        // undercounting every live entry behind it.
                        restarts += 1;
                        if restarts < MAX_RESTARTS {
                            std::thread::yield_now();
                            continue 'bucket;
                        }
                        break;
                    }
                    count += 1;
                    ptr = next;
                }
                n += count;
                break;
            }
        }
        n
    }
}

/// Offline decode of one rank's DHT partition from its raw **index
/// window bytes** (a snapshot's fourth window): walks every bucket
/// chain in the byte image and returns the live `(key, value)` pairs.
///
/// Recovery primitive for **elastic resharding**: restoring a `P`-rank
/// snapshot onto `Q ≠ P` ranks cannot `put` the window bytes back
/// (every placement changes), so the logical contents are lifted out of
/// the image instead. The snapshot was taken quiesced, so no marked
/// (self-pointing) entries can appear; one is treated as end-of-chain
/// defensively, as is any structurally impossible link.
pub fn decode_partition(cfg: &GdaConfig, win: &[u8]) -> Vec<(u64, u64)> {
    let nwords = win.len() / 8;
    let word = |i: usize| -> u64 {
        debug_assert!(i < nwords);
        u64::from_le_bytes(win[i * 8..i * 8 + 8].try_into().unwrap())
    };
    let nb = cfg.dht_buckets_per_rank;
    let heap = cfg.dht_heap_per_rank as u64;
    let heap_base = 2 + nb;
    let mut out = Vec::new();
    for b in 0..nb {
        let mut ptr = word(2 + b);
        let mut steps = 0usize;
        while ptr != 0 && ptr <= heap {
            let ew = heap_base + 3 * (ptr as usize - 1);
            if ew + 2 >= nwords {
                break;
            }
            let k = word(ew);
            let v = word(ew + 1);
            let next = word(ew + 2);
            if next == ptr {
                break; // marked entry: impossible in a quiesced snapshot
            }
            if k != FREE_KEY {
                out.push((k, v));
            }
            ptr = next;
            steps += 1;
            if steps > cfg.dht_heap_per_rank {
                break; // cycle guard on corrupt images
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rma::CostModel;

    fn fabric(n: usize) -> (rma::Fabric, GdaConfig) {
        let cfg = GdaConfig::tiny();
        (cfg.build_fabric(n, CostModel::zero()), cfg)
    }

    #[test]
    fn hash_mixes() {
        // sequential keys spread over both rank and bucket space
        let mut ranks = std::collections::HashSet::new();
        for k in 0..64u64 {
            ranks.insert(hash64(k) % 8);
        }
        assert!(ranks.len() >= 6, "poor rank dispersion: {ranks:?}");
        assert_ne!(hash64(1), hash64(2));
    }

    #[test]
    fn insert_lookup_single_rank() {
        let (f, cfg) = fabric(1);
        f.run(|ctx| {
            let dht = Dht::new(ctx, cfg);
            dht.init_collective();
            for k in 0..100u64 {
                dht.insert(k, k * 2 + 1).unwrap();
            }
            for k in 0..100u64 {
                assert_eq!(dht.lookup(k), Some(k * 2 + 1));
            }
            assert_eq!(dht.lookup(100), None);
            assert_eq!(dht.local_len(), 100);
        });
    }

    #[test]
    fn delete_restores_capacity() {
        let (f, cfg) = fabric(1);
        f.run(|ctx| {
            let dht = Dht::new(ctx, cfg);
            dht.init_collective();
            for round in 0..4 {
                for k in 0..cfg.dht_heap_per_rank as u64 {
                    dht.insert(k, round).unwrap();
                }
                assert!(dht.insert(999_999, 0).is_err(), "heap should be full");
                for k in 0..cfg.dht_heap_per_rank as u64 {
                    assert!(dht.delete(k), "round {round} key {k}");
                }
                assert_eq!(dht.local_len(), 0);
            }
        });
    }

    #[test]
    fn delete_missing_is_false() {
        let (f, cfg) = fabric(1);
        f.run(|ctx| {
            let dht = Dht::new(ctx, cfg);
            dht.init_collective();
            assert!(!dht.delete(7));
            dht.insert(7, 1).unwrap();
            assert!(dht.delete(7));
            assert!(!dht.delete(7));
            assert_eq!(dht.lookup(7), None);
        });
    }

    #[test]
    fn distributed_insert_lookup() {
        let (f, cfg) = fabric(4);
        f.run(|ctx| {
            let dht = Dht::new(ctx, cfg);
            dht.init_collective();
            // each rank inserts its own keyspace slice
            let base = ctx.rank() as u64 * 1000;
            for k in 0..50 {
                dht.insert(base + k, base + k + 7).unwrap();
            }
            ctx.barrier();
            // every rank looks up every key
            for r in 0..ctx.nranks() as u64 {
                for k in 0..50 {
                    assert_eq!(dht.lookup(r * 1000 + k), Some(r * 1000 + k + 7));
                }
            }
        });
    }

    #[test]
    fn concurrent_inserts_all_survive() {
        let (f, cfg) = fabric(8);
        f.run(|ctx| {
            let dht = Dht::new(ctx, cfg);
            dht.init_collective();
            let me = ctx.rank() as u64;
            for k in 0..40 {
                dht.insert(me * 100 + k, me).unwrap();
            }
            ctx.barrier();
            let mine_visible = (0..40).all(|k| dht.lookup(me * 100 + k) == Some(me));
            assert!(mine_visible);
            let total: u64 = ctx.allreduce_sum_u64(40);
            let local_total: u64 = ctx.allreduce_sum_u64(dht.local_len() as u64);
            assert_eq!(total, local_total);
        });
    }

    #[test]
    fn concurrent_delete_each_key_once() {
        // all ranks try to delete the same keys; each key must be deleted
        // exactly once in total
        let (f, cfg) = fabric(8);
        let deleted = f.run(|ctx| {
            let dht = Dht::new(ctx, cfg);
            dht.init_collective();
            if ctx.rank() == 0 {
                for k in 0..64u64 {
                    dht.insert(k, k).unwrap();
                }
            }
            ctx.barrier();
            let mut mine = 0u64;
            for k in 0..64u64 {
                if dht.delete(k) {
                    mine += 1;
                }
            }
            ctx.barrier();
            assert_eq!(dht.lookup(13), None);
            mine
        });
        assert_eq!(deleted.iter().sum::<u64>(), 64);
    }

    #[test]
    fn concurrent_mixed_churn() {
        // ranks repeatedly insert and delete disjoint keys that share
        // buckets with other ranks' keys; exercises marked-entry traversal
        let (f, cfg) = fabric(6);
        f.run(|ctx| {
            let dht = Dht::new(ctx, cfg);
            dht.init_collective();
            let me = ctx.rank() as u64;
            for round in 0..30 {
                for k in 0..8u64 {
                    dht.insert(me * 31 + k, round).unwrap();
                }
                for k in 0..8u64 {
                    assert_eq!(dht.lookup(me * 31 + k), Some(round), "round {round}");
                }
                for k in 0..8u64 {
                    assert!(dht.delete(me * 31 + k));
                }
            }
            ctx.barrier();
            let remaining = ctx.allreduce_sum_u64(dht.local_len() as u64);
            assert_eq!(remaining, 0);
        });
    }

    /// Regression: `local_len` used to stop counting a chain at the first
    /// marked (self-pointing) entry, undercounting every live entry behind
    /// an in-flight delete. With a concurrent deleter churning keys that
    /// share rank-0 buckets with stable keys, the count of rank 0 must
    /// never drop below the number of stable entries.
    #[test]
    fn local_len_counts_entries_behind_inflight_deletes() {
        let (f, cfg) = fabric(2);
        f.run(|ctx| {
            let dht = Dht::new(ctx, cfg);
            dht.init_collective();
            // stable keys placed on rank 0, inserted first so churned
            // entries prepend in front of them within shared chains
            let stable: Vec<u64> = (0..10_000u64)
                .filter(|k| hash64(*k).is_multiple_of(2))
                .take(32)
                .collect();
            let churn: Vec<u64> = (10_000..20_000u64)
                .filter(|k| hash64(*k).is_multiple_of(2))
                .take(16)
                .collect();
            if ctx.rank() == 0 {
                for &k in &stable {
                    dht.insert(k, 1).unwrap();
                }
            }
            ctx.barrier();
            if ctx.rank() == 1 {
                // deleter: keep marked entries appearing in rank 0 chains
                for _ in 0..60 {
                    for &k in &churn {
                        dht.insert(k, 2).unwrap();
                    }
                    for &k in &churn {
                        assert!(dht.delete(k));
                    }
                }
            } else {
                for _ in 0..120 {
                    let n = dht.local_len();
                    assert!(
                        n >= stable.len(),
                        "local_len {n} undercounts {} stable entries",
                        stable.len()
                    );
                    assert!(n <= stable.len() + churn.len());
                }
            }
            ctx.barrier();
            if ctx.rank() == 0 {
                assert_eq!(dht.local_len(), stable.len());
            }
        });
    }

    #[test]
    fn epoch_word_tracks_inserts_and_deletes() {
        let (f, cfg) = fabric(1);
        f.run(|ctx| {
            let dht = Dht::new(ctx, cfg);
            dht.init_collective();
            assert_eq!(dht.read_epoch(0), 0);
            let w0 = dht.insert_traced(5, 50).unwrap();
            assert_eq!(epoch_ins(w0), 0, "pre-bump word returned");
            let w1 = dht.insert_traced(6, 60).unwrap();
            assert_eq!(epoch_ins(w1), 1);
            assert_eq!(epoch_del(w1), 0);
            let w2 = dht.delete_traced(5).expect("key present");
            assert_eq!(epoch_del(w2), 0);
            assert_eq!(epoch_ins(w2), 2);
            let now = dht.read_epoch(0);
            assert_eq!(epoch_del(now), 1);
            assert_eq!(epoch_ins(now), 2);
            // deleting an absent key must not bump anything
            assert_eq!(dht.delete_traced(5), None);
            assert_eq!(dht.read_epoch(0), now);
        });
    }

    /// The offline partition decoder must see exactly what live lookups
    /// see — it is the seed of a resharded restore.
    #[test]
    fn offline_decode_matches_live_contents() {
        let (f, cfg) = fabric(1);
        f.run(|ctx| {
            let dht = Dht::new(ctx, cfg);
            dht.init_collective();
            for k in 0..60u64 {
                dht.insert(k, k * 3 + 1).unwrap();
            }
            for k in (0..60u64).step_by(3) {
                assert!(dht.delete(k));
            }
            let mut win = vec![0u8; ctx.win_len_bytes(WIN_INDEX)];
            ctx.get_bytes(WIN_INDEX, 0, 0, &mut win);
            let mut decoded = decode_partition(&cfg, &win);
            decoded.sort_unstable();
            let mut want: Vec<(u64, u64)> = (0..60u64)
                .filter(|k| !k.is_multiple_of(3))
                .map(|k| (k, k * 3 + 1))
                .collect();
            want.sort_unstable();
            assert_eq!(decoded, want);
        });
    }

    #[test]
    fn lookup_during_concurrent_deletes() {
        let (f, cfg) = fabric(4);
        f.run(|ctx| {
            let dht = Dht::new(ctx, cfg);
            dht.init_collective();
            // persistent keys that must stay visible throughout
            if ctx.rank() == 0 {
                for k in 1000..1040u64 {
                    dht.insert(k, 1).unwrap();
                }
            }
            ctx.barrier();
            if ctx.rank() % 2 == 0 {
                // churners
                let me = ctx.rank() as u64;
                for _ in 0..50 {
                    for k in 0..8u64 {
                        dht.insert(me * 31 + k, 2).unwrap();
                    }
                    for k in 0..8u64 {
                        dht.delete(me * 31 + k);
                    }
                }
            } else {
                // readers
                for _ in 0..100 {
                    for k in 1000..1040u64 {
                        assert_eq!(dht.lookup(k), Some(1), "stable key vanished");
                    }
                }
            }
            ctx.barrier();
        });
    }
}

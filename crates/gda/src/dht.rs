//! Lock-free, fully-offloaded distributed hash table (§5.7, Listing 4).
//!
//! GDA resolves application vertex ids to internal `DPtr`s through a DHT
//! whose *every* operation — insert, lookup and delete — is implemented
//! with one-sided puts/gets/CAS only ("to the best of our knowledge, the
//! first DHT with all its operations being fully offloaded, including
//! deletes").
//!
//! Layout (per rank, in the index window):
//!
//! ```text
//! word 0                  : tagged free-list head of the entry heap
//! words 1..=B             : buckets — each holds the heap index of the
//!                           first chain entry (0 = empty)
//! words B+1..             : heap of 3-word entries {key, value, next}
//! ```
//!
//! A key `k` hashes to bucket rank `h(k) mod P` and bucket index
//! `(h(k)/P) mod B`; chains stay on the bucket's rank (distributed
//! chaining: any rank walks them one-sidedly).
//!
//! **Deletion protocol** (Listing 4): the first CAS redirects the victim's
//! `next` pointer *to the victim itself*, marking it logically deleted;
//! the second CAS swings the predecessor cell past the victim. Readers that
//! encounter a self-pointing entry restart, because the chain beyond it is
//! only recoverable by the deleting process (which remembered the original
//! successor and retries the unlink until it succeeds).

use gdi::{GdiError, GdiResult};
use rma::RankCtx;

use crate::config::{GdaConfig, WIN_INDEX};
use crate::dptr::TaggedIdx;

/// Word index of the heap free-list head.
const HEAP_HEAD_WORD: usize = 0;

/// Sentinel key stored in freed heap entries so that in-flight traversals
/// can never match them. Application keys must be `< u64::MAX`.
const FREE_KEY: u64 = u64::MAX;

/// 64-bit finalizer (splitmix64): good avalanche for sequential app ids.
#[inline]
pub fn hash64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// The distributed hash table, bound to a rank context.
pub struct Dht<'c, 'f> {
    ctx: &'c RankCtx<'f>,
    cfg: GdaConfig,
}

impl<'c, 'f> Dht<'c, 'f> {
    pub fn new(ctx: &'c RankCtx<'f>, cfg: GdaConfig) -> Self {
        Self { ctx, cfg }
    }

    #[inline]
    fn nbuckets(&self) -> usize {
        self.cfg.dht_buckets_per_rank
    }

    #[inline]
    fn heap_base(&self) -> usize {
        1 + self.nbuckets()
    }

    /// Word of bucket `b`.
    #[inline]
    fn bucket_word(&self, b: usize) -> usize {
        1 + b
    }

    /// First word of heap entry `idx` (1-based).
    #[inline]
    fn entry_word(&self, idx: u64) -> usize {
        self.heap_base() + 3 * (idx as usize - 1)
    }

    /// Word of the `next` field of heap entry `idx`.
    #[inline]
    fn next_word(&self, idx: u64) -> usize {
        self.entry_word(idx) + 2
    }

    /// Bucket placement of a key.
    #[inline]
    fn place(&self, key: u64) -> (usize, usize) {
        let h = hash64(key);
        let rank = (h % self.ctx.nranks() as u64) as usize;
        let bucket = ((h / self.ctx.nranks() as u64) % self.nbuckets() as u64) as usize;
        (rank, self.bucket_word(bucket))
    }

    /// Collective: initialize this rank's heap free list; ends in a barrier.
    ///
    /// The free list is threaded through the **value** word of free entries
    /// (not the `next` word): freed entries keep their self-pointing `next`
    /// from the deletion protocol, so a traverser that still holds a pointer
    /// to a reclaimed entry sees `next == self`, restarts its walk from the
    /// bucket, and can never follow a free-list link into unrelated memory.
    /// Their key word holds [`FREE_KEY`], so they can never match a lookup.
    pub fn init_collective(&self) {
        let me = self.ctx.rank();
        // empty every bucket (re-initialization must not leave stale chain
        // heads pointing into the rebuilt free list)
        for b in 0..self.nbuckets() {
            self.ctx.put_u64(WIN_INDEX, me, self.bucket_word(b), 0);
        }
        let n = self.cfg.dht_heap_per_rank as u64;
        for i in 1..=n {
            let link = if i < n { i + 1 } else { 0 };
            let ew = self.entry_word(i);
            self.ctx.put_u64(WIN_INDEX, me, ew, FREE_KEY);
            self.ctx.put_u64(WIN_INDEX, me, ew + 1, link);
            self.ctx.put_u64(WIN_INDEX, me, ew + 2, i); // self-pointing
        }
        self.ctx
            .put_u64(WIN_INDEX, me, HEAP_HEAD_WORD, TaggedIdx::new(0, 1).raw());
        self.ctx.barrier();
    }

    /// Allocate a heap entry on `target` (tagged-CAS free list, like BGDL
    /// blocks; the link lives in the entry's value word).
    fn alloc(&self, target: usize) -> GdiResult<u64> {
        let mut head = TaggedIdx::from_raw(self.ctx.aget_u64(WIN_INDEX, target, HEAP_HEAD_WORD));
        loop {
            let idx = head.idx();
            if idx == 0 {
                return Err(GdiError::OutOfMemory);
            }
            let link = self
                .ctx
                .get_u64(WIN_INDEX, target, self.entry_word(idx) + 1);
            let prev = self.ctx.cas_u64(
                WIN_INDEX,
                target,
                HEAP_HEAD_WORD,
                head.raw(),
                head.bump(link).raw(),
            );
            if prev == head.raw() {
                return Ok(idx);
            }
            head = TaggedIdx::from_raw(prev);
        }
    }

    /// Return a heap entry to `target`'s free list. The entry must already
    /// be self-pointing (marked by the deletion protocol).
    fn dealloc(&self, target: usize, idx: u64) {
        let ew = self.entry_word(idx);
        self.ctx.put_u64(WIN_INDEX, target, ew, FREE_KEY);
        let mut head = TaggedIdx::from_raw(self.ctx.aget_u64(WIN_INDEX, target, HEAP_HEAD_WORD));
        loop {
            self.ctx.put_u64(WIN_INDEX, target, ew + 1, head.idx());
            let prev = self.ctx.cas_u64(
                WIN_INDEX,
                target,
                HEAP_HEAD_WORD,
                head.raw(),
                head.bump(idx).raw(),
            );
            if prev == head.raw() {
                return;
            }
            head = TaggedIdx::from_raw(prev);
        }
    }

    /// Insert a key/value pair (Listing 4 `insert`). Keys are expected to
    /// be unique; duplicate keys yield multiple entries, with lookups
    /// returning the most recently inserted.
    pub fn insert(&self, key: u64, value: u64) -> GdiResult<()> {
        assert_ne!(key, FREE_KEY, "u64::MAX is a reserved key");
        let (rank, bucket) = self.place(key);
        let entry = self.alloc(rank)?;
        let ew = self.entry_word(entry);
        self.ctx.put_u64(WIN_INDEX, rank, ew, key);
        self.ctx.put_u64(WIN_INDEX, rank, ew + 1, value);
        loop {
            let head = self.ctx.aget_u64(WIN_INDEX, rank, bucket);
            self.ctx.put_u64(WIN_INDEX, rank, ew + 2, head);
            self.ctx.flush(rank);
            let prev = self.ctx.cas_u64(WIN_INDEX, rank, bucket, head, entry);
            if prev == head {
                return Ok(());
            }
        }
    }

    /// Look up a key (Listing 4 `lookup`).
    pub fn lookup(&self, key: u64) -> Option<u64> {
        let (rank, bucket) = self.place(key);
        'restart: loop {
            let mut ptr = self.ctx.aget_u64(WIN_INDEX, rank, bucket);
            if ptr == 0 {
                return None;
            }
            while ptr != 0 {
                let ew = self.entry_word(ptr);
                let k = self.ctx.get_u64(WIN_INDEX, rank, ew);
                let v = self.ctx.get_u64(WIN_INDEX, rank, ew + 1);
                let next = self.ctx.get_u64(WIN_INDEX, rank, ew + 2);
                if next == ptr {
                    // entry is being deleted: chain beyond it is opaque
                    std::thread::yield_now();
                    continue 'restart;
                }
                if k == key {
                    return Some(v);
                }
                ptr = next;
            }
            return None;
        }
    }

    /// Delete a key (Listing 4 `delete`). Returns whether it was present.
    pub fn delete(&self, key: u64) -> bool {
        let (rank, bucket) = self.place(key);
        'restart: loop {
            let mut cur = self.ctx.aget_u64(WIN_INDEX, rank, bucket);
            while cur != 0 {
                let ew = self.entry_word(cur);
                let k = self.ctx.get_u64(WIN_INDEX, rank, ew);
                let next = self.ctx.get_u64(WIN_INDEX, rank, ew + 2);
                if next == cur {
                    // someone is deleting `cur`; restart once it is unlinked
                    std::thread::yield_now();
                    continue 'restart;
                }
                if k == key {
                    // CAS 1: mark the entry by pointing its next to itself
                    let prev = self
                        .ctx
                        .cas_u64(WIN_INDEX, rank, self.next_word(cur), next, cur);
                    if prev != next {
                        // lost a race (entry or its successor changed)
                        continue 'restart;
                    }
                    // CAS 2: unlink — we own `cur`; retry until the
                    // predecessor cell is swung past it
                    self.unlink(rank, bucket, cur, next);
                    self.dealloc(rank, cur);
                    return true;
                }
                cur = next;
            }
            return false;
        }
    }

    /// Swing whichever cell currently points at `victim` to `successor`.
    /// The caller owns `victim` (marked by CAS 1), so this terminates as
    /// soon as a consistent predecessor is found — walking restarts while
    /// neighbouring deletions are in flight.
    fn unlink(&self, rank: usize, bucket: usize, victim: u64, successor: u64) {
        loop {
            let mut cell = bucket;
            let mut ptr = self.ctx.aget_u64(WIN_INDEX, rank, cell);
            loop {
                if ptr == victim {
                    let prev = self.ctx.cas_u64(WIN_INDEX, rank, cell, victim, successor);
                    if prev == victim {
                        return;
                    }
                    break; // cell changed under us: rewalk from the bucket
                }
                if ptr == 0 {
                    // victim temporarily unreachable (a neighbouring marked
                    // entry hides it); wait for that deleter to finish
                    break;
                }
                let nw = self.next_word(ptr);
                let next = self.ctx.get_u64(WIN_INDEX, rank, nw);
                if next == ptr {
                    // marked predecessor: its deleter will restore
                    // reachability; rewalk
                    break;
                }
                cell = nw;
                ptr = next;
            }
            std::thread::yield_now();
        }
    }

    /// Number of live entries in this rank's buckets (diagnostic; walks all
    /// local chains).
    pub fn local_len(&self) -> usize {
        let me = self.ctx.rank();
        let mut n = 0;
        for b in 0..self.nbuckets() {
            let mut ptr = self.ctx.aget_u64(WIN_INDEX, me, self.bucket_word(b));
            while ptr != 0 {
                let next = self.ctx.get_u64(WIN_INDEX, me, self.next_word(ptr));
                if next == ptr {
                    break;
                }
                n += 1;
                ptr = next;
            }
        }
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rma::CostModel;

    fn fabric(n: usize) -> (rma::Fabric, GdaConfig) {
        let cfg = GdaConfig::tiny();
        (cfg.build_fabric(n, CostModel::zero()), cfg)
    }

    #[test]
    fn hash_mixes() {
        // sequential keys spread over both rank and bucket space
        let mut ranks = std::collections::HashSet::new();
        for k in 0..64u64 {
            ranks.insert(hash64(k) % 8);
        }
        assert!(ranks.len() >= 6, "poor rank dispersion: {ranks:?}");
        assert_ne!(hash64(1), hash64(2));
    }

    #[test]
    fn insert_lookup_single_rank() {
        let (f, cfg) = fabric(1);
        f.run(|ctx| {
            let dht = Dht::new(ctx, cfg);
            dht.init_collective();
            for k in 0..100u64 {
                dht.insert(k, k * 2 + 1).unwrap();
            }
            for k in 0..100u64 {
                assert_eq!(dht.lookup(k), Some(k * 2 + 1));
            }
            assert_eq!(dht.lookup(100), None);
            assert_eq!(dht.local_len(), 100);
        });
    }

    #[test]
    fn delete_restores_capacity() {
        let (f, cfg) = fabric(1);
        f.run(|ctx| {
            let dht = Dht::new(ctx, cfg);
            dht.init_collective();
            for round in 0..4 {
                for k in 0..cfg.dht_heap_per_rank as u64 {
                    dht.insert(k, round).unwrap();
                }
                assert!(dht.insert(999_999, 0).is_err(), "heap should be full");
                for k in 0..cfg.dht_heap_per_rank as u64 {
                    assert!(dht.delete(k), "round {round} key {k}");
                }
                assert_eq!(dht.local_len(), 0);
            }
        });
    }

    #[test]
    fn delete_missing_is_false() {
        let (f, cfg) = fabric(1);
        f.run(|ctx| {
            let dht = Dht::new(ctx, cfg);
            dht.init_collective();
            assert!(!dht.delete(7));
            dht.insert(7, 1).unwrap();
            assert!(dht.delete(7));
            assert!(!dht.delete(7));
            assert_eq!(dht.lookup(7), None);
        });
    }

    #[test]
    fn distributed_insert_lookup() {
        let (f, cfg) = fabric(4);
        f.run(|ctx| {
            let dht = Dht::new(ctx, cfg);
            dht.init_collective();
            // each rank inserts its own keyspace slice
            let base = ctx.rank() as u64 * 1000;
            for k in 0..50 {
                dht.insert(base + k, base + k + 7).unwrap();
            }
            ctx.barrier();
            // every rank looks up every key
            for r in 0..ctx.nranks() as u64 {
                for k in 0..50 {
                    assert_eq!(dht.lookup(r * 1000 + k), Some(r * 1000 + k + 7));
                }
            }
        });
    }

    #[test]
    fn concurrent_inserts_all_survive() {
        let (f, cfg) = fabric(8);
        f.run(|ctx| {
            let dht = Dht::new(ctx, cfg);
            dht.init_collective();
            let me = ctx.rank() as u64;
            for k in 0..40 {
                dht.insert(me * 100 + k, me).unwrap();
            }
            ctx.barrier();
            let mine_visible = (0..40).all(|k| dht.lookup(me * 100 + k) == Some(me));
            assert!(mine_visible);
            let total: u64 = ctx.allreduce_sum_u64(40);
            let local_total: u64 = ctx.allreduce_sum_u64(dht.local_len() as u64);
            assert_eq!(total, local_total);
        });
    }

    #[test]
    fn concurrent_delete_each_key_once() {
        // all ranks try to delete the same keys; each key must be deleted
        // exactly once in total
        let (f, cfg) = fabric(8);
        let deleted = f.run(|ctx| {
            let dht = Dht::new(ctx, cfg);
            dht.init_collective();
            if ctx.rank() == 0 {
                for k in 0..64u64 {
                    dht.insert(k, k).unwrap();
                }
            }
            ctx.barrier();
            let mut mine = 0u64;
            for k in 0..64u64 {
                if dht.delete(k) {
                    mine += 1;
                }
            }
            ctx.barrier();
            assert_eq!(dht.lookup(13), None);
            mine
        });
        assert_eq!(deleted.iter().sum::<u64>(), 64);
    }

    #[test]
    fn concurrent_mixed_churn() {
        // ranks repeatedly insert and delete disjoint keys that share
        // buckets with other ranks' keys; exercises marked-entry traversal
        let (f, cfg) = fabric(6);
        f.run(|ctx| {
            let dht = Dht::new(ctx, cfg);
            dht.init_collective();
            let me = ctx.rank() as u64;
            for round in 0..30 {
                for k in 0..8u64 {
                    dht.insert(me * 31 + k, round).unwrap();
                }
                for k in 0..8u64 {
                    assert_eq!(dht.lookup(me * 31 + k), Some(round), "round {round}");
                }
                for k in 0..8u64 {
                    assert!(dht.delete(me * 31 + k));
                }
            }
            ctx.barrier();
            let remaining = ctx.allreduce_sum_u64(dht.local_len() as u64);
            assert_eq!(remaining, 0);
        });
    }

    #[test]
    fn lookup_during_concurrent_deletes() {
        let (f, cfg) = fabric(4);
        f.run(|ctx| {
            let dht = Dht::new(ctx, cfg);
            dht.init_collective();
            // persistent keys that must stay visible throughout
            if ctx.rank() == 0 {
                for k in 1000..1040u64 {
                    dht.insert(k, 1).unwrap();
                }
            }
            ctx.barrier();
            if ctx.rank() % 2 == 0 {
                // churners
                let me = ctx.rank() as u64;
                for _ in 0..50 {
                    for k in 0..8u64 {
                        dht.insert(me * 31 + k, 2).unwrap();
                    }
                    for k in 0..8u64 {
                        dht.delete(me * 31 + k);
                    }
                }
            } else {
                // readers
                for _ in 0..100 {
                    for k in 1000..1040u64 {
                        assert_eq!(dht.lookup(k), Some(1), "stable key vanished");
                    }
                }
            }
            ctx.barrier();
        });
    }
}

//! Distributed pointers (§5.3) and edge UIDs (§5.4.2).
//!
//! The internal GDI id of a vertex in GDA is a 64-bit *distributed
//! hierarchical pointer* (`DPtr`): the top 16 bits name the owning rank
//! (compute server/process), the low 48 bits are a byte offset into that
//! rank's data window, pointing at the **primary block** of the object's
//! holder. 64 bits are used deliberately so that ids can travel through
//! hardware-accelerated 64-bit remote atomics.
//!
//! Free-list heads additionally carry a 16-bit **ABA tag** in the rank field
//! position ([`TaggedIdx`]), the classic tagged-pointer mitigation the paper
//! applies to block operations (§5.5).

use gdi::AppVertexId;

/// Number of bits for the offset part of a `DPtr`.
pub const OFFSET_BITS: u32 = 48;
/// Mask of the offset part.
pub const OFFSET_MASK: u64 = (1u64 << OFFSET_BITS) - 1;

/// A 64-bit distributed pointer: `rank:16 | byte_offset:48`.
///
/// The all-zero value is the null pointer: GDA never allocates block 0, so
/// offset 0 on rank 0 is unreachable for valid objects.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DPtr(pub u64);

impl DPtr {
    /// The null distributed pointer.
    pub const NULL: DPtr = DPtr(0);

    /// Pack a rank and a byte offset.
    #[inline]
    pub fn new(rank: usize, offset: u64) -> DPtr {
        debug_assert!(rank <= u16::MAX as usize, "rank must fit in 16 bits");
        debug_assert!(offset <= OFFSET_MASK, "offset must fit in 48 bits");
        DPtr(((rank as u64) << OFFSET_BITS) | offset)
    }

    /// Owning rank.
    #[inline]
    pub fn rank(self) -> usize {
        (self.0 >> OFFSET_BITS) as usize
    }

    /// Byte offset into the owner's data window.
    #[inline]
    pub fn offset(self) -> u64 {
        self.0 & OFFSET_MASK
    }

    /// Is this the null pointer?
    #[inline]
    pub fn is_null(self) -> bool {
        self.0 == 0
    }

    /// Raw 64-bit representation (what travels through windows/atomics).
    #[inline]
    pub fn raw(self) -> u64 {
        self.0
    }

    /// Rebuild from the raw representation.
    #[inline]
    pub fn from_raw(v: u64) -> DPtr {
        DPtr(v)
    }
}

impl std::fmt::Display for DPtr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_null() {
            write!(f, "DPtr(NULL)")
        } else {
            write!(f, "DPtr(r{}+{:#x})", self.rank(), self.offset())
        }
    }
}

/// A tagged index: `tag:16 | index:48`, used for ABA-safe free-list heads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TaggedIdx(pub u64);

impl TaggedIdx {
    /// Pack a tag and an index.
    #[inline]
    pub fn new(tag: u16, idx: u64) -> TaggedIdx {
        debug_assert!(idx <= OFFSET_MASK);
        TaggedIdx(((tag as u64) << OFFSET_BITS) | idx)
    }

    /// The 16-bit ABA tag.
    #[inline]
    pub fn tag(self) -> u16 {
        (self.0 >> OFFSET_BITS) as u16
    }

    /// The 48-bit index (block index, heap-entry index, …; 0 = empty list).
    #[inline]
    pub fn idx(self) -> u64 {
        self.0 & OFFSET_MASK
    }

    /// Successor head pointing at `new_idx` with the tag bumped (wrapping).
    #[inline]
    pub fn bump(self, new_idx: u64) -> TaggedIdx {
        TaggedIdx::new(self.tag().wrapping_add(1), new_idx)
    }

    /// Raw 64-bit representation.
    #[inline]
    pub fn raw(self) -> u64 {
        self.0
    }

    /// Rebuild from the raw representation.
    #[inline]
    pub fn from_raw(v: u64) -> TaggedIdx {
        TaggedIdx(v)
    }
}

/// An edge UID (§5.4.2): identifies a lightweight edge by the `DPtr` of the
/// vertex holding it plus the index of the edge record within that holder.
///
/// The same physical edge has two UIDs, one per endpoint — exactly the
/// paper's semantics ("the same edge can be identified by two different edge
/// UIDs, depending on which vertex is used as a base").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EdgeUid {
    /// The base vertex whose holder stores the edge record.
    pub vertex: DPtr,
    /// Index of the edge record in the base vertex's edge list.
    pub slot: u32,
}

impl EdgeUid {
    /// An edge UID based at `vertex`, record slot `slot`.
    pub fn new(vertex: DPtr, slot: u32) -> EdgeUid {
        EdgeUid { vertex, slot }
    }
}

/// Choose the owner rank of an application vertex id: round-robin
/// distribution across ranks (§5.4: "use round-robin distribution").
/// Delegates to [`crate::rankmap::vertex_owner`] — the single
/// authoritative copy of the formula, so elastic resharding can reason
/// about ownership under both the snapshot and the live topology.
#[inline]
pub fn owner_rank(app: AppVertexId, nranks: usize) -> usize {
    crate::rankmap::vertex_owner(app, nranks)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dptr_pack_unpack() {
        let p = DPtr::new(513, 0x0012_3456_789A);
        assert_eq!(p.rank(), 513);
        assert_eq!(p.offset(), 0x0012_3456_789A);
        assert!(!p.is_null());
        assert_eq!(DPtr::from_raw(p.raw()), p);
    }

    #[test]
    fn dptr_extremes() {
        let p = DPtr::new(u16::MAX as usize, OFFSET_MASK);
        assert_eq!(p.rank(), u16::MAX as usize);
        assert_eq!(p.offset(), OFFSET_MASK);
        assert!(DPtr::NULL.is_null());
        assert_eq!(DPtr::new(0, 0), DPtr::NULL);
    }

    #[test]
    fn dptr_display() {
        assert_eq!(DPtr::NULL.to_string(), "DPtr(NULL)");
        assert!(DPtr::new(3, 256).to_string().contains("r3"));
    }

    #[test]
    fn tagged_idx_bump_increments_tag() {
        let t = TaggedIdx::new(7, 100);
        assert_eq!(t.tag(), 7);
        assert_eq!(t.idx(), 100);
        let b = t.bump(200);
        assert_eq!(b.tag(), 8);
        assert_eq!(b.idx(), 200);
    }

    #[test]
    fn tagged_idx_tag_wraps() {
        let t = TaggedIdx::new(u16::MAX, 1);
        assert_eq!(t.bump(2).tag(), 0);
    }

    #[test]
    fn tag_distinguishes_same_idx() {
        // the ABA scenario: same index, different generation
        let a = TaggedIdx::new(0, 42);
        let b = a.bump(13).bump(42);
        assert_eq!(b.idx(), 42);
        assert_ne!(a.raw(), b.raw());
    }

    #[test]
    fn round_robin_ownership() {
        assert_eq!(owner_rank(AppVertexId(0), 4), 0);
        assert_eq!(owner_rank(AppVertexId(1), 4), 1);
        assert_eq!(owner_rank(AppVertexId(5), 4), 1);
        assert_eq!(owner_rank(AppVertexId(7), 1), 0);
    }

    #[test]
    fn edge_uid_identity() {
        let v = DPtr::new(1, 512);
        let e1 = EdgeUid::new(v, 0);
        let e2 = EdgeUid::new(v, 1);
        assert_ne!(e1, e2);
        assert_eq!(e1, EdgeUid::new(v, 0));
    }
}

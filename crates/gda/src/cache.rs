//! Per-rank, epoch-validated translation cache (app vertex id → `DPtr`).
//!
//! Every OLTP op pays `Dht::lookup` — one remote atomic plus a remote
//! chain walk — to resolve an application vertex id (the paper's Fig-4
//! hot path). This cache keeps recent translations (positive *and*
//! negative) local and validates them against the owner rank's **epoch
//! word** in the index window (`delete_epoch:32 | insert_epoch:32`, see
//! [`crate::dht`]):
//!
//! * a **positive** entry (id found) is trusted while the owner's
//!   *delete* epoch is unchanged — only a delete can retire it;
//! * a **negative** entry (id absent) is trusted while the owner's
//!   *insert* epoch is unchanged — only an insert can retire it.
//!
//! Revalidation is one remote `aget` of the epoch word instead of the
//! chain walk; when the relevant half moved, the entry is dropped and the
//! full lookup re-runs. The epoch word a new entry records is always one
//! that was **observed before the chain walk started**, so a mutation
//! racing with the walk bumps past it and forces revalidation on the
//! next probe — the cache can never latch a translation concurrent
//! mutations have retired.
//!
//! ## Pinned cycles (server drain batches)
//!
//! A service layer draining a whole batch per cycle calls
//! [`TranslationCache::begin_cycle`] once: the epoch words of all ranks
//! are snapshotted (`P` agets), and until [`TranslationCache::end_cycle`]
//! every probe validates against the snapshot with **zero** remote
//! operations — one epoch check per batch instead of per op. The rank's
//! own commits stay exact through write-through
//! ([`TranslationCache::note_insert`] / [`TranslationCache::note_delete`]);
//! remote mutations are observed at the next cycle boundary (the
//! staleness contract the README documents).

use std::cell::{Cell, RefCell};

use rustc_hash::FxHashMap;

use rma::RankCtx;

use crate::dht::{epoch_del, epoch_ins, Dht};

/// One cached translation. `raw == 0` (the null `DPtr`) encodes a
/// negative entry: valid application vertices never translate to null.
#[derive(Debug, Clone, Copy)]
struct CacheEntry {
    raw: u64,
    /// The owner-rank epoch half guarding this entry: the delete half for
    /// positive entries, the insert half for negative ones.
    epoch: u32,
}

/// Counters of one rank's translation cache (also mirrored into
/// [`rma::RankReport`] via the rank context).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Probes answered from the cache (no chain walk).
    pub hits: u64,
    /// Probes that paid the full DHT lookup.
    pub misses: u64,
    /// Entries dropped because their owner's epoch half moved.
    pub invalidations: u64,
    /// Entries dropped to stay within capacity.
    pub evictions: u64,
}

impl CacheStats {
    /// Hit fraction over all probes (0 when never probed).
    pub fn hit_fraction(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// The per-rank translation cache. Lives inside [`crate::db::GdaRank`];
/// not `Send`/`Sync` (single-writer: the owning rank thread).
pub struct TranslationCache {
    enabled: bool,
    cap: usize,
    entries: RefCell<FxHashMap<u64, CacheEntry>>,
    /// Last observed epoch word per owner rank.
    epochs: RefCell<Vec<u64>>,
    /// While set, probes trust the `epochs` snapshot without remote
    /// revalidation (one epoch check per server drain cycle).
    pinned: Cell<bool>,
    hits: Cell<u64>,
    misses: Cell<u64>,
    invalidations: Cell<u64>,
    evictions: Cell<u64>,
}

impl TranslationCache {
    /// Create a cache for a fabric of `nranks` ranks (a disabled
    /// cache passes every lookup straight through).
    pub fn new(enabled: bool, capacity: usize, nranks: usize) -> Self {
        Self {
            enabled,
            cap: capacity.max(1),
            entries: RefCell::new(FxHashMap::default()),
            epochs: RefCell::new(vec![0; nranks]),
            pinned: Cell::new(false),
            hits: Cell::new(0),
            misses: Cell::new(0),
            invalidations: Cell::new(0),
            evictions: Cell::new(0),
        }
    }

    /// Is the cache consulted at all?
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Counter snapshot.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.get(),
            misses: self.misses.get(),
            invalidations: self.invalidations.get(),
            evictions: self.evictions.get(),
        }
    }

    /// Drop every entry and epoch snapshot (storage re-initialization).
    pub fn clear(&self) {
        self.entries.borrow_mut().clear();
        for e in self.epochs.borrow_mut().iter_mut() {
            *e = 0;
        }
        self.pinned.set(false);
    }

    /// Translate `key` through the cache: a valid entry answers locally
    /// (plus at most one epoch `aget`); otherwise the full `Dht::lookup`
    /// runs and its outcome is cached against the epoch observed *before*
    /// the walk.
    pub fn lookup(&self, dht: &Dht, ctx: &RankCtx, key: u64) -> Option<u64> {
        self.lookup_inner(dht, ctx, key, false)
    }

    /// [`TranslationCache::lookup`] that revalidates the owner's epoch
    /// remotely even inside a pinned cycle — for translations of
    /// vertices the caller does *not* own (where routing-plus-write-
    /// through cannot vouch for the pinned snapshot, e.g. an edge's
    /// non-routed endpoint in the server batcher).
    pub fn lookup_fresh(&self, dht: &Dht, ctx: &RankCtx, key: u64) -> Option<u64> {
        self.lookup_inner(dht, ctx, key, true)
    }

    fn lookup_inner(&self, dht: &Dht, ctx: &RankCtx, key: u64, fresh: bool) -> Option<u64> {
        if !self.enabled {
            return dht.lookup(key);
        }
        let rank = dht.placement_rank(key);
        // current epoch word for the owner: a pinned cycle reuses its
        // snapshot (zero remote ops), otherwise one remote aget. A
        // `fresh` probe always pays the aget and tightens the pinned
        // snapshot — moving a snapshot slot forward can only retire
        // more entries, never revive one.
        let word = if self.pinned.get() && !fresh {
            self.epochs.borrow()[rank]
        } else {
            let w = dht.read_epoch(rank);
            if self.pinned.get() {
                self.epochs.borrow_mut()[rank] = w;
            }
            w
        };
        let cached = self.entries.borrow().get(&key).copied();
        if let Some(e) = cached {
            let current = if e.raw == 0 {
                epoch_ins(word)
            } else {
                epoch_del(word)
            };
            if current == e.epoch {
                self.hits.set(self.hits.get() + 1);
                ctx.record_cache_probe(true);
                return if e.raw == 0 { None } else { Some(e.raw) };
            }
            // the owner's epoch moved past this entry: retire it
            self.entries.borrow_mut().remove(&key);
            self.invalidations.set(self.invalidations.get() + 1);
            ctx.record_cache_invalidation();
        }
        self.misses.set(self.misses.get() + 1);
        ctx.record_cache_probe(false);
        // `word` was observed before this walk: any mutation racing with
        // the walk bumps past it, so the entry self-invalidates later
        let res = dht.lookup(key);
        self.store(key, res.unwrap_or(0), word);
        res
    }

    /// Write-through after this rank published `key` in the DHT (commit
    /// path). `word` is the pre-bump epoch word the insert observed.
    pub fn note_insert(&self, key: u64, raw: u64, word: u64) {
        if !self.enabled {
            return;
        }
        self.store(key, raw, word);
    }

    /// Write-through after this rank deleted `key` from the DHT (commit
    /// and failed-commit cleanup paths). `word` is the pre-bump epoch
    /// word the delete observed.
    pub fn note_delete(&self, key: u64, word: u64) {
        if !self.enabled {
            return;
        }
        self.store(key, 0, word);
    }

    fn store(&self, key: u64, raw: u64, word: u64) {
        let epoch = if raw == 0 {
            epoch_ins(word)
        } else {
            epoch_del(word)
        };
        let mut m = self.entries.borrow_mut();
        if !m.contains_key(&key) && m.len() >= self.cap {
            // evict an arbitrary resident (cheap; hot keys re-enter on
            // their next probe)
            if let Some(&victim) = m.keys().next() {
                m.remove(&victim);
                self.evictions.set(self.evictions.get() + 1);
            }
        }
        m.insert(key, CacheEntry { raw, epoch });
    }

    /// Snapshot every rank's epoch word (one `aget` each) and trust the
    /// snapshot until [`TranslationCache::end_cycle`]: the server's
    /// one-epoch-check-per-drain-cycle amortization.
    pub fn begin_cycle(&self, dht: &Dht, nranks: usize) {
        if !self.enabled {
            return;
        }
        let mut eps = self.epochs.borrow_mut();
        for (r, slot) in eps.iter_mut().enumerate().take(nranks) {
            *slot = dht.read_epoch(r);
        }
        drop(eps);
        self.pinned.set(true);
    }

    /// Leave the pinned cycle: probes revalidate remotely again.
    pub fn end_cycle(&self) {
        self.pinned.set(false);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::GdaConfig;
    use rma::CostModel;

    fn fabric(n: usize) -> (rma::Fabric, GdaConfig) {
        let cfg = GdaConfig::tiny();
        (cfg.build_fabric(n, CostModel::zero()), cfg)
    }

    #[test]
    fn hit_after_miss_and_negative_caching() {
        let (f, cfg) = fabric(1);
        f.run(|ctx| {
            let dht = Dht::new(ctx, cfg);
            dht.init_collective();
            let cache = TranslationCache::new(true, 64, 1);
            dht.insert(1, 100).unwrap();
            assert_eq!(cache.lookup(&dht, ctx, 1), Some(100)); // miss
            assert_eq!(cache.lookup(&dht, ctx, 1), Some(100)); // hit
            assert_eq!(cache.lookup(&dht, ctx, 2), None); // negative miss
            assert_eq!(cache.lookup(&dht, ctx, 2), None); // negative hit
            let s = cache.stats();
            assert_eq!((s.hits, s.misses), (2, 2));
        });
    }

    #[test]
    fn delete_invalidates_positive_entry() {
        let (f, cfg) = fabric(1);
        f.run(|ctx| {
            let dht = Dht::new(ctx, cfg);
            dht.init_collective();
            let cache = TranslationCache::new(true, 64, 1);
            dht.insert(7, 70).unwrap();
            assert_eq!(cache.lookup(&dht, ctx, 7), Some(70));
            assert!(dht.delete(7)); // third-party delete, no write-through
            assert_eq!(cache.lookup(&dht, ctx, 7), None, "stale hit served");
            assert_eq!(cache.stats().invalidations, 1);
        });
    }

    #[test]
    fn insert_invalidates_negative_entry() {
        let (f, cfg) = fabric(1);
        f.run(|ctx| {
            let dht = Dht::new(ctx, cfg);
            dht.init_collective();
            let cache = TranslationCache::new(true, 64, 1);
            assert_eq!(cache.lookup(&dht, ctx, 9), None);
            dht.insert(9, 90).unwrap(); // third-party insert
            assert_eq!(cache.lookup(&dht, ctx, 9), Some(90), "stale NotFound");
        });
    }

    /// The write-through contract behind `Dht::delete_traced`'s
    /// pre-unlink epoch read: a negative entry recorded by our own
    /// delete must self-invalidate against any re-create of the key —
    /// it may never mask the recreated vertex.
    #[test]
    fn recreate_after_write_through_delete_is_visible() {
        let (f, cfg) = fabric(1);
        f.run(|ctx| {
            let dht = Dht::new(ctx, cfg);
            dht.init_collective();
            let cache = TranslationCache::new(true, 64, 1);
            dht.insert(5, 50).unwrap();
            assert_eq!(cache.lookup(&dht, ctx, 5), Some(50));
            let w = dht.delete_traced(5).expect("present");
            cache.note_delete(5, w);
            assert_eq!(cache.lookup(&dht, ctx, 5), None);
            dht.insert(5, 51).unwrap(); // third-party re-create
            assert_eq!(cache.lookup(&dht, ctx, 5), Some(51), "recreated key masked");
        });
    }

    #[test]
    fn unrelated_delete_keeps_negative_entry_valid() {
        let (f, cfg) = fabric(1);
        f.run(|ctx| {
            let dht = Dht::new(ctx, cfg);
            dht.init_collective();
            let cache = TranslationCache::new(true, 64, 1);
            dht.insert(1, 10).unwrap();
            assert_eq!(cache.lookup(&dht, ctx, 2), None); // negative cached
            assert!(dht.delete(1)); // bumps delete half only
            assert_eq!(cache.lookup(&dht, ctx, 2), None);
            let s = cache.stats();
            // the second probe of key 2 must be a hit: deletes cannot
            // retire negative entries
            assert_eq!(s.hits, 1, "{s:?}");
        });
    }

    #[test]
    fn write_through_keeps_own_mutations_exact_while_pinned() {
        let (f, cfg) = fabric(1);
        f.run(|ctx| {
            let dht = Dht::new(ctx, cfg);
            dht.init_collective();
            let cache = TranslationCache::new(true, 64, 1);
            cache.begin_cycle(&dht, 1);
            assert_eq!(cache.lookup(&dht, ctx, 4), None);
            let w = dht.insert_traced(4, 40).unwrap();
            cache.note_insert(4, 40, w);
            assert_eq!(cache.lookup(&dht, ctx, 4), Some(40), "own insert lost");
            let w = dht.delete_traced(4).unwrap();
            cache.note_delete(4, w);
            assert_eq!(cache.lookup(&dht, ctx, 4), None, "own delete lost");
            cache.end_cycle();
        });
    }

    #[test]
    fn capacity_is_bounded() {
        let (f, cfg) = fabric(1);
        f.run(|ctx| {
            let dht = Dht::new(ctx, cfg);
            dht.init_collective();
            let cache = TranslationCache::new(true, 8, 1);
            for k in 0..64u64 {
                dht.insert(k, k + 1).unwrap();
            }
            for k in 0..64u64 {
                assert_eq!(cache.lookup(&dht, ctx, k), Some(k + 1));
            }
            assert!(cache.entries.borrow().len() <= 8);
            assert!(cache.stats().evictions >= 56);
        });
    }

    #[test]
    fn disabled_cache_is_transparent() {
        let (f, cfg) = fabric(1);
        f.run(|ctx| {
            let dht = Dht::new(ctx, cfg);
            dht.init_collective();
            let cache = TranslationCache::new(false, 8, 1);
            dht.insert(3, 30).unwrap();
            assert_eq!(cache.lookup(&dht, ctx, 3), Some(30));
            assert_eq!(cache.stats(), CacheStats::default());
            assert!(cache.entries.borrow().is_empty());
        });
    }

    #[test]
    fn cross_rank_invalidation() {
        let (f, cfg) = fabric(4);
        f.run(|ctx| {
            let dht = Dht::new(ctx, cfg);
            dht.init_collective();
            let cache = TranslationCache::new(true, 64, ctx.nranks());
            if ctx.rank() == 0 {
                for k in 0..32u64 {
                    dht.insert(k, k + 1).unwrap();
                }
            }
            ctx.barrier();
            // every rank caches all translations
            for k in 0..32u64 {
                assert_eq!(cache.lookup(&dht, ctx, k), Some(k + 1));
            }
            ctx.barrier();
            if ctx.rank() == 1 {
                for k in 0..32u64 {
                    assert!(dht.delete(k));
                }
            }
            ctx.barrier();
            // no rank may serve the retired translations
            for k in 0..32u64 {
                assert_eq!(cache.lookup(&dht, ctx, k), None, "stale k={k}");
            }
        });
    }
}

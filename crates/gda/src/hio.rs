//! Holder ⇄ block translation: the BGDL write-back/fetch paths.
//!
//! A serialized holder is stored as a chain of fixed-size blocks. Every
//! block starts with the 8-byte `DPtr` of the next block (NULL for the
//! last) and an 8-byte **version stamp**; the rest is payload. A holder
//! that fits one block therefore costs **one** remote operation to fetch —
//! the paper's headline property of BGDL ("one only needs a single remote
//! operation to fetch the data of a vertex that fits in one block").
//! Larger holders pay one operation per extra block.
//!
//! ### The stamp word and lock-free snapshot reads
//!
//! The stamp word carries the holder's `version` (the rank-unique commit
//! stamp) and makes each block a **seqlock**: [`overwrite_chain`]
//! republishes a live chain in three flushed phases (stamp := 0 →
//! payload → stamp := v), so a lock-free reader that copies a block and
//! then re-reads the stamp word observes equal non-zero stamps *iff* the
//! copy is untorn — payload bytes only ever change while the zero stamp
//! is visible. [`read_chain_validated`] retries transient failures
//! (a writer finishes its finite three phases, so retries terminate)
//! and never blocks the writer; structural failures surface as the
//! usual stale-internal-id `NotFound`. Locked readers and the quiesced
//! recovery replay use the plain [`read_chain`], which ignores stamps.
//!
//! The *primary block* is the identity of the object: its `DPtr` is the
//! internal vertex/edge id, and it never changes across resizes — resizing
//! acquires/releases only continuation blocks (always on the primary's
//! rank, keeping a vertex's storage server-local as in the paper's layout).

use gdi::{GdiError, GdiResult};
use rma::RankCtx;

use crate::blocks::BlockManager;
use crate::config::{GdaConfig, WIN_DATA};
use crate::dptr::DPtr;
use crate::holder::Holder;

/// Byte offset of a block's payload (after the chain pointer and the
/// version-stamp word).
pub const BLOCK_PAYLOAD_OFFSET: usize = 16;
/// Byte offset of a block's version-stamp word.
pub const BLOCK_STAMP_OFFSET: usize = 8;

/// Payload bytes per block (block minus the chain pointer and stamp).
#[inline]
pub fn payload_per_block(cfg: &GdaConfig) -> usize {
    cfg.block_size - BLOCK_PAYLOAD_OFFSET
}

/// The version stamp a serialized holder's blocks are written with: the
/// holder's own `version` field, read off the encoded bytes (offset 24,
/// after total_len/num_edges/entries_bytes/flags/app_id).
#[inline]
fn stamp_of(bytes: &[u8]) -> u64 {
    if bytes.len() >= 32 {
        u64::from_le_bytes(bytes[24..32].try_into().unwrap())
    } else {
        0
    }
}

/// Number of blocks needed for a serialized holder of `total_len` bytes.
#[inline]
pub fn blocks_needed(cfg: &GdaConfig, total_len: usize) -> usize {
    total_len.div_ceil(payload_per_block(cfg)).max(1)
}

/// Write `bytes` (a serialized holder) into the block chain `blocks`,
/// resizing the chain as needed. `blocks[0]` (the primary block) must
/// already exist and is never replaced; continuation blocks are acquired on
/// and released to the primary's rank.
pub fn write_chain(
    ctx: &RankCtx,
    bm: &BlockManager,
    bytes: &[u8],
    blocks: &mut Vec<DPtr>,
) -> GdiResult<()> {
    debug_assert!(!blocks.is_empty(), "write_chain needs a primary block");
    let cfg_payload = bm.block_size() - BLOCK_PAYLOAD_OFFSET;
    let needed = bytes.len().div_ceil(cfg_payload).max(1);
    let target = blocks[0].rank();
    while blocks.len() < needed {
        blocks.push(bm.acquire(target)?);
    }
    while blocks.len() > needed {
        let surplus = blocks.pop().unwrap();
        bm.release(surplus);
    }
    let stamp = stamp_of(bytes);
    // non-blocking puts: block writes of one holder overlap (§5.1)
    ctx.begin_nb_batch();
    let mut buf = vec![0u8; bm.block_size()];
    for (i, dp) in blocks.iter().enumerate() {
        let next = blocks.get(i + 1).copied().unwrap_or(DPtr::NULL);
        buf[..8].copy_from_slice(&next.raw().to_le_bytes());
        buf[8..16].copy_from_slice(&stamp.to_le_bytes());
        let start = i * cfg_payload;
        let end = ((i + 1) * cfg_payload).min(bytes.len());
        let chunk = &bytes[start..end];
        buf[16..16 + chunk.len()].copy_from_slice(chunk);
        for b in buf[16 + chunk.len()..].iter_mut() {
            *b = 0;
        }
        ctx.put_bytes(WIN_DATA, dp.rank(), dp.offset() as usize, &buf);
    }
    ctx.end_nb_batch();
    ctx.flush(target);
    Ok(())
}

/// [`write_chain`] for a chain that lock-free snapshot readers may be
/// traversing **right now** — the MVCC write-back path for objects that
/// already exist. Republishes in three flushed phases (the per-block
/// seqlock protocol):
///
/// 1. stamp := 0 on every *old* block (readers now retry);
/// 2. next pointers + payload, leaving the stamp word untouched;
/// 3. stamp := the new version on every block.
///
/// Payload bytes therefore only ever change while a flushed zero stamp
/// is visible, so a reader whose before/after stamp reads agree on a
/// non-zero value holds an untorn copy. The chain is resized *before*
/// phase 1: a resize failure (block exhaustion) must not strand zeroed
/// stamps, or readers would retry forever.
pub fn overwrite_chain(
    ctx: &RankCtx,
    bm: &BlockManager,
    bytes: &[u8],
    blocks: &mut Vec<DPtr>,
) -> GdiResult<()> {
    debug_assert!(!blocks.is_empty(), "overwrite_chain needs a primary block");
    let cfg_payload = bm.block_size() - BLOCK_PAYLOAD_OFFSET;
    let needed = bytes.len().div_ceil(cfg_payload).max(1);
    let target = blocks[0].rank();
    let old_blocks = blocks.clone();
    while blocks.len() < needed {
        blocks.push(bm.acquire(target)?);
    }
    // surplus blocks are zeroed in phase 1 (still owned) but handed
    // back only after phase 3 — releasing first would let another
    // writer acquire one and have its freshly published stamp clobbered
    // by our phase-1 put
    let surplus = if blocks.len() > needed {
        blocks.split_off(needed)
    } else {
        Vec::new()
    };
    // phase 1: invalidate every block a reader could already reach
    let zero = 0u64.to_le_bytes();
    ctx.begin_nb_batch();
    for dp in &old_blocks {
        ctx.put_bytes(
            WIN_DATA,
            dp.rank(),
            dp.offset() as usize + BLOCK_STAMP_OFFSET,
            &zero,
        );
    }
    ctx.end_nb_batch();
    ctx.flush(target);
    // phase 2: next pointers + payload (stamp words stay zero; fresh
    // continuation blocks are unreachable until the primary's next
    // pointer lands, which this same phase publishes before phase 3
    // re-arms the stamps)
    ctx.begin_nb_batch();
    let mut payload_buf = vec![0u8; cfg_payload];
    for (i, dp) in blocks.iter().enumerate() {
        let next = blocks.get(i + 1).copied().unwrap_or(DPtr::NULL);
        ctx.put_bytes(
            WIN_DATA,
            dp.rank(),
            dp.offset() as usize,
            &next.raw().to_le_bytes(),
        );
        let start = i * cfg_payload;
        let end = ((i + 1) * cfg_payload).min(bytes.len());
        let chunk = &bytes[start..end];
        payload_buf[..chunk.len()].copy_from_slice(chunk);
        for b in payload_buf[chunk.len()..].iter_mut() {
            *b = 0;
        }
        ctx.put_bytes(
            WIN_DATA,
            dp.rank(),
            dp.offset() as usize + BLOCK_PAYLOAD_OFFSET,
            &payload_buf,
        );
        // a freshly acquired block starts with whatever stamp its
        // previous occupant left — zero it so phase 3 is its first
        // valid publication
        if i >= old_blocks.len() {
            ctx.put_bytes(
                WIN_DATA,
                dp.rank(),
                dp.offset() as usize + BLOCK_STAMP_OFFSET,
                &zero,
            );
        }
    }
    ctx.end_nb_batch();
    ctx.flush(target);
    // phase 3: publish the new stamp
    let stamp = stamp_of(bytes).to_le_bytes();
    ctx.begin_nb_batch();
    for dp in blocks.iter() {
        ctx.put_bytes(
            WIN_DATA,
            dp.rank(),
            dp.offset() as usize + BLOCK_STAMP_OFFSET,
            &stamp,
        );
    }
    ctx.end_nb_batch();
    ctx.flush(target);
    for dp in surplus {
        bm.release(dp);
    }
    Ok(())
}

/// Fetch the full serialized holder starting at `primary`, following the
/// chain. Returns the holder bytes and the chain's block addresses.
///
/// Fails with `GDI_ERROR_NOT_FOUND` when the bytes are structurally
/// implausible — the symptom of a *stale internal id* whose storage was
/// reclaimed and reused while the caller still held the id (GDI's volatile
/// ids, §3.4, make this a condition transactions must tolerate).
pub fn read_chain(
    ctx: &RankCtx,
    cfg: &GdaConfig,
    primary: DPtr,
) -> GdiResult<(Vec<u8>, Vec<DPtr>)> {
    debug_assert!(!primary.is_null());
    let payload = payload_per_block(cfg);
    let max_total = payload * cfg.blocks_per_rank;
    let mut block_buf = vec![0u8; cfg.block_size];
    ctx.get_bytes(
        WIN_DATA,
        primary.rank(),
        primary.offset() as usize,
        &mut block_buf,
    );
    let mut next = DPtr::from_raw(u64::from_le_bytes(block_buf[..8].try_into().unwrap()));
    let total = Holder::peek_total_len(&block_buf[16..]);
    if total < crate::holder::HEADER_BYTES || total > max_total {
        return Err(GdiError::NotFound("object (stale internal id)"));
    }
    let mut bytes = Vec::with_capacity(total);
    bytes.extend_from_slice(&block_buf[16..16 + payload.min(total)]);
    let mut blocks = vec![primary];
    while bytes.len() < total {
        if next.is_null() || blocks.len() > cfg.blocks_per_rank {
            return Err(GdiError::NotFound("object (stale internal id)"));
        }
        ctx.get_bytes(
            WIN_DATA,
            next.rank(),
            next.offset() as usize,
            &mut block_buf,
        );
        blocks.push(next);
        let take = payload.min(total - bytes.len());
        bytes.extend_from_slice(&block_buf[16..16 + take]);
        next = DPtr::from_raw(u64::from_le_bytes(block_buf[..8].try_into().unwrap()));
    }
    Ok((bytes, blocks))
}

/// Retries before a lock-free validated read reports the chain as
/// structurally unreadable. Transient seqlock failures resolve as soon
/// as the writer's three flushed phases finish, so this bound is only
/// ever reached if a writer died mid-overwrite (a process-fatal
/// condition everywhere else too).
const VALIDATE_RETRIES: usize = 100_000;

/// Lock-free **snapshot fetch** of the chain at `primary`: the MVCC
/// read path. Copies each block, then re-reads its stamp word; a block
/// is untorn iff both stamp observations agree on a non-zero value (see
/// the module docs for the seqlock argument), and the whole chain must
/// carry the primary's stamp — a mixed-stamp chain is a concurrent
/// resize and is retried. On success the assembled holder bytes carry a
/// `version` field equal to the returned stamp, so the bytes are
/// exactly one atomic publication.
///
/// Returns the holder bytes and the stamp they were published under.
/// Never blocks the writer and never reports a *conflict*: transient
/// invalidity retries, structural implausibility is the ordinary
/// stale-internal-id `NotFound`.
pub fn read_chain_validated(
    ctx: &RankCtx,
    cfg: &GdaConfig,
    primary: DPtr,
) -> GdiResult<(Vec<u8>, u64)> {
    debug_assert!(!primary.is_null());
    let payload = payload_per_block(cfg);
    let max_total = payload * cfg.blocks_per_rank;
    let mut block_buf = vec![0u8; cfg.block_size];
    let mut stamp_buf = [0u8; 8];
    // one validated block copy; None = torn/in-flight (retry). The
    // block copy and the stamp re-read ride one injection round (§5.1
    // non-blocking overlap): same-target one-sided reads complete in
    // issue order, so the re-read still observes the stamp *after* the
    // copy — the validated read costs one network latency, not two,
    // which is what keeps it cheaper than a lock/unlock round-trip pair
    let mut read_block = |dp: DPtr, buf: &mut Vec<u8>| -> Option<(DPtr, u64)> {
        ctx.begin_nb_batch();
        ctx.get_bytes(WIN_DATA, dp.rank(), dp.offset() as usize, buf);
        let s1 = u64::from_le_bytes(buf[8..16].try_into().unwrap());
        ctx.get_bytes(
            WIN_DATA,
            dp.rank(),
            dp.offset() as usize + BLOCK_STAMP_OFFSET,
            &mut stamp_buf,
        );
        ctx.end_nb_batch();
        let s2 = u64::from_le_bytes(stamp_buf);
        if s1 == 0 || s1 != s2 {
            return None;
        }
        let next = DPtr::from_raw(u64::from_le_bytes(buf[..8].try_into().unwrap()));
        Some((next, s1))
    };
    'retry: for attempt in 0..VALIDATE_RETRIES {
        if attempt > 0 {
            // a torn read means a writer is mid-publication; on an
            // oversubscribed host it may be descheduled — yield so it
            // can finish instead of charge-spinning validated copies
            std::thread::yield_now();
        }
        let Some((mut next, stamp)) = read_block(primary, &mut block_buf) else {
            continue 'retry;
        };
        let total = Holder::peek_total_len(&block_buf[16..]);
        if total < crate::holder::HEADER_BYTES || total > max_total {
            return Err(GdiError::NotFound("object (stale internal id)"));
        }
        let mut bytes = Vec::with_capacity(total);
        bytes.extend_from_slice(&block_buf[16..16 + payload.min(total)]);
        let mut depth = 1usize;
        while bytes.len() < total {
            if next.is_null() || depth > cfg.blocks_per_rank {
                // the primary's copy validated, so a broken chain here
                // means the object moved on between blocks — retry
                continue 'retry;
            }
            let Some((n, s)) = read_block(next, &mut block_buf) else {
                continue 'retry;
            };
            if s != stamp {
                continue 'retry; // continuation republished under a newer version
            }
            let take = payload.min(total - bytes.len());
            bytes.extend_from_slice(&block_buf[16..16 + take]);
            next = n;
            depth += 1;
        }
        // the assembled bytes must be the publication the stamp names
        if bytes.len() >= 32 && u64::from_le_bytes(bytes[24..32].try_into().unwrap()) != stamp {
            continue 'retry;
        }
        return Ok((bytes, stamp));
    }
    Err(GdiError::NotFound(
        "object (snapshot validation did not converge)",
    ))
}

/// Batched lock-free validated fetch: [`read_chain_validated`]'s
/// seqlock protocol applied across many chains with
/// [`read_chains`]-style level pipelining. One optimistic pipelined
/// pass validates every block copy (stamp re-read after the copy, all
/// stamps equal to the chain's primary stamp, assembled bytes naming
/// that stamp); chains torn by a concurrent overwrite — rare — fall
/// back to the per-chain retry loop. Per-primary results preserve
/// input order.
pub fn read_chains_validated(
    ctx: &RankCtx,
    cfg: &GdaConfig,
    primaries: &[DPtr],
) -> Vec<GdiResult<(Vec<u8>, u64)>> {
    let payload = payload_per_block(cfg);
    let max_total = payload * cfg.blocks_per_rank;
    struct VChain {
        bytes: Vec<u8>,
        stamp: u64,
        next: DPtr,
        depth: usize,
        total: usize,
        torn: bool,
        failed: bool,
    }
    let mut chains: Vec<VChain> = primaries
        .iter()
        .map(|&p| {
            debug_assert!(!p.is_null());
            VChain {
                bytes: Vec::new(),
                stamp: 0,
                next: p,
                depth: 0,
                total: usize::MAX,
                torn: false,
                failed: false,
            }
        })
        .collect();
    let mut block_buf = vec![0u8; cfg.block_size];
    let mut stamp_buf = [0u8; 8];
    loop {
        let pending: Vec<usize> = chains
            .iter()
            .enumerate()
            .filter(|(_, c)| !c.torn && !c.failed && (c.depth == 0 || c.bytes.len() < c.total))
            .map(|(i, _)| i)
            .collect();
        if pending.is_empty() {
            break;
        }
        // one latency for the whole level; data transfers execute
        // immediately (shared memory), so the copy-then-stamp-re-read
        // order the seqlock needs is preserved inside the batch
        ctx.begin_nb_batch();
        for &i in &pending {
            let c = &mut chains[i];
            let dp = c.next;
            if dp.is_null() || c.depth >= cfg.blocks_per_rank {
                // primary validated but the chain broke mid-walk: the
                // object moved on between blocks — treat as torn
                c.torn = true;
                continue;
            }
            ctx.get_bytes(WIN_DATA, dp.rank(), dp.offset() as usize, &mut block_buf);
            let s1 = u64::from_le_bytes(block_buf[8..16].try_into().unwrap());
            ctx.get_bytes(
                WIN_DATA,
                dp.rank(),
                dp.offset() as usize + BLOCK_STAMP_OFFSET,
                &mut stamp_buf,
            );
            let s2 = u64::from_le_bytes(stamp_buf);
            if s1 == 0 || s1 != s2 || (c.depth > 0 && s1 != c.stamp) {
                c.torn = true;
                continue;
            }
            c.next = DPtr::from_raw(u64::from_le_bytes(block_buf[..8].try_into().unwrap()));
            if c.depth == 0 {
                c.stamp = s1;
                let total = Holder::peek_total_len(&block_buf[16..]);
                if total < crate::holder::HEADER_BYTES || total > max_total {
                    c.failed = true;
                    continue;
                }
                c.total = total;
                c.bytes.reserve(total);
            }
            c.depth += 1;
            let take = payload.min(c.total - c.bytes.len());
            c.bytes.extend_from_slice(&block_buf[16..16 + take]);
        }
        ctx.end_nb_batch();
    }
    primaries
        .iter()
        .zip(chains)
        .map(|(&p, c)| {
            if c.failed {
                return Err(GdiError::NotFound("object (stale internal id)"));
            }
            // assembled bytes must be the publication the stamp names
            if c.torn
                || c.bytes.len() < 32
                || u64::from_le_bytes(c.bytes[24..32].try_into().unwrap()) != c.stamp
            {
                // concurrent overwrite tore this chain: per-chain retry
                return read_chain_validated(ctx, cfg, p);
            }
            Ok((c.bytes, c.stamp))
        })
        .collect()
}

/// Fetch many holders at once, **pipelining** the block reads: per
/// chain *depth level*, every outstanding block is issued inside one
/// non-blocking batch, so the whole level costs a single network
/// latency instead of one blocking round trip per chain hop (§5.1's
/// non-blocking overlap, applied across objects). Level 0 fetches all
/// primary blocks, level `k` the `k`-th continuation block of every
/// chain still incomplete; the deepest chain bounds the number of
/// rounds.
///
/// Per-primary results preserve input order and fail individually with
/// the same structural checks as [`read_chain`] — a stale internal id
/// poisons only its own slot.
pub fn read_chains(
    ctx: &RankCtx,
    cfg: &GdaConfig,
    primaries: &[DPtr],
) -> Vec<GdiResult<(Vec<u8>, Vec<DPtr>)>> {
    let payload = payload_per_block(cfg);
    let max_total = payload * cfg.blocks_per_rank;
    struct Chain {
        bytes: Vec<u8>,
        blocks: Vec<DPtr>,
        next: DPtr,
        total: usize,
        failed: bool,
    }
    let mut chains: Vec<Chain> = primaries
        .iter()
        .map(|&p| {
            debug_assert!(!p.is_null());
            Chain {
                bytes: Vec::new(),
                blocks: Vec::new(),
                next: p,
                total: usize::MAX,
                failed: false,
            }
        })
        .collect();
    let mut block_buf = vec![0u8; cfg.block_size];
    loop {
        let pending: Vec<usize> = chains
            .iter()
            .enumerate()
            .filter(|(_, c)| !c.failed && (c.blocks.is_empty() || c.bytes.len() < c.total))
            .map(|(i, _)| i)
            .collect();
        if pending.is_empty() {
            break;
        }
        // one latency for the whole level: every block read of this
        // round overlaps inside the non-blocking batch
        ctx.begin_nb_batch();
        for &i in &pending {
            let c = &mut chains[i];
            let dp = c.next;
            if dp.is_null() || c.blocks.len() >= cfg.blocks_per_rank {
                c.failed = true;
                continue;
            }
            ctx.get_bytes(WIN_DATA, dp.rank(), dp.offset() as usize, &mut block_buf);
            c.next = DPtr::from_raw(u64::from_le_bytes(block_buf[..8].try_into().unwrap()));
            if c.blocks.is_empty() {
                // primary block: learn the chain's total length
                let total = Holder::peek_total_len(&block_buf[16..]);
                if total < crate::holder::HEADER_BYTES || total > max_total {
                    c.failed = true;
                    continue;
                }
                c.total = total;
                c.bytes.reserve(total);
            }
            c.blocks.push(dp);
            let take = payload.min(c.total - c.bytes.len());
            c.bytes.extend_from_slice(&block_buf[16..16 + take]);
        }
        ctx.end_nb_batch();
    }
    chains
        .into_iter()
        .map(|c| {
            if c.failed {
                Err(GdiError::NotFound("object (stale internal id)"))
            } else {
                Ok((c.bytes, c.blocks))
            }
        })
        .collect()
}

/// Release every block of a chain (object deletion).
pub fn free_chain(bm: &BlockManager, blocks: &[DPtr]) {
    for dp in blocks {
        bm.release(*dp);
    }
}

/// Offline variant of [`read_chain`] over a raw **data-window byte
/// image** (a snapshot's first window): follows the chain inside the
/// image without a live fabric. Chains are rank-local (continuation
/// blocks always live on the primary's rank), so one rank's image
/// suffices. Returns `None` on any structural implausibility — the
/// caller decides whether that is corruption or a vacated block.
///
/// Recovery primitive for **elastic resharding**: the logical holder
/// contents are lifted out of `P` snapshot images and re-materialized
/// on `Q` ranks at fresh addresses.
pub fn read_chain_bytes(
    cfg: &GdaConfig,
    data: &[u8],
    primary: DPtr,
) -> Option<(Vec<u8>, Vec<DPtr>)> {
    debug_assert!(!primary.is_null());
    let payload = payload_per_block(cfg);
    let max_total = payload * cfg.blocks_per_rank;
    let block = |dp: DPtr| -> Option<&[u8]> {
        let off = dp.offset() as usize;
        if dp.rank() != primary.rank() || off + cfg.block_size > data.len() {
            return None;
        }
        Some(&data[off..off + cfg.block_size])
    };
    let buf = block(primary)?;
    let mut next = DPtr::from_raw(u64::from_le_bytes(buf[..8].try_into().unwrap()));
    if buf.len() < 16 + crate::holder::HEADER_BYTES.min(payload) {
        return None;
    }
    let total = Holder::peek_total_len(&buf[16..]);
    if total < crate::holder::HEADER_BYTES || total > max_total {
        return None;
    }
    let mut bytes = Vec::with_capacity(total);
    bytes.extend_from_slice(&buf[16..16 + payload.min(total)]);
    let mut blocks = vec![primary];
    while bytes.len() < total {
        if next.is_null() || blocks.len() > cfg.blocks_per_rank {
            return None;
        }
        let buf = block(next)?;
        blocks.push(next);
        let take = payload.min(total - bytes.len());
        bytes.extend_from_slice(&buf[16..16 + take]);
        next = DPtr::from_raw(u64::from_le_bytes(buf[..8].try_into().unwrap()));
    }
    Some((bytes, blocks))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::holder::EdgeRecord;
    use gdi::{Direction, LabelId, PTypeId};
    use rma::CostModel;

    fn with_pool(f: impl Fn(&RankCtx, &BlockManager, &GdaConfig) + Sync) {
        let cfg = GdaConfig::tiny();
        let fabric = cfg.build_fabric(1, CostModel::zero());
        fabric.run(|ctx| {
            let bm = BlockManager::new(ctx, cfg);
            bm.init_collective();
            f(ctx, &bm, &cfg);
        });
    }

    fn big_holder(edges: usize, props: usize) -> Holder {
        let mut h = Holder::new_vertex(7);
        h.add_label(LabelId(3));
        for i in 0..edges {
            h.push_edge(EdgeRecord::lightweight(
                DPtr::new(0, 128 * (i as u64 + 1)),
                4,
                Direction::Out,
            ));
        }
        for i in 0..props {
            h.add_property(PTypeId(3 + i as u32), vec![i as u8; 13]);
        }
        h
    }

    #[test]
    fn single_block_roundtrip() {
        with_pool(|ctx, bm, cfg| {
            let h = big_holder(1, 1);
            assert_eq!(blocks_needed(cfg, h.encoded_len()), 1);
            let primary = bm.acquire(0).unwrap();
            let mut blocks = vec![primary];
            write_chain(ctx, bm, &h.encode(), &mut blocks).unwrap();
            assert_eq!(blocks.len(), 1);
            let (bytes, found) = read_chain(ctx, cfg, primary).unwrap();
            assert_eq!(found, blocks);
            assert_eq!(Holder::decode(&bytes), h);
        });
    }

    #[test]
    fn multi_block_roundtrip() {
        with_pool(|ctx, bm, cfg| {
            let h = big_holder(40, 10); // well beyond one 128 B block
            let need = blocks_needed(cfg, h.encoded_len());
            assert!(need > 3);
            let primary = bm.acquire(0).unwrap();
            let mut blocks = vec![primary];
            write_chain(ctx, bm, &h.encode(), &mut blocks).unwrap();
            assert_eq!(blocks.len(), need);
            let (bytes, found) = read_chain(ctx, cfg, primary).unwrap();
            assert_eq!(found.len(), need);
            assert_eq!(Holder::decode(&bytes), h);
        });
    }

    #[test]
    fn grow_then_shrink_keeps_primary_and_frees_surplus() {
        with_pool(|ctx, bm, cfg| {
            let free0 = bm.count_free(0);
            let primary = bm.acquire(0).unwrap();
            let mut blocks = vec![primary];

            let big = big_holder(60, 5);
            write_chain(ctx, bm, &big.encode(), &mut blocks).unwrap();
            let grown = blocks.len();
            assert!(grown > 1);
            assert_eq!(bm.count_free(0), free0 - grown);

            let small = big_holder(0, 0);
            write_chain(ctx, bm, &small.encode(), &mut blocks).unwrap();
            assert_eq!(blocks.len(), 1);
            assert_eq!(blocks[0], primary, "primary identity must be stable");
            assert_eq!(bm.count_free(0), free0 - 1);

            let (bytes, _) = read_chain(ctx, cfg, primary).unwrap();
            assert_eq!(Holder::decode(&bytes), small);

            free_chain(bm, &blocks);
            assert_eq!(bm.count_free(0), free0);
        });
    }

    #[test]
    fn exact_boundary_sizes() {
        with_pool(|ctx, bm, cfg| {
            let payload = payload_per_block(cfg);
            // craft holders whose encodings straddle block boundaries
            for extra in [0usize, 1, 7, 8] {
                let mut h = Holder::new_vertex(1);
                // entries grow in 8-byte steps; find a property payload that
                // makes the encoding land near k * payload
                let base = h.encoded_len();
                let want = payload * 2 + extra * 8;
                if want > base + 8 {
                    h.add_property(PTypeId(3), vec![0xCD; want - base - 8]);
                }
                let primary = bm.acquire(0).unwrap();
                let mut blocks = vec![primary];
                write_chain(ctx, bm, &h.encode(), &mut blocks).unwrap();
                let (bytes, _) = read_chain(ctx, cfg, primary).unwrap();
                assert_eq!(Holder::decode(&bytes), h, "extra={extra}");
                free_chain(bm, &blocks);
            }
        });
    }

    /// The offline chain reader must reproduce exactly what the live
    /// fetch path reads — it is the seed of a resharded restore.
    #[test]
    fn offline_chain_read_matches_live_read() {
        with_pool(|ctx, bm, cfg| {
            let small = big_holder(1, 1);
            let large = big_holder(40, 10);
            let mut primaries = Vec::new();
            for h in [&small, &large] {
                let primary = bm.acquire(0).unwrap();
                let mut blocks = vec![primary];
                write_chain(ctx, bm, &h.encode(), &mut blocks).unwrap();
                primaries.push(primary);
            }
            let mut image = vec![0u8; ctx.win_len_bytes(WIN_DATA)];
            ctx.get_bytes(WIN_DATA, 0, 0, &mut image);
            for (h, primary) in [&small, &large].into_iter().zip(&primaries) {
                let (live_bytes, live_blocks) = read_chain(ctx, cfg, *primary).unwrap();
                let (img_bytes, img_blocks) =
                    read_chain_bytes(cfg, &image, *primary).expect("offline read");
                assert_eq!(img_bytes, live_bytes);
                assert_eq!(img_blocks, live_blocks);
                assert_eq!(Holder::decode(&img_bytes), *h);
            }
            // a never-written block decodes to None, not garbage
            let free = bm.acquire(0).unwrap();
            assert!(read_chain_bytes(cfg, &image, free).is_none());
        });
    }

    /// The pipelined multi-chain fetch must return byte-identical
    /// results to per-chain [`read_chain`] calls, isolate a stale slot
    /// to its own result, and — being level-batched — pay fewer network
    /// latencies than the blocking loop.
    #[test]
    fn read_chains_matches_sequential_and_pipelines() {
        let cfg = GdaConfig::tiny();
        let fabric = cfg.build_fabric(2, CostModel::default());
        fabric.run(|ctx| {
            let bm = BlockManager::new(ctx, cfg);
            bm.init_collective();
            if ctx.rank() == 0 {
                // a mix of single- and multi-block holders on rank 1
                let holders: Vec<Holder> =
                    vec![big_holder(1, 0), big_holder(25, 3), big_holder(8, 1)];
                let mut primaries = Vec::new();
                for h in &holders {
                    let primary = bm.acquire(1).unwrap();
                    let mut blocks = vec![primary];
                    write_chain(ctx, &bm, &h.encode(), &mut blocks).unwrap();
                    primaries.push(primary);
                }
                let t0 = ctx.now_ns();
                let mut sequential = Vec::new();
                for &p in &primaries {
                    sequential.push(read_chain(ctx, &cfg, p).unwrap());
                }
                let t_seq = ctx.now_ns() - t0;
                let t1 = ctx.now_ns();
                let batched = read_chains(ctx, &cfg, &primaries);
                let t_bat = ctx.now_ns() - t1;
                for (got, want) in batched.iter().zip(&sequential) {
                    let (bytes, blocks) = got.as_ref().expect("chain fetch");
                    assert_eq!((bytes, blocks), (&want.0, &want.1));
                }
                // a LogGP-model relation: at wall scale both loops are
                // nanoseconds of shared-memory reads and the ordering
                // is scheduler noise
                if ctx.backend() == rma::BackendKind::Sim {
                    assert!(
                        t_bat < t_seq,
                        "pipelined fetch {t_bat} !< sequential {t_seq}"
                    );
                }
                // a never-written block fails alone, not the whole batch
                let free = bm.acquire(1).unwrap();
                let mixed = read_chains(ctx, &cfg, &[primaries[0], free, primaries[2]]);
                assert!(mixed[0].is_ok());
                assert!(mixed[1].is_err());
                assert!(mixed[2].is_ok());
            }
            ctx.barrier();
        });
    }

    /// The validated lock-free fetch must agree with the plain fetch on
    /// quiescent chains, across the three-phase republish, including
    /// grow and shrink resizes.
    #[test]
    fn validated_read_tracks_seqlock_overwrites() {
        with_pool(|ctx, bm, cfg| {
            let mut h = big_holder(25, 3);
            h.version = 7;
            let primary = bm.acquire(0).unwrap();
            let mut blocks = vec![primary];
            write_chain(ctx, bm, &h.encode(), &mut blocks).unwrap();
            let (bytes, stamp) = read_chain_validated(ctx, cfg, primary).unwrap();
            assert_eq!(stamp, 7);
            assert_eq!(Holder::decode(&bytes), h);

            // grow through the seqlock republish
            let mut h2 = big_holder(60, 5);
            h2.version = 8;
            overwrite_chain(ctx, bm, &h2.encode(), &mut blocks).unwrap();
            assert!(blocks.len() > 1);
            let (bytes, stamp) = read_chain_validated(ctx, cfg, primary).unwrap();
            assert_eq!(stamp, 8);
            assert_eq!(Holder::decode(&bytes), h2);
            let (plain, found) = read_chain(ctx, cfg, primary).unwrap();
            assert_eq!(plain, bytes);
            assert_eq!(&found, &blocks);

            // shrink: surplus returns to the pool only after publication
            let free_before = bm.count_free(0);
            let mut h3 = big_holder(0, 0);
            h3.version = 9;
            overwrite_chain(ctx, bm, &h3.encode(), &mut blocks).unwrap();
            assert_eq!(blocks.len(), 1);
            assert_eq!(blocks[0], primary, "primary identity must be stable");
            assert!(bm.count_free(0) > free_before);
            let (bytes, stamp) = read_chain_validated(ctx, cfg, primary).unwrap();
            assert_eq!(stamp, 9);
            assert_eq!(Holder::decode(&bytes), h3);
        });
    }

    #[test]
    fn cross_rank_chain() {
        let cfg = GdaConfig::tiny();
        let fabric = cfg.build_fabric(2, CostModel::zero());
        fabric.run(|ctx| {
            let bm = BlockManager::new(ctx, cfg);
            bm.init_collective();
            if ctx.rank() == 0 {
                // rank 0 creates a multi-block holder on rank 1
                let h = big_holder(30, 4);
                let primary = bm.acquire(1).unwrap();
                let mut blocks = vec![primary];
                write_chain(ctx, &bm, &h.encode(), &mut blocks).unwrap();
                assert!(blocks.iter().all(|b| b.rank() == 1));
                let (bytes, _) = read_chain(ctx, &cfg, primary).unwrap();
                assert_eq!(Holder::decode(&bytes), h);
            }
            ctx.barrier();
        });
    }
}

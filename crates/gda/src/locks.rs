//! Scalable distributed reader-writer locking (§5.6).
//!
//! GDA ensures the ACI properties with two-phase reader-writer locking.
//! Each vertex has exactly **one** lock word — "only one lock per any
//! vertex v is used to reduce the number of remote atomics" — stored in the
//! system window at the word corresponding to the primary block of `v`'s
//! holder:
//!
//! ```text
//! bit 63        : write bit
//! bits 0..=31   : reader counter
//! ```
//!
//! All operations are single remote atomics (FADD/CAS), the cheapest
//! possible on RDMA NICs. Acquisition is *bounded*: after
//! `max_lock_retries` failed attempts the caller receives
//! `GDI_ERROR_LOCK_CONFLICT` and the transaction aborts — conflicts surface
//! as the failed-transaction percentages the paper reports (Fig. 4c/4d).

use gdi::{GdiError, GdiResult};
use rma::RankCtx;

use crate::config::{GdaConfig, WIN_SYSTEM};
use crate::dptr::DPtr;

/// The write bit of a lock word.
pub const WRITE_BIT: u64 = 1 << 63;

/// Kind of lock held on an object.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LockKind {
    /// A shared reader lock.
    Read,
    /// An exclusive writer lock.
    Write,
}

/// Reader-writer lock operations bound to a rank context.
pub struct LockManager<'c, 'f> {
    ctx: &'c RankCtx<'f>,
    cfg: GdaConfig,
}

impl<'c, 'f> LockManager<'c, 'f> {
    /// Bind a lock-manager view to a rank context.
    pub fn new(ctx: &'c RankCtx<'f>, cfg: GdaConfig) -> Self {
        Self { ctx, cfg }
    }

    /// System-window word index of the lock of the object rooted at `dp`.
    #[inline]
    fn lock_word(&self, dp: DPtr) -> (usize, usize) {
        let block_idx = (dp.offset() / self.cfg.block_size as u64) as usize;
        debug_assert!(block_idx >= 1, "lock of the null block");
        (dp.rank(), block_idx)
    }

    fn backoff(&self, attempt: usize) {
        // Real-time politeness towards other rank threads plus simulated
        // exponential backoff cost.
        if attempt % 4 == 3 {
            std::thread::yield_now();
        }
        let model = self.ctx.cost_model();
        self.ctx
            .charge_ns(model.cpu_op_ns * (1 << attempt.min(8)) as f64);
    }

    /// Acquire a read lock: atomically bump the reader counter; if the
    /// write bit was set, undo and retry (bounded).
    pub fn acquire_read(&self, dp: DPtr) -> GdiResult<()> {
        let (rank, word) = self.lock_word(dp);
        for attempt in 0..self.cfg.max_lock_retries {
            let prev = self.ctx.fadd_u64(WIN_SYSTEM, rank, word, 1);
            if prev & WRITE_BIT == 0 {
                return Ok(());
            }
            self.ctx.fsub_u64(WIN_SYSTEM, rank, word, 1);
            self.backoff(attempt);
        }
        Err(GdiError::LockConflict)
    }

    /// Release a read lock.
    pub fn release_read(&self, dp: DPtr) {
        let (rank, word) = self.lock_word(dp);
        let prev = self.ctx.fsub_u64(WIN_SYSTEM, rank, word, 1);
        debug_assert!(prev & !WRITE_BIT > 0, "read-lock underflow");
    }

    /// Acquire a write lock: CAS the whole word from 0 (no writer, no
    /// readers) to the write bit.
    pub fn acquire_write(&self, dp: DPtr) -> GdiResult<()> {
        let (rank, word) = self.lock_word(dp);
        for attempt in 0..self.cfg.max_lock_retries {
            if self.ctx.cas_u64(WIN_SYSTEM, rank, word, 0, WRITE_BIT) == 0 {
                return Ok(());
            }
            self.backoff(attempt);
        }
        Err(GdiError::LockConflict)
    }

    /// Upgrade a read lock we hold to a write lock: succeeds only while we
    /// are the sole reader (CAS `1 → WRITE_BIT`). On failure the read lock
    /// is still held.
    pub fn upgrade(&self, dp: DPtr) -> GdiResult<()> {
        let (rank, word) = self.lock_word(dp);
        for attempt in 0..self.cfg.max_lock_retries {
            let prev = self.ctx.cas_u64(WIN_SYSTEM, rank, word, 1, WRITE_BIT);
            if prev == 1 {
                return Ok(());
            }
            if prev & WRITE_BIT != 0 {
                // a writer sneaked in while we held a read lock — impossible
                // under correct use (write bit excludes readers), so this is
                // another upgrader; give up immediately to avoid livelock
                return Err(GdiError::LockConflict);
            }
            // other readers still present; wait for them to drain
            self.backoff(attempt);
        }
        Err(GdiError::LockConflict)
    }

    /// Release a write lock.
    ///
    /// Uses an atomic subtract of the write bit rather than a CAS: a
    /// concurrent reader's transient `+1/-1` probe (its failed
    /// acquire-read) may be in flight, which would make a
    /// `CAS(WRITE_BIT → 0)` fail spuriously.
    pub fn release_write(&self, dp: DPtr) {
        let (rank, word) = self.lock_word(dp);
        let prev = self.ctx.fsub_u64(WIN_SYSTEM, rank, word, WRITE_BIT);
        debug_assert!(prev & WRITE_BIT != 0, "write-lock released but not held");
    }

    /// Release a lock of either kind.
    pub fn release(&self, dp: DPtr, kind: LockKind) {
        match kind {
            LockKind::Read => self.release_read(dp),
            LockKind::Write => self.release_write(dp),
        }
    }

    /// Diagnostic: raw lock word.
    pub fn peek(&self, dp: DPtr) -> u64 {
        let (rank, word) = self.lock_word(dp);
        self.ctx.aget_u64(WIN_SYSTEM, rank, word)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rma::CostModel;

    fn fabric(n: usize) -> (rma::Fabric, GdaConfig) {
        let cfg = GdaConfig::tiny();
        (cfg.build_fabric(n, CostModel::zero()), cfg)
    }

    fn dp() -> DPtr {
        DPtr::new(0, 128) // block 1 on rank 0
    }

    #[test]
    fn read_locks_are_shared() {
        let (f, cfg) = fabric(4);
        f.run(|ctx| {
            let lm = LockManager::new(ctx, cfg);
            lm.acquire_read(dp()).unwrap();
            ctx.barrier();
            // all four ranks hold the read lock simultaneously
            assert_eq!(lm.peek(dp()), 4);
            ctx.barrier();
            lm.release_read(dp());
            ctx.barrier();
            assert_eq!(lm.peek(dp()), 0);
        });
    }

    #[test]
    fn write_lock_is_exclusive() {
        let (f, cfg) = fabric(4);
        let winners = f.run(|ctx| {
            let lm = LockManager::new(ctx, cfg);
            let got = lm.acquire_write(dp()).is_ok();
            ctx.barrier();
            if got {
                lm.release_write(dp());
            }
            got
        });
        // with bounded retries under contention exactly one holds it at the
        // barrier; the others may or may not have succeeded before/after,
        // but at most one holds it *simultaneously*: verify via count of
        // winners being >= 1 and the lock ending free
        assert!(winners.iter().any(|&w| w));
    }

    #[test]
    fn writer_blocks_readers_and_vice_versa() {
        let (f, cfg) = fabric(2);
        f.run(|ctx| {
            let lm = LockManager::new(ctx, cfg);
            if ctx.rank() == 0 {
                lm.acquire_write(dp()).unwrap();
            }
            ctx.barrier();
            if ctx.rank() == 1 {
                assert_eq!(lm.acquire_read(dp()), Err(GdiError::LockConflict));
                assert_eq!(lm.acquire_write(dp()), Err(GdiError::LockConflict));
            }
            ctx.barrier();
            if ctx.rank() == 0 {
                lm.release_write(dp());
            }
            ctx.barrier();
            if ctx.rank() == 1 {
                lm.acquire_read(dp()).unwrap();
                lm.release_read(dp());
            }
        });
    }

    #[test]
    fn reader_blocks_writer() {
        let (f, cfg) = fabric(2);
        f.run(|ctx| {
            let lm = LockManager::new(ctx, cfg);
            if ctx.rank() == 0 {
                lm.acquire_read(dp()).unwrap();
            }
            ctx.barrier();
            if ctx.rank() == 1 {
                assert_eq!(lm.acquire_write(dp()), Err(GdiError::LockConflict));
            }
            ctx.barrier();
            if ctx.rank() == 0 {
                lm.release_read(dp());
            }
        });
    }

    #[test]
    fn upgrade_sole_reader() {
        let (f, cfg) = fabric(1);
        f.run(|ctx| {
            let lm = LockManager::new(ctx, cfg);
            lm.acquire_read(dp()).unwrap();
            lm.upgrade(dp()).unwrap();
            assert_eq!(lm.peek(dp()), WRITE_BIT);
            lm.release_write(dp());
            assert_eq!(lm.peek(dp()), 0);
        });
    }

    #[test]
    fn upgrade_fails_with_other_readers() {
        let (f, cfg) = fabric(2);
        f.run(|ctx| {
            let lm = LockManager::new(ctx, cfg);
            lm.acquire_read(dp()).unwrap();
            ctx.barrier();
            if ctx.rank() == 0 {
                assert_eq!(lm.upgrade(dp()), Err(GdiError::LockConflict));
                // read lock still held after failed upgrade
                assert!(lm.peek(dp()) >= 2);
            }
            ctx.barrier();
            lm.release_read(dp());
        });
    }

    #[test]
    fn mutual_exclusion_under_churn() {
        // Writers increment a non-atomic-looking counter (two separate
        // window words that must stay equal) under the write lock; any
        // mutual-exclusion violation desynchronizes them.
        let (f, cfg) = fabric(4);
        f.run(|ctx| {
            let lm = LockManager::new(ctx, cfg);
            let mut acquired = 0u64;
            for _ in 0..100 {
                if lm.acquire_write(dp()).is_ok() {
                    let a = ctx.get_u64(crate::config::WIN_DATA, 0, 0);
                    let b = ctx.get_u64(crate::config::WIN_DATA, 0, 1);
                    assert_eq!(a, b, "write lock failed to exclude");
                    ctx.put_u64(crate::config::WIN_DATA, 0, 0, a + 1);
                    std::thread::yield_now();
                    ctx.put_u64(crate::config::WIN_DATA, 0, 1, b + 1);
                    lm.release_write(dp());
                    acquired += 1;
                }
            }
            let total = ctx.allreduce_sum_u64(acquired);
            ctx.barrier();
            assert_eq!(ctx.get_u64(crate::config::WIN_DATA, 0, 0), total);
        });
    }
}

//! # `gda` — GDI-RMA: the Graph Database Interface for Remote Memory Access
//!
//! The paper's second contribution (§5): a high-performance, scalable
//! implementation of the GDI specification for distributed-memory RDMA
//! machines, here running on the simulated RMA fabric of the [`rma`] crate
//! (see `docs/ARCHITECTURE.md` for the substitution argument).
//!
//! Architecture (paper Fig. 3):
//!
//! * [`dptr`] — 64-bit distributed pointers (`rank:16 | offset:48`), tagged
//!   free-list heads, edge UIDs;
//! * [`config`] — tunable block size & window layout (the BGDL
//!   communication/storage tradeoff);
//! * [`blocks`] — the Blocked Graph Data Layout: lock-free, one-sided,
//!   ABA-safe fixed-size block pool per rank;
//! * [`holder`] / [`hio`] — the Logical Layout level: flexible-size vertex
//!   and edge holders (metadata, lightweight edges, label/property entries)
//!   mapped onto block chains;
//! * [`dht`] — the fully-offloaded lock-free distributed hash table used
//!   for application-id → internal-id translation;
//! * [`cache`] — the per-rank, epoch-validated translation cache in front
//!   of the DHT (positive + negative entries, one-`aget` revalidation);
//! * [`locks`] — one-word distributed reader–writer locks (write bit +
//!   reader counter, single remote atomics);
//! * [`meta`] — replicated, eventually-consistent labels and property
//!   types;
//! * [`index`] — explicit indexes with per-rank partitions and DNF
//!   constraints;
//! * [`tx`] — local and collective ACID transactions: per-transaction
//!   holder caches, two-phase locking, dirty-block write-back;
//! * [`bulk`] — collective bulk ingestion;
//! * [`db`] — database objects, multi-database registry, the per-rank
//!   engine handle;
//! * [`persist`] — durability: collective full **and incremental
//!   (delta)** checkpoints driven by dirty-chunk tracking, per-rank
//!   redo logs, crash recovery (snapshot chain + replay), elastic
//!   resharded recovery (restore a `P`-rank snapshot onto `Q` ranks);
//! * [`maint`] — collective background maintenance: MVCC version
//!   vacuum below the snapshot floor, free-list vacuum, holder-chain
//!   compaction, checksum verification of the published snapshot chain;
//! * [`rankmap`] — the canonical rank-ownership math and the
//!   snapshot-rank → live-rank map resharding is built on;
//! * [`scan`] — the zero-transaction OLAP scan layer: epoch-validated
//!   CSR mirrors built from raw window sweeps, delta-patched from the
//!   redo-log tail, cached per rank ([`GdaRank::olap_view`]);
//! * [`analysis`] — the work–depth guarantees table (§5.9).
//!
//! ## Quick start
//!
//! ```
//! use gda::{GdaConfig, GdaDb};
//! use gdi::{AccessMode, AppVertexId};
//! use rma::CostModel;
//!
//! let cfg = GdaConfig::tiny();
//! let (db, fabric) = GdaDb::with_fabric("quick", cfg, 2, CostModel::default());
//! fabric.run(|ctx| {
//!     let eng = db.attach(ctx);
//!     eng.init_collective();
//!     let person = if ctx.rank() == 0 {
//!         Some(eng.create_label("Person").unwrap())
//!     } else {
//!         None
//!     };
//!     ctx.barrier();
//!     if ctx.rank() == 0 {
//!         let tx = eng.begin(AccessMode::ReadWrite);
//!         let alice = tx.create_vertex(AppVertexId(1)).unwrap();
//!         tx.add_label(alice, person.unwrap()).unwrap();
//!         tx.commit().unwrap();
//!     }
//!     ctx.barrier();
//!     // any rank can now reach the vertex one-sidedly
//!     let eng2 = &eng;
//!     eng2.refresh_meta();
//!     let tx = eng2.begin(AccessMode::ReadOnly);
//!     let v = tx.translate_vertex_id(AppVertexId(1)).unwrap();
//!     assert!(!tx.labels(v).unwrap().is_empty());
//!     tx.commit().unwrap();
//! });
//! ```

#![warn(missing_docs)]

pub mod analysis;
pub mod blocks;
pub mod bulk;
pub mod cache;
pub mod config;
pub mod db;
pub mod dht;
pub mod dptr;
pub mod faults;
pub mod hio;
pub mod holder;
pub mod index;
pub mod locks;
pub mod maint;
pub mod meta;
pub mod persist;
pub mod rankmap;
mod reshard;
pub mod scan;
pub mod tx;

pub use bulk::{BulkReport, EdgeSpec, VertexSpec};
pub use cache::CacheStats;
pub use config::GdaConfig;
pub use db::{DbRegistry, GdaDb, GdaRank};
pub use dptr::{DPtr, EdgeUid};
pub use index::{IndexDef, IndexId, Posting};
pub use maint::MaintenanceReport;
pub use meta::{LabelDef, PTypeDef};
pub use persist::{
    CheckpointReport, PersistOptions, PersistStore, RankRecovery, RecoveryPlan, RedoRecord,
};
pub use rankmap::RankMap;
pub use scan::{CsrView, ScanPartition};
pub use tx::Transaction;

//! Elastic resharded recovery: restore a `P`-rank snapshot onto `Q`
//! live ranks (`Q ≠ P`).
//!
//! A same-topology recovery (`crate::persist`) is *physical*: window
//! bytes are put back verbatim and the redo tails replay against them,
//! because every persisted `DPtr` is still a valid address. Under a
//! different rank count nothing survives verbatim — vertex ownership
//! (`app mod P` → `app mod Q`), DHT placement (`h(k) mod P` →
//! `h(k) mod Q`), block addresses, index partitions and every `DPtr`
//! embedded in holder bytes all change meaning. Resharding therefore
//! runs in two halves:
//!
//! 1. **Logical reconstruction** ([`plan`], single-threaded, before the
//!    live fabric exists): lift the committed state out of the `P`
//!    snapshot images ([`crate::dht::decode_partition`] enumerates the
//!    vertices, [`crate::hio::read_chain_bytes`] lifts the holder
//!    chains, snapshot postings seed index membership), then replay the
//!    `P` redo logs **logically** against that object map with exactly
//!    the same ordering rules the physical replay uses — deletes first
//!    with identity-keyed tombstones, then upserts in log order, refused
//!    at or below their object's tombstone, cross-log ties broken by the
//!    commit-stamp versions. The result is one map `old primary →
//!    (app id, version, holder bytes, index membership)` plus the
//!    ownership decisions of the new topology (a [`RankMap`]) and a
//!    live config grown to fit the data on `Q` ranks (scale-in needs
//!    more blocks and DHT heap per rank).
//! 2. **Collective redistribution** ([`restore_rank_resharded`], every
//!    rank of the fresh `Q`-rank fabric): phase-by-phase with abort
//!    votes between phases — allocate every object's new primary on its
//!    new owner rank (filling the shared old→new remap table), then
//!    materialize: rewrite each holder's edge records through the remap
//!    table, write the chains, insert DHT entries under the new
//!    placement (quiet inserts + one collective epoch bump, the bulk-
//!    load discipline), import the index postings, raise every commit-
//!    stamp counter above the largest live version, and finish with a
//!    **mandatory** fresh checkpoint at the `Q` topology.
//!
//! ## Failure semantics
//!
//! A reshard *commits only through its closing checkpoint*: until that
//! checkpoint publishes, `CURRENT` still names the `P`-topology
//! snapshot, and the `P` redo segments are untouched (read-only). Any
//! mid-reshard failure — a receiving rank erroring during
//! redistribution, a corrupt shard, a failed closing checkpoint — is
//! voted collectively (no barrier deadlocks), surfaces on every rank,
//! and leaves the previous snapshot fully recoverable at the original
//! topology.

use parking_lot::RwLock;
use rustc_hash::FxHashMap;

use gdi::{AppVertexId, GdiError, GdiResult};

use crate::config::{GdaConfig, WIN_SYSTEM};
use crate::db::GdaRank;
use crate::dht::decode_partition;
use crate::dptr::DPtr;
use crate::hio;
use crate::holder::Holder;
use crate::index::{IndexDef, IndexId, Posting};
use crate::persist::{PersistStore, RankRecovery, RankSnapshot, RedoRecord};
use crate::rankmap::RankMap;

/// What the logical replay did (global counts over all `P` logs).
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct ReplayCounts {
    pub applied: u64,
    pub skipped: u64,
    pub errors: u64,
}

/// One object of the reconstructed logical state, with its placement
/// decision under the live topology.
#[derive(Debug)]
struct ReshardObject {
    /// Raw `DPtr` of the primary block in the snapshot address space.
    old_primary: u64,
    /// Owner rank under the live topology (allocates + materializes it).
    new_rank: usize,
    app_id: u64,
    is_edge: bool,
    /// Serialized holder (version embedded), still referencing
    /// snapshot-space `DPtr`s.
    bytes: Vec<u8>,
    /// Explicit indexes the object belongs to (vertices only).
    indexes: Vec<IndexId>,
}

/// The reconstructed state plus everything the collective
/// redistribution needs. Built by [`plan`], carried inside the
/// [`crate::persist::RecoveryPlan`] of a resharded recovery.
pub(crate) struct ReshardState {
    /// snapshot-rank → live-rank → ownership map.
    pub(crate) map: RankMap,
    /// The live config: the snapshot's config, grown where `Q` ranks
    /// need more per-rank capacity than `P` did (scale-in).
    pub(crate) cfg: GdaConfig,
    objects: Vec<ReshardObject>,
    /// old primary raw → new primary raw; written in the allocation
    /// phases, read-only (shared read guards, no copies) during
    /// materialization.
    remap: RwLock<FxHashMap<u64, u64>>,
    pub(crate) replay: ReplayCounts,
    /// Redo records parsed per snapshot shard (attributed to each
    /// shard's reader for reporting).
    log_records: Vec<u64>,
    /// Snapshot bytes per shard (reporting + parallel-read cost model).
    snap_bytes: Vec<u64>,
    /// Redo-log bytes per shard.
    log_bytes: Vec<u64>,
    /// Largest holder version alive anywhere (snapshot or logs): every
    /// live rank's commit-stamp counter starts strictly above it.
    max_version: u64,
}

impl std::fmt::Debug for ReshardState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReshardState")
            .field("map", &self.map)
            .field("objects", &self.objects.len())
            .finish()
    }
}

impl ReshardState {
    /// Number of logical objects to redistribute (diagnostics/tests).
    pub(crate) fn object_count(&self) -> usize {
        self.objects.len()
    }
}

/// Index membership of a vertex with these labels, under these defs —
/// must agree exactly with `IndexShared::reindex_vertex`.
fn membership(defs: &[IndexDef], labels: &[gdi::LabelId]) -> Vec<IndexId> {
    defs.iter()
        .filter(|d| d.matches(labels))
        .map(|d| d.id)
        .collect()
}

fn corrupt(what: &str) -> GdiError {
    GdiError::Io(format!("reshard: {what}"))
}

/// Build the logical state and the redistribution plan. Pure
/// computation over the already-read snapshot images and parsed logs;
/// no fabric exists yet (the returned config decides its window sizes).
pub(crate) fn plan(
    snap_cfg: &GdaConfig,
    map: RankMap,
    index_defs: &[IndexDef],
    snapshots: &[Option<RankSnapshot>],
    logs: &[Vec<RedoRecord>],
    snap_bytes: Vec<u64>,
    log_bytes: Vec<u64>,
) -> GdiResult<ReshardState> {
    let (snapshot_ranks, live_ranks) = (map.snapshot_ranks(), map.live_ranks());
    assert!(live_ranks >= 1 && live_ranks <= u16::MAX as usize);

    /// One live object during reconstruction.
    struct LObj {
        app_id: u64,
        is_edge: bool,
        version: u64,
        bytes: Vec<u8>,
        indexes: Vec<IndexId>,
    }
    let mut objects: FxHashMap<u64, LObj> = FxHashMap::default();

    // ---- seed from the snapshot images ------------------------------
    // Index membership is *not* re-derived from labels for snapshot
    // residents: a vertex created before an index existed is not in it,
    // and the physical restore preserves that by importing postings
    // verbatim. Same here.
    let mut member: FxHashMap<u64, Vec<IndexId>> = FxHashMap::default();
    for snap in snapshots.iter().flatten() {
        for (ix, ps) in &snap.postings {
            for p in ps {
                member.entry(p.vertex.raw()).or_default().push(*ix);
            }
        }
    }
    let data_of = |rank: usize| -> GdiResult<&[u8]> {
        snapshots
            .get(rank)
            .and_then(|s| s.as_ref())
            .map(|s| s.windows[0].as_slice())
            .ok_or_else(|| corrupt("holder chain points at a missing shard"))
    };
    // vertices, enumerated through the DHT partitions
    let mut edge_holders: Vec<u64> = Vec::new();
    for snap in snapshots.iter().flatten() {
        for (app, praw) in decode_partition(snap_cfg, &snap.windows[3]) {
            let primary = DPtr::from_raw(praw);
            let (bytes, _) = hio::read_chain_bytes(snap_cfg, data_of(primary.rank())?, primary)
                .ok_or_else(|| corrupt("unreadable vertex chain in snapshot"))?;
            let h = Holder::try_decode(&bytes)
                .ok_or_else(|| corrupt("undecodable vertex holder in snapshot"))?;
            if h.app_id != app || h.is_edge {
                return Err(corrupt("DHT entry does not match its holder"));
            }
            for (_, rec) in h.live_edges() {
                if !rec.edge_holder.is_null() {
                    edge_holders.push(rec.edge_holder.raw());
                }
            }
            objects.insert(
                praw,
                LObj {
                    app_id: app,
                    is_edge: false,
                    version: h.version,
                    bytes,
                    indexes: member.get(&praw).cloned().unwrap_or_default(),
                },
            );
        }
    }
    // heavyweight edge holders, discovered through their endpoints'
    // records (both mirrors reference the same holder — dedup)
    for praw in edge_holders {
        if objects.contains_key(&praw) {
            continue;
        }
        let primary = DPtr::from_raw(praw);
        let (bytes, _) = hio::read_chain_bytes(snap_cfg, data_of(primary.rank())?, primary)
            .ok_or_else(|| corrupt("unreadable edge-holder chain in snapshot"))?;
        let h = Holder::try_decode(&bytes)
            .ok_or_else(|| corrupt("undecodable edge holder in snapshot"))?;
        if !h.is_edge {
            return Err(corrupt("edge record points at a non-edge holder"));
        }
        objects.insert(
            praw,
            LObj {
                app_id: h.app_id,
                is_edge: true,
                version: h.version,
                bytes,
                indexes: Vec::new(),
            },
        );
    }

    // ---- logical redo replay ----------------------------------------
    // Same ordering rules as the physical `apply_record` path: all
    // committed deletes land (or tombstone) first, keyed by object
    // identity; then upserts in log order, refused at or before their
    // object's tombstone ("later" = a later position in the same log,
    // or a newer commit-stamp version cross-log), and refused when an
    // already-live state of the same object is at least as new.
    type TombKey = (u64, u64, bool);
    let mut tombs: FxHashMap<TombKey, (u64, usize, usize)> = FxHashMap::default();
    let mut replay = ReplayCounts::default();
    for (r, log) in logs.iter().enumerate() {
        for (seq, rec) in log.iter().enumerate() {
            if let RedoRecord::Delete {
                primary,
                app_id,
                is_edge,
                version,
            } = rec
            {
                tombs.insert((*primary, *app_id, *is_edge), (*version, r, seq));
                match objects.get(primary) {
                    Some(cur)
                        if cur.app_id == *app_id
                            && cur.is_edge == *is_edge
                            && cur.version <= *version =>
                    {
                        objects.remove(primary);
                        replay.applied += 1;
                    }
                    _ => replay.skipped += 1,
                }
            }
        }
    }
    let mut log_records = vec![0u64; snapshot_ranks];
    for (r, log) in logs.iter().enumerate() {
        log_records[r] = log.len() as u64;
        for (seq, rec) in log.iter().enumerate() {
            let RedoRecord::Upsert {
                primary,
                app_id,
                is_edge,
                version,
                bytes,
            } = rec
            else {
                continue;
            };
            let key = (*primary, *app_id, *is_edge);
            if let Some(&(t_ver, t_rank, t_seq)) = tombs.get(&key) {
                let later = if t_rank == r {
                    seq > t_seq
                } else {
                    *version > t_ver
                };
                if !later {
                    replay.skipped += 1;
                    continue;
                }
                tombs.remove(&key);
            }
            let Some(h) = Holder::try_decode(bytes) else {
                replay.errors += 1;
                continue;
            };
            let indexes = if *is_edge {
                Vec::new()
            } else {
                membership(index_defs, &h.labels())
            };
            match objects.get_mut(primary) {
                Some(cur) if cur.app_id == *app_id && cur.is_edge == *is_edge => {
                    if cur.version >= *version {
                        replay.skipped += 1;
                    } else {
                        cur.version = *version;
                        cur.bytes = bytes.clone();
                        cur.indexes = indexes;
                        replay.applied += 1;
                    }
                }
                _ => {
                    // vacant, or stale bytes of a different (deleted)
                    // occupant: the record is the authority
                    objects.insert(
                        *primary,
                        LObj {
                            app_id: *app_id,
                            is_edge: *is_edge,
                            version: *version,
                            bytes: bytes.clone(),
                            indexes,
                        },
                    );
                    replay.applied += 1;
                }
            }
        }
    }

    // ---- placement under the live topology --------------------------
    // Vertices go to their round-robin owner. An edge holder follows
    // its origin endpoint (same locality rule the live engine uses:
    // `ensure_edge_holder` allocates on the base vertex's rank), with
    // the old rank folded into the live space as a fallback.
    let max_version = objects
        .values()
        .map(|o| o.version)
        .chain(logs.iter().flatten().map(|r| match r {
            RedoRecord::Upsert { version, .. } | RedoRecord::Delete { version, .. } => *version,
        }))
        .max()
        .unwrap_or(0);
    // resolve every placement first (edge anchors need the vertex map),
    // then *drain* the object map into the plan — holder payloads are
    // moved, not cloned, so peak memory stays one copy of the database
    let new_ranks: FxHashMap<u64, usize> = objects
        .iter()
        .map(|(&praw, obj)| {
            let rank = if obj.is_edge {
                Holder::try_decode(&obj.bytes)
                    .and_then(|h| h.edges.first().map(|e| e.target.raw()))
                    .and_then(|anchor| {
                        objects
                            .get(&anchor)
                            .filter(|o| !o.is_edge)
                            .map(|o| map.vertex_owner(AppVertexId(o.app_id)))
                    })
                    .unwrap_or(DPtr::from_raw(praw).rank() % live_ranks)
            } else {
                map.vertex_owner(AppVertexId(obj.app_id))
            };
            (praw, rank)
        })
        .collect();
    let mut planned: Vec<ReshardObject> = objects
        .into_iter()
        .map(|(praw, obj)| ReshardObject {
            old_primary: praw,
            new_rank: new_ranks[&praw],
            app_id: obj.app_id,
            is_edge: obj.is_edge,
            bytes: obj.bytes,
            indexes: obj.indexes,
        })
        .collect();
    // deterministic materialization order regardless of hash-map order
    planned.sort_unstable_by_key(|o| o.old_primary);

    // ---- size the live config ---------------------------------------
    // Scale-in concentrates the same data on fewer ranks: grow the
    // per-rank block pool and DHT heap where the exact per-rank demand
    // (with 2x headroom for post-reshard traffic) exceeds the
    // snapshot's config. Never shrink — the old config is the floor.
    let mut blocks_per = vec![0usize; live_ranks];
    let mut heap_per = vec![0usize; live_ranks];
    for obj in &planned {
        blocks_per[obj.new_rank] += hio::blocks_needed(snap_cfg, obj.bytes.len());
        if !obj.is_edge {
            heap_per[map.dht_rank(obj.app_id)] += 1;
        }
    }
    let mut cfg = *snap_cfg;
    let need_blocks = blocks_per.iter().copied().max().unwrap_or(0);
    cfg.blocks_per_rank = cfg
        .blocks_per_rank
        .max(((need_blocks + 1) * 2).next_power_of_two());
    let need_heap = heap_per.iter().copied().max().unwrap_or(0);
    cfg.dht_heap_per_rank = cfg
        .dht_heap_per_rank
        .max(((need_heap + 1) * 2).next_power_of_two());

    Ok(ReshardState {
        map,
        cfg,
        objects: planned,
        remap: RwLock::new(FxHashMap::default()),
        replay,
        log_records,
        snap_bytes,
        log_bytes,
        max_version,
    })
}

/// Collective abort vote: if any rank failed its phase, every rank
/// returns an error together (no unilateral early return may leave
/// peers deadlocked in a later barrier).
fn vote(ctx: &rma::RankCtx, my_err: Option<GdiError>) -> GdiResult<()> {
    if ctx.allreduce_any(my_err.is_some()) {
        Err(my_err.unwrap_or_else(|| GdiError::Io("reshard failed on a peer rank".into())))
    } else {
        Ok(())
    }
}

/// The collective redistribution body behind
/// [`crate::persist::RecoveryPlan::restore_rank`] when the plan carries
/// a [`ReshardState`]. Every rank of the `Q`-rank fabric runs it once,
/// together.
pub(crate) fn restore_rank_resharded(
    rs: &ReshardState,
    eng: &GdaRank,
    store: &PersistStore,
) -> GdiResult<RankRecovery> {
    let ctx = eng.ctx();
    let me = eng.rank();
    debug_assert_eq!(eng.nranks(), rs.map.live_ranks());
    let wall0 = std::time::Instant::now();
    let sim0 = ctx.now_ns();
    let mut out = RankRecovery {
        rank: me,
        resharded_from: Some(rs.map.snapshot_ranks()),
        ..Default::default()
    };

    // fresh storage substrate on the live topology
    eng.init_collective();

    // model this rank reading its snapshot shards and redo segments in
    // parallel with the other readers (device-speed sequential reads)
    let mut in_snap = 0u64;
    let mut in_log = 0u64;
    for s in rs.map.shards_for(me) {
        in_snap += rs.snap_bytes[s];
        in_log += rs.log_bytes[s];
        out.records += rs.log_records[s];
    }
    ctx.charge_ns(ctx.cost_model().log_write((in_snap + in_log) as usize));
    out.snapshot_bytes = in_snap;
    out.log_bytes = in_log;
    if me == 0 {
        // the logical replay's global outcome, reported once
        out.applied = rs.replay.applied;
        out.skipped = rs.replay.skipped;
        out.errors = rs.replay.errors;
    }

    // ---- phase 1: allocate vertex primaries on their new owners -----
    let mut my_err: Option<GdiError> = None;
    for obj in &rs.objects {
        if obj.is_edge || obj.new_rank != me {
            continue;
        }
        match eng.bm.acquire(me) {
            Ok(dp) => {
                rs.remap.write().insert(obj.old_primary, dp.raw());
            }
            Err(e) => {
                my_err = Some(e);
                break;
            }
        }
    }
    vote(ctx, my_err.take())?;

    // ---- phase 2: allocate edge-holder primaries --------------------
    for obj in &rs.objects {
        if !obj.is_edge || obj.new_rank != me {
            continue;
        }
        match eng.bm.acquire(me) {
            Ok(dp) => {
                rs.remap.write().insert(obj.old_primary, dp.raw());
            }
            Err(e) => {
                my_err = Some(e);
                break;
            }
        }
    }
    vote(ctx, my_err.take())?;

    // ---- phase 3: materialize (rewrite dptrs, write chains, DHT,
    // index postings) -------------------------------------------------
    // The remap table is complete and read-only from here: every rank
    // holds a shared read guard for the whole phase (no copies, no
    // serialization on the lock).
    let remap = rs.remap.read();
    let mut moved = 0u64;
    let mut moved_bytes = 0u64;
    let mut postings: FxHashMap<IndexId, Vec<Posting>> = FxHashMap::default();
    for obj in &rs.objects {
        if obj.new_rank != me {
            continue;
        }
        // fault point: a receiving rank errors mid-redistribution; the
        // vote below aborts the reshard everywhere
        if store
            .probe_fault(crate::faults::RESHARD_REDISTRIBUTE, me)
            .is_some()
        {
            my_err = Some(GdiError::Io("injected reshard failure".into()));
            break;
        }
        let Some(mut h) = Holder::try_decode(&obj.bytes) else {
            out.errors += 1;
            continue;
        };
        // rewrite every embedded reference into the live address space;
        // an unresolvable reference means the committed state was
        // inconsistent — count it and drop the record rather than leak
        // a snapshot-space pointer into live data
        let mut broken = 0u64;
        h.edges.retain_mut(|rec| {
            if !rec.target.is_null() {
                match remap.get(&rec.target.raw()) {
                    Some(&n) => rec.target = DPtr::from_raw(n),
                    None => {
                        broken += 1;
                        return false;
                    }
                }
            }
            if !rec.edge_holder.is_null() {
                match remap.get(&rec.edge_holder.raw()) {
                    Some(&n) => rec.edge_holder = DPtr::from_raw(n),
                    None => {
                        broken += 1;
                        return false;
                    }
                }
            }
            true
        });
        out.errors += broken;
        // re-materialized holders start a fresh epoch-0 world: the old
        // incarnation's version chain lives in snapshot address space
        // (unresolvable here) and the new fabric's watermark restarts
        // at zero, so every object must be visible to every snapshot
        h.commit_epoch = 0;
        h.prev = 0;
        h.depth = 0;
        let bytes = h.encode();
        let new_primary = DPtr::from_raw(remap[&obj.old_primary]);
        let mut blocks = vec![new_primary];
        if let Err(e) = hio::write_chain(ctx, &eng.bm, &bytes, &mut blocks) {
            my_err = Some(e);
            break;
        }
        if !obj.is_edge {
            // bulk-load discipline: quiet inserts now, one collective
            // epoch bump afterwards (no reader exists yet)
            if let Err(e) = eng.dht.insert_quiet(obj.app_id, new_primary.raw()) {
                my_err = Some(e);
                break;
            }
            for ix in &obj.indexes {
                postings.entry(*ix).or_default().push(Posting {
                    vertex: new_primary,
                    app_id: AppVertexId(obj.app_id),
                });
            }
        }
        moved += 1;
        moved_bytes += bytes.len() as u64;
    }
    if my_err.is_none() {
        let mut parts: Vec<(IndexId, Vec<Posting>)> = postings.into_iter().collect();
        parts.sort_unstable_by_key(|(id, _)| *id);
        eng.indexes().import_rank(me, parts);
    }
    ctx.record_reshard(moved, moved_bytes);
    vote(ctx, my_err.take())?;

    // ---- phase 4: epochs + commit stamps ----------------------------
    eng.dht.bump_own_insert_epoch();
    // every future commit must stamp strictly above anything alive
    let stamp_word = eng.cfg().stamp_word();
    let cur = ctx.aget_u64(WIN_SYSTEM, me, stamp_word);
    if cur < rs.max_version {
        ctx.aput_u64(WIN_SYSTEM, me, stamp_word, rs.max_version);
    }
    ctx.barrier();

    out.sim_restore_s = (ctx.now_ns() - sim0) / 1e9;
    out.wall_restore_s = wall0.elapsed().as_secs_f64();

    // ---- phase 5: the committing checkpoint -------------------------
    // Unlike a same-topology recovery (where a failed end-of-recovery
    // checkpoint is tolerable — the old snapshot + still-valid logs
    // cover the state), a reshard is durable *only* through this
    // publish: until it lands, `CURRENT` names the P-topology snapshot,
    // and post-reshard commits would be stranded on a topology the
    // pointer does not describe. A failure is therefore a recovery
    // failure (checkpoint errors are already collective).
    // Always a full rebase: a delta here would chain the Q-topology
    // windows onto the P-topology chain, which no later recovery could
    // read (the shard identity — rank count — changed underneath it).
    out.final_checkpoint = Some(eng.checkpoint_full()?);
    Ok(out)
}

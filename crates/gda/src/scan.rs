//! Zero-transaction OLAP scan layer: epoch-validated CSR snapshots
//! built from raw window sweeps.
//!
//! The collective tx-based view builders (`workloads::analytics`) open a
//! read transaction and call `neighbors` once per vertex — paying DHT
//! translation, holder-chain pointer chasing and transaction bookkeeping
//! for every local vertex on every OLAP job. This module is the paper's
//! "scan the storage, skip the protocol" alternative: analytics read
//! adjacency at memory bandwidth straight out of the storage windows.
//!
//! ## The sweep protocol
//!
//! Building a [`CsrView`] is collective:
//!
//! 1. every rank decodes **its own DHT partition** out of the raw
//!    index-window bytes ([`crate::dht::decode_partition`] — one local
//!    sequential read, no remote chain walks);
//! 2. one `alltoallv` routes the decoded `(app id, primary)` pairs to
//!    the rank owning each primary block (for an explicit app
//!    partition, a request/answer `alltoallv` pair resolves the ids
//!    instead — still without a single per-key remote lookup);
//! 3. each rank reads its **data window once, sequentially**, and
//!    batch-decodes every live local holder in block order via the
//!    offline chain reader ([`crate::hio::read_chain_bytes`]);
//! 4. the rare primaries living on a *remote* rank (an app partition
//!    that does not follow ownership) are fetched with the pipelined
//!    multi-chain reader ([`crate::hio::read_chains`]) — one
//!    non-blocking batch per chain level, not one blocking read per
//!    chain hop.
//!
//! ## Epoch validation and delta maintenance
//!
//! The view is stamped with the **topology-epoch word** of every source
//! rank ([`crate::config::GdaConfig::topo_word`]): commits bump it once
//! per touched rank when (and only when) they change membership or an
//! edge list, so property-only writes (a GNN layer's feature updates)
//! never retire a view. One epoch snapshot per OLAP job revalidates a
//! cached view; when the epoch moved, the view is **patched from the
//! redo-log tail** when the database is durable and the delta is small
//! (vertex-holder upserts of rows already in the view), and rebuilt by
//! a fresh sweep otherwise. Like the collective read-only transactions
//! it replaces, the scan layer assumes OLAP jobs do not run concurrently
//! with mutating transactions (§5.6's optimized read path).

use std::rc::Rc;

use rustc_hash::{FxHashMap, FxHashSet};

use gdi::EdgeOrientation;

use crate::config::{WIN_DATA, WIN_INDEX};
use crate::db::GdaRank;
use crate::dht;
use crate::dptr::DPtr;
use crate::hio;
use crate::holder::Holder;
use crate::index::IndexId;
use crate::persist::RedoRecord;

/// One edge as it appears in a view row: `(target, lightweight label)`.
pub type ScanEdge = (DPtr, u32);

/// One assembled view row: `(app id, internal id, out edges, any edges)`.
type AdjRow = (u64, DPtr, Vec<ScanEdge>, Vec<ScanEdge>);

/// Which vertices a scan view covers on this rank.
#[derive(Debug, Clone, Copy)]
pub enum ScanPartition<'a> {
    /// Every live vertex whose primary block lives on this rank (the
    /// natural OLAP partition; equals the round-robin app partition).
    LocalAll,
    /// An explicit application-id partition (every id must exist).
    Apps(&'a [u64]),
    /// This rank's postings of an explicit index.
    Index(IndexId),
}

/// A per-rank CSR mirror of the local graph partition, built by one
/// sequential sweep of the raw storage windows — the zero-transaction
/// OLAP read path. Rows are sorted by application id.
#[derive(Debug, Clone, Default)]
pub struct CsrView {
    /// Application ids of the covered vertices (ascending).
    pub apps: Vec<u64>,
    /// Internal ids, parallel to `apps`.
    pub vids: Vec<DPtr>,
    /// Internal id (raw) → row.
    pub index_of: FxHashMap<u64, usize>,
    /// App id → row.
    pub app_index: FxHashMap<u64, usize>,
    out_off: Vec<u32>,
    out_tgt: Vec<DPtr>,
    out_lbl: Vec<u32>,
    any_off: Vec<u32>,
    any_tgt: Vec<DPtr>,
    any_lbl: Vec<u32>,
    /// `(source rank, topology-epoch word observed before the sweep)`.
    stamps: Vec<(usize, u64)>,
    /// Redo-log position marks per rank at build time (durable
    /// databases only) — the delta-patch source.
    marks: Option<Vec<(u64, u64)>>,
    /// The store's unlogged-mutation counter at build time: a bulk
    /// load bumps it without logging anything, so a tail read past the
    /// marks is only a complete delta while the counter is unchanged.
    unlogged_at_build: u64,
}

impl CsrView {
    /// Number of covered vertices.
    pub fn len(&self) -> usize {
        self.apps.len()
    }

    /// Is the view empty?
    pub fn is_empty(&self) -> bool {
        self.apps.is_empty()
    }

    /// Outgoing neighbors of row `i` (directed `Out` records only, like
    /// `Transaction::neighbors(_, Outgoing, None)`).
    #[inline]
    pub fn out(&self, i: usize) -> &[DPtr] {
        &self.out_tgt[self.out_off[i] as usize..self.out_off[i + 1] as usize]
    }

    /// All neighbors of row `i` (any orientation, in record order).
    #[inline]
    pub fn any(&self, i: usize) -> &[DPtr] {
        &self.any_tgt[self.any_off[i] as usize..self.any_off[i + 1] as usize]
    }

    /// Per-edge labels parallel to [`CsrView::out`] (0 = unlabeled).
    #[inline]
    pub fn out_labels(&self, i: usize) -> &[u32] {
        &self.out_lbl[self.out_off[i] as usize..self.out_off[i + 1] as usize]
    }

    /// Per-edge labels parallel to [`CsrView::any`] (0 = unlabeled).
    #[inline]
    pub fn any_labels(&self, i: usize) -> &[u32] {
        &self.any_lbl[self.any_off[i] as usize..self.any_off[i + 1] as usize]
    }

    /// Local out-degree sum (diagnostics): the final CSR offset.
    pub fn out_edges(&self) -> usize {
        self.out_tgt.len()
    }

    /// Local any-orientation degree sum (message-volume accounting).
    pub fn any_edges(&self) -> usize {
        self.any_tgt.len()
    }

    /// Logical equality with another view: same vertices, same internal
    /// ids, same adjacency (targets and labels, in record order). The
    /// differential-oracle comparison between the scan-built and the
    /// tx-built view.
    pub fn logical_eq(&self, other: &CsrView) -> bool {
        if self.apps != other.apps || self.vids != other.vids {
            return false;
        }
        (0..self.len()).all(|i| {
            self.out(i) == other.out(i)
                && self.any(i) == other.any(i)
                && self.out_labels(i) == other.out_labels(i)
                && self.any_labels(i) == other.any_labels(i)
        })
    }

    /// Build a view directly from per-vertex adjacency rows (the
    /// tx-based oracle path; also useful in tests). Rows must be
    /// parallel to `apps`/`vids` and are re-sorted by app id.
    pub fn from_adjacency(
        apps: Vec<u64>,
        vids: Vec<DPtr>,
        out: Vec<Vec<ScanEdge>>,
        any: Vec<Vec<ScanEdge>>,
    ) -> CsrView {
        assert_eq!(apps.len(), vids.len());
        assert_eq!(apps.len(), out.len());
        assert_eq!(apps.len(), any.len());
        let mut view = CsrView::default();
        let mut rows: Vec<AdjRow> = apps
            .into_iter()
            .zip(vids)
            .zip(out.into_iter().zip(any))
            .map(|((a, v), (o, n))| (a, v, o, n))
            .collect();
        rows.sort_by_key(|r| r.0);
        view.push_rows(rows);
        view
    }

    /// Append sorted rows, building the CSR arrays and maps.
    fn push_rows(&mut self, rows: Vec<AdjRow>) {
        self.out_off.push(0);
        self.any_off.push(0);
        for (i, (app, vid, out, any)) in rows.into_iter().enumerate() {
            self.apps.push(app);
            self.vids.push(vid);
            self.index_of.insert(vid.raw(), i);
            self.app_index.insert(app, i);
            for (t, l) in out {
                self.out_tgt.push(t);
                self.out_lbl.push(l);
            }
            for (t, l) in any {
                self.any_tgt.push(t);
                self.any_lbl.push(l);
            }
            self.out_off.push(self.out_tgt.len() as u32);
            self.any_off.push(self.any_tgt.len() as u32);
        }
    }
}

/// Extract the `(out, any)` adjacency rows of a decoded vertex holder —
/// exactly the records `Transaction::neighbors` would return for the
/// `Outgoing` / `Any` orientations, in slot order.
fn adjacency_of(h: &Holder) -> (Vec<ScanEdge>, Vec<ScanEdge>) {
    let mut out = Vec::new();
    let mut any = Vec::new();
    for (_, r) in h.live_edges() {
        if EdgeOrientation::Outgoing.matches(r.dir) {
            out.push((r.target, r.label));
        }
        any.push((r.target, r.label));
    }
    (out, any)
}

/// Delta-patch budget: a redo tail touching more than this fraction of
/// the view's rows is not "cheap" — rebuild instead.
const PATCH_MAX_FRACTION: f64 = 0.125;

/// Collective: build a fresh [`CsrView`] for `part` by the raw-window
/// sweep protocol (see the module docs). Every rank must call this
/// together with the same partition variant.
pub fn build_view(eng: &GdaRank, part: ScanPartition) -> Rc<CsrView> {
    build_collective(eng, part, None)
}

/// The collective build, optionally short-circuiting this rank's sweep
/// with a still-valid cached view (the rank keeps serving the DHT
/// exchange so peers can resolve their partitions).
pub(crate) fn build_collective(
    eng: &GdaRank,
    part: ScanPartition,
    reuse: Option<Rc<CsrView>>,
) -> Rc<CsrView> {
    let ctx = eng.ctx();
    let cfg = eng.cfg();
    let me = eng.rank();
    let nranks = eng.nranks();
    ctx.barrier();

    // -- resolve the (app, primary) pairs of this rank's partition ------
    let mine: Vec<(u64, u64)> = match part {
        ScanPartition::Index(ix) => {
            let mut postings = eng.local_index_vertices(ix);
            postings.sort_by_key(|p| p.app_id);
            postings
                .into_iter()
                .map(|p| (p.app_id.0, p.vertex.raw()))
                .collect()
        }
        ScanPartition::LocalAll | ScanPartition::Apps(_) => {
            // decode this rank's DHT partition out of the raw index
            // window: one local sequential read, no remote operations
            let mut img = vec![0u8; ctx.win_len_bytes(WIN_INDEX)];
            ctx.get_bytes(WIN_INDEX, me, 0, &mut img);
            let pairs = dht::decode_partition(cfg, &img);
            ctx.charge_cpu(pairs.len() as u64 + cfg.dht_buckets_per_rank as u64);
            match part {
                ScanPartition::LocalAll => {
                    // route every pair to its primary's owner rank
                    let mut rows: Vec<Vec<(u64, u64)>> = vec![Vec::new(); nranks];
                    for (app, raw) in pairs {
                        rows[DPtr::from_raw(raw).rank()].push((app, raw));
                    }
                    ctx.alltoallv(rows).into_iter().flatten().collect()
                }
                ScanPartition::Apps(apps) => {
                    // request/answer exchange: ask the DHT rank of each
                    // id, answer from the decoded partition
                    let mut req: Vec<Vec<u64>> = vec![Vec::new(); nranks];
                    for &app in apps {
                        req[crate::rankmap::dht_rank(app, nranks)].push(app);
                    }
                    let asked = ctx.alltoallv(req);
                    let map: FxHashMap<u64, u64> = pairs.into_iter().collect();
                    let answers: Vec<Vec<(u64, u64)>> = asked
                        .into_iter()
                        .map(|row| {
                            row.into_iter()
                                .map(|app| {
                                    let raw = *map.get(&app).expect("scan view vertex must exist");
                                    (app, raw)
                                })
                                .collect()
                        })
                        .collect();
                    ctx.alltoallv(answers).into_iter().flatten().collect()
                }
                ScanPartition::Index(_) => unreachable!(),
            }
        }
    };

    if let Some(v) = reuse {
        // a still-usable cached view: this rank served the exchange
        // above but skips its own sweep entirely (reuse accounting is
        // the caller's — `GdaRank::olap_view` — so patched views are
        // not double-counted as reuses)
        ctx.barrier();
        return v;
    }

    // -- epoch stamps + log marks, observed *before* any data is read --
    let mut sources: Vec<usize> = mine
        .iter()
        .map(|&(_, raw)| DPtr::from_raw(raw).rank())
        .collect();
    sources.push(me);
    sources.sort_unstable();
    sources.dedup();
    let stamps: Vec<(usize, u64)> = sources
        .iter()
        .map(|&r| (r, eng.topology_epoch(r)))
        .collect();
    // a store that has ever dropped an append (I/O error) has gaps the
    // delta patch would silently miss — only a clean log is a valid
    // patch source, so such views carry no marks and always rebuild
    let store = eng.persistence().filter(|store| store.log_errors() == 0);
    let unlogged_at_build = store.as_ref().map(|s| s.unlogged_mutations()).unwrap_or(0);
    let marks = store.map(|store| (0..nranks).map(|r| store.log_mark(r)).collect());

    // -- the sweep: one sequential read of the local data window --------
    let mut local: Vec<(u64, u64)> = Vec::with_capacity(mine.len());
    let mut remote: Vec<(u64, u64)> = Vec::new();
    for &(app, raw) in &mine {
        if DPtr::from_raw(raw).rank() == me {
            local.push((app, raw));
        } else {
            remote.push((app, raw));
        }
    }
    // batch-decode in block order: the image is consumed sequentially
    local.sort_unstable_by_key(|&(_, raw)| DPtr::from_raw(raw).offset());
    let mut image = vec![0u8; ctx.win_len_bytes(WIN_DATA)];
    ctx.get_bytes(WIN_DATA, me, 0, &mut image);
    let mut holders: Vec<(u64, DPtr, Holder)> = Vec::with_capacity(mine.len());
    let mut scanned_bytes = 0u64;
    for (app, raw) in local {
        let vid = DPtr::from_raw(raw);
        let (bytes, _) = hio::read_chain_bytes(cfg, &image, vid)
            .unwrap_or_else(|| panic!("scan sweep: holder of app {app} at {vid} undecodable"));
        scanned_bytes += bytes.len() as u64;
        let h = Holder::try_decode(&bytes)
            .unwrap_or_else(|| panic!("scan sweep: holder of app {app} at {vid} corrupt"));
        holders.push((app, vid, h));
    }
    // remote stragglers (an app partition that does not follow
    // ownership): pipelined multi-chain fetch, one nb-batch per level
    if !remote.is_empty() {
        let primaries: Vec<DPtr> = remote.iter().map(|&(_, raw)| DPtr::from_raw(raw)).collect();
        let fetched = hio::read_chains(ctx, cfg, &primaries);
        for ((app, raw), res) in remote.into_iter().zip(fetched) {
            let vid = DPtr::from_raw(raw);
            let (bytes, _) =
                res.unwrap_or_else(|e| panic!("scan sweep: remote holder of app {app}: {e}"));
            scanned_bytes += bytes.len() as u64;
            let h = Holder::try_decode(&bytes)
                .unwrap_or_else(|| panic!("scan sweep: remote holder of app {app} corrupt"));
            holders.push((app, vid, h));
        }
    }
    ctx.charge_cpu(scanned_bytes / 8 + holders.len() as u64 + 1);
    ctx.record_scan_build(holders.len() as u64, scanned_bytes);

    // -- assemble the CSR (rows sorted by app id) ------------------------
    holders.sort_unstable_by_key(|&(app, _, _)| app);
    let rows: Vec<AdjRow> = holders
        .into_iter()
        .map(|(app, vid, h)| {
            let (out, any) = adjacency_of(&h);
            (app, vid, out, any)
        })
        .collect();
    let mut view = CsrView {
        stamps,
        marks,
        unlogged_at_build,
        ..CsrView::default()
    };
    view.push_rows(rows);
    ctx.barrier();
    Rc::new(view)
}

/// Revalidate a cached view with one topology-epoch snapshot: `true`
/// when no source rank's word moved since the build.
pub(crate) fn revalidate(eng: &GdaRank, view: &CsrView) -> bool {
    view.stamps
        .iter()
        .all(|&(r, word)| eng.topology_epoch(r) == word)
}

/// Try to delta-patch a stale view from the redo-log tails. Succeeds
/// only when the database is durable, no checkpoint rotated the
/// segments since the build, every topology-relevant tail record is a
/// vertex upsert of a row already in the view, and the delta is small
/// ([`PATCH_MAX_FRACTION`]). Returns the patched view (with fresh
/// stamps and marks) or `None` — the caller rebuilds.
pub(crate) fn try_patch(eng: &GdaRank, view: &CsrView) -> Option<CsrView> {
    let store = eng.persistence()?;
    let marks = view.marks.as_ref()?;
    if store.log_errors() > 0 || store.unlogged_mutations() != view.unlogged_at_build {
        // a dropped append, or an unlogged mutation batch (a bulk
        // load), since the marks were taken: the tail is incomplete —
        // the change is visible in memory but not in the log, so only
        // a full sweep can be trusted
        return None;
    }
    let ctx = eng.ctx();
    // fresh stamps first (same observe-before-read ordering as a build)
    let stamps: Vec<(usize, u64)> = view
        .stamps
        .iter()
        .map(|&(r, _)| (r, eng.topology_epoch(r)))
        .collect();
    let new_marks: Vec<(u64, u64)> = (0..eng.nranks()).map(|r| store.log_mark(r)).collect();
    let my_ranks: FxHashSet<usize> = view.stamps.iter().map(|&(r, _)| r).collect();
    // collect the tail records that touch this view's source ranks:
    // any rank's log may carry commits against our windows
    let mut touched: FxHashMap<u64, (u64, Vec<u8>)> = FxHashMap::default();
    for (r, &mark) in marks.iter().enumerate() {
        let records = store.read_log_tail(r, mark)?;
        for rec in records {
            match rec {
                RedoRecord::Upsert {
                    primary,
                    is_edge,
                    version,
                    bytes,
                    ..
                } => {
                    if is_edge || !my_ranks.contains(&DPtr::from_raw(primary).rank()) {
                        continue; // heavy-edge holders carry no CSR rows
                    }
                    if !view.index_of.contains_key(&primary) {
                        return None; // new vertex: membership changed
                    }
                    let slot = touched.entry(primary).or_insert((0, Vec::new()));
                    if version >= slot.0 {
                        *slot = (version, bytes);
                    }
                }
                RedoRecord::Delete {
                    primary, is_edge, ..
                } => {
                    if !is_edge && my_ranks.contains(&DPtr::from_raw(primary).rank()) {
                        return None; // membership changed
                    }
                }
            }
        }
    }
    if touched.len() as f64 > PATCH_MAX_FRACTION * view.len().max(8) as f64 {
        return None; // not cheap: a sweep amortizes better
    }
    // decode the replacement rows, then materialize one fresh set of
    // CSR arrays with the patched rows folded in: accessors stay flat
    // slice lookups and repeated patches never accumulate state
    let mut replaced: FxHashMap<usize, (Vec<ScanEdge>, Vec<ScanEdge>)> = FxHashMap::default();
    let mut bytes_total = 0u64;
    for (primary, (_, bytes)) in touched {
        let row = view.index_of[&primary];
        let h = Holder::try_decode(&bytes)?;
        if h.app_id != view.apps[row] {
            return None; // block reused by another object: not patchable
        }
        bytes_total += bytes.len() as u64;
        replaced.insert(row, adjacency_of(&h));
    }
    let n_rows = replaced.len() as u64;
    let rows: Vec<AdjRow> = (0..view.len())
        .map(|i| {
            let (out, any) = match replaced.remove(&i) {
                Some(r) => r,
                None => (
                    view.out(i)
                        .iter()
                        .copied()
                        .zip(view.out_labels(i).iter().copied())
                        .collect(),
                    view.any(i)
                        .iter()
                        .copied()
                        .zip(view.any_labels(i).iter().copied())
                        .collect(),
                ),
            };
            (view.apps[i], view.vids[i], out, any)
        })
        .collect();
    let mut patched = CsrView {
        stamps,
        marks: Some(new_marks),
        unlogged_at_build: view.unlogged_at_build,
        ..CsrView::default()
    };
    patched.push_rows(rows);
    ctx.record_scan_patch(n_rows, bytes_total);
    ctx.charge_cpu(bytes_total / 8 + n_rows + 1);
    Some(patched)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::GdaConfig;
    use crate::db::GdaDb;
    use crate::persist::PersistOptions;
    use gdi::{AccessMode, AppVertexId, LabelId};
    use rma::CostModel;

    /// Build the tx-based oracle view over `apps` (collective).
    fn oracle_view(eng: &GdaRank, apps: &[u64]) -> CsrView {
        let tx = eng.begin_collective(AccessMode::ReadOnly);
        let mut vids = Vec::new();
        let mut out = Vec::new();
        let mut any = Vec::new();
        for &app in apps {
            let vid = tx.translate_vertex_id(AppVertexId(app)).unwrap();
            vids.push(vid);
            out.push(
                tx.neighbors(vid, EdgeOrientation::Outgoing, None)
                    .unwrap()
                    .into_iter()
                    .map(|t| (t, 0u32))
                    .collect(),
            );
            any.push(
                tx.neighbors(vid, EdgeOrientation::Any, None)
                    .unwrap()
                    .into_iter()
                    .map(|t| (t, 0u32))
                    .collect(),
            );
        }
        tx.commit().unwrap();
        CsrView::from_adjacency(apps.to_vec(), vids, out, any)
    }

    /// Adjacency-only equality (labels ignored — the oracle helper
    /// stores zeros).
    fn adjacency_eq(a: &CsrView, b: &CsrView) -> bool {
        a.apps == b.apps
            && a.vids == b.vids
            && (0..a.len()).all(|i| a.out(i) == b.out(i) && a.any(i) == b.any(i))
    }

    /// A small deterministic cross-rank graph: ring + chords, built
    /// through ordinary transactions by rank 0.
    fn build_graph(eng: &GdaRank, n: u64) {
        if eng.rank() == 0 {
            let tx = eng.begin(AccessMode::ReadWrite);
            let vids: Vec<DPtr> = (0..n)
                .map(|app| tx.create_vertex(AppVertexId(app)).unwrap())
                .collect();
            for i in 0..n {
                tx.add_edge(vids[i as usize], vids[((i + 1) % n) as usize], None, true)
                    .unwrap();
                if i % 3 == 0 {
                    tx.add_edge(vids[i as usize], vids[((i + 5) % n) as usize], None, false)
                        .unwrap();
                }
            }
            tx.commit().unwrap();
        }
        eng.ctx().barrier();
    }

    #[test]
    fn local_all_sweep_matches_tx_oracle() {
        let cfg = GdaConfig::tiny();
        let (db, fabric) = GdaDb::with_fabric("scan-eq", cfg, 3, CostModel::default());
        fabric.run(|ctx| {
            let eng = db.attach(ctx);
            eng.init_collective();
            build_graph(&eng, 24);
            let scan = build_view(&eng, ScanPartition::LocalAll);
            // this rank's round-robin partition, ascending
            let apps: Vec<u64> = (0..24)
                .filter(|a| crate::rankmap::vertex_owner(AppVertexId(*a), 3) == ctx.rank())
                .collect();
            assert_eq!(scan.apps, apps);
            let want = oracle_view(&eng, &apps);
            assert!(
                adjacency_eq(&scan, &want),
                "scan view diverges from tx view"
            );
            // degree sum across ranks covers every record
            let total = ctx.allreduce_sum_u64(scan.out_edges() as u64);
            let want_total = ctx.allreduce_sum_u64(want.out_edges() as u64);
            assert_eq!(total, want_total);
        });
    }

    #[test]
    fn apps_partition_fetches_remote_primaries() {
        let cfg = GdaConfig::tiny();
        let (db, fabric) = GdaDb::with_fabric("scan-apps", cfg, 2, CostModel::default());
        fabric.run(|ctx| {
            let eng = db.attach(ctx);
            eng.init_collective();
            build_graph(&eng, 16);
            // deliberately *not* the ownership partition: rank 0 takes
            // the first half of the id space, rank 1 the second — half
            // of each rank's primaries are remote
            let apps: Vec<u64> = if ctx.rank() == 0 {
                (0..8).collect()
            } else {
                (8..16).collect()
            };
            let scan = build_view(&eng, ScanPartition::Apps(&apps));
            let want = oracle_view(&eng, &apps);
            assert!(adjacency_eq(&scan, &want));
        });
    }

    #[test]
    fn olap_view_reuses_until_topology_changes() {
        let cfg = GdaConfig::tiny();
        let (db, fabric) = GdaDb::with_fabric("scan-epoch", cfg, 2, CostModel::default());
        fabric.run(|ctx| {
            let eng = db.attach(ctx);
            eng.init_collective();
            build_graph(&eng, 12);
            let v1 = eng.olap_view();
            let v2 = eng.olap_view();
            assert!(
                Rc::ptr_eq(&v1, &v2),
                "unchanged epoch must reuse the mirror"
            );
            // a property write must NOT invalidate (topology unchanged)
            if ctx.rank() == 0 {
                eng.create_label("L").unwrap();
            }
            ctx.barrier();
            eng.refresh_meta();
            let lbl = eng.meta().label_from_name("L").unwrap();
            if ctx.rank() == 0 {
                let tx = eng.begin(AccessMode::ReadWrite);
                let v = tx.translate_vertex_id(AppVertexId(3)).unwrap();
                tx.add_label(v, lbl).unwrap();
                tx.commit().unwrap();
            }
            ctx.barrier();
            let v3 = eng.olap_view();
            assert!(
                Rc::ptr_eq(&v2, &v3),
                "vertex-label/property writes must not retire the view"
            );
            // an edge mutation MUST invalidate, and the rebuilt view
            // must carry the new edge — a stale read is impossible
            if ctx.rank() == 0 {
                let tx = eng.begin(AccessMode::ReadWrite);
                let a = tx.translate_vertex_id(AppVertexId(2)).unwrap();
                let b = tx.translate_vertex_id(AppVertexId(7)).unwrap();
                tx.add_edge(a, b, Some(lbl), true).unwrap();
                tx.commit().unwrap();
            }
            ctx.barrier();
            let v4 = eng.olap_view();
            assert!(!Rc::ptr_eq(&v3, &v4), "edge mutation must invalidate");
            let apps: Vec<u64> = v4.apps.clone();
            let want = oracle_view(&eng, &apps);
            assert!(adjacency_eq(&v4, &want));
            // the new edge is labeled — visible through the scan labels
            if let Some(&row) = v4.app_index.get(&2) {
                assert!(v4.out_labels(row).contains(&lbl.0));
            }
        });
    }

    #[test]
    fn durable_view_patches_from_redo_tail() {
        let dir = crate::persist::tests::TestDir::new("scan-patch");
        let cfg = GdaConfig::tiny();
        let (db, fabric) = GdaDb::with_fabric("scan-patch", cfg, 2, CostModel::default());
        db.enable_persistence(PersistOptions::new(&dir.0)).unwrap();
        fabric.run(|ctx| {
            let eng = db.attach(ctx);
            eng.init_collective();
            build_graph(&eng, 12);
            let v1 = eng.olap_view();
            // one small cross-rank edge mutation: both owners' epochs
            // move, but the redo tail is two vertex upserts — patchable
            if ctx.rank() == 0 {
                let tx = eng.begin(AccessMode::ReadWrite);
                let a = tx.translate_vertex_id(AppVertexId(0)).unwrap();
                let b = tx.translate_vertex_id(AppVertexId(7)).unwrap();
                tx.add_edge(a, b, None, true).unwrap();
                tx.commit().unwrap();
            }
            ctx.barrier();
            let v2 = eng.olap_view();
            assert!(!Rc::ptr_eq(&v1, &v2));
            let want = oracle_view(&eng, &v2.apps.clone());
            assert!(adjacency_eq(&v2, &want), "patched view diverges");
            let touched = ctx.stats_snapshot();
            // at least the two endpoint owners patched instead of
            // re-sweeping (builds: only the initial one)
            let patches = ctx.allreduce_sum_u64(touched.scan_patches);
            let builds = ctx.allreduce_sum_u64(touched.scan_builds);
            assert!(patches >= 1, "no delta patch happened");
            assert_eq!(builds, 2, "a patchable delta must not re-sweep");
            // a vertex deletion changes membership: full rebuild
            if ctx.rank() == 0 {
                let tx = eng.begin(AccessMode::ReadWrite);
                let v = tx.translate_vertex_id(AppVertexId(5)).unwrap();
                tx.delete_vertex(v).unwrap();
                tx.commit().unwrap();
            }
            ctx.barrier();
            let v3 = eng.olap_view();
            assert!(
                !v3.app_index.contains_key(&5),
                "deleted vertex still in view"
            );
            let want = oracle_view(&eng, &v3.apps.clone());
            assert!(adjacency_eq(&v3, &want));
        });
    }

    #[test]
    fn index_partition_matches_postings() {
        let cfg = GdaConfig::tiny();
        let (db, fabric) = GdaDb::with_fabric("scan-ix", cfg, 2, CostModel::default());
        fabric.run(|ctx| {
            let eng = db.attach(ctx);
            eng.init_collective();
            if ctx.rank() == 0 {
                eng.create_index("all", Vec::new(), Vec::new()).unwrap();
            }
            ctx.barrier();
            let ix = eng.all_indexes()[0].id;
            build_graph(&eng, 10);
            let scan = build_view(&eng, ScanPartition::Index(ix));
            let mut postings = eng.local_index_vertices(ix);
            postings.sort_by_key(|p| p.app_id);
            assert_eq!(
                scan.apps,
                postings.iter().map(|p| p.app_id.0).collect::<Vec<_>>()
            );
            let want = oracle_view(&eng, &scan.apps.clone());
            assert!(adjacency_eq(&scan, &want));
        });
    }

    /// Regression: on a **durable** database a bulk load bumps the
    /// topology epoch but appends nothing to the redo log — the delta
    /// patch must refuse the (empty) tail and rebuild, or every later
    /// OLAP job would silently miss the loaded data forever.
    #[test]
    fn durable_bulk_load_forces_rebuild_not_patch() {
        let dir = crate::persist::tests::TestDir::new("scan-bulk-durable");
        let cfg = GdaConfig::tiny();
        let (db, fabric) = GdaDb::with_fabric("scan-bd", cfg, 2, CostModel::default());
        db.enable_persistence(PersistOptions::new(&dir.0)).unwrap();
        fabric.run(|ctx| {
            let eng = db.attach(ctx);
            eng.init_collective();
            build_graph(&eng, 8);
            let v1 = eng.olap_view();
            let vs = if ctx.rank() == 0 {
                vec![
                    crate::bulk::VertexSpec::new(100),
                    crate::bulk::VertexSpec::new(101),
                ]
            } else {
                Vec::new()
            };
            let es = if ctx.rank() == 0 {
                vec![crate::bulk::EdgeSpec {
                    from: AppVertexId(100),
                    to: AppVertexId(101),
                    label: 0,
                    directed: true,
                }]
            } else {
                Vec::new()
            };
            eng.bulk_load(vs, es).unwrap();
            let v2 = eng.olap_view();
            assert!(!Rc::ptr_eq(&v1, &v2), "bulk load must invalidate views");
            // the loaded vertices must be visible (an empty-tail patch
            // would have re-stamped the old rows)
            let total: u64 = ctx.allreduce_sum_u64(v2.len() as u64);
            assert_eq!(total, 10, "bulk-loaded vertices missing from the view");
            let want = oracle_view(&eng, &v2.apps.clone());
            assert!(adjacency_eq(&v2, &want));
            // and it was a rebuild, not a patch
            assert_eq!(ctx.stats_snapshot().scan_patches, 0);
        });
    }

    #[test]
    fn bulk_load_bumps_topology_epoch() {
        let cfg = GdaConfig::tiny();
        let (db, fabric) = GdaDb::with_fabric("scan-bulk", cfg, 2, CostModel::zero());
        fabric.run(|ctx| {
            let eng = db.attach(ctx);
            eng.init_collective();
            build_graph(&eng, 8);
            let v1 = eng.olap_view();
            // a bulk load after the view must retire it
            let vs = if ctx.rank() == 0 {
                vec![
                    crate::bulk::VertexSpec::new(100),
                    crate::bulk::VertexSpec::new(101),
                ]
            } else {
                Vec::new()
            };
            let es = if ctx.rank() == 0 {
                vec![crate::bulk::EdgeSpec {
                    from: AppVertexId(100),
                    to: AppVertexId(101),
                    label: 0,
                    directed: true,
                }]
            } else {
                Vec::new()
            };
            eng.bulk_load(vs, es).unwrap();
            let v2 = eng.olap_view();
            assert!(!Rc::ptr_eq(&v1, &v2), "bulk load must invalidate views");
            let total: u64 = ctx.allreduce_sum_u64(v2.len() as u64);
            assert_eq!(total, 10);
            let _ = LabelId(0); // silence unused-import pattern in cfg permutations
        });
    }
}

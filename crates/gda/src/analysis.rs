//! Work–depth performance guarantees of GDA routines (§5.9).
//!
//! Every GDA routine is supported by a theoretical performance statement
//! that is independent of the underlying hardware, expressed in the
//! work–depth model: *work* = total operations, *depth* = longest chain of
//! dependent operations. The table below records the bounds of this
//! implementation, with the quantities:
//!
//! * `b` — number of blocks of the accessed holder (1 for vertices that
//!   fit one block, the common case the layout optimizes for),
//! * `d` — degree of the accessed vertex,
//! * `t` — objects touched by a transaction,
//! * `x` — metadata items modified,
//! * `P` — number of processes,
//! * `n_I` — size of the local index partition.
//!
//! Lock-free retry loops (block acquire, DHT ops) have *expected* O(1)
//! work under bounded contention; they are flagged `amortized`.

/// One routine's bounds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkDepth {
    /// The GDI routine the bounds apply to.
    pub routine: &'static str,
    /// Asymptotic work bound (as printed in the paper's table).
    pub work: &'static str,
    /// Asymptotic depth bound.
    pub depth: &'static str,
    /// Expected/amortized (lock-free retry loops) vs worst-case.
    pub amortized: bool,
}

/// The per-routine performance table (§5.9).
pub const WORK_DEPTH: &[WorkDepth] = &[
    WorkDepth {
        routine: "acquireBlock",
        work: "O(1)",
        depth: "O(1)",
        amortized: true,
    },
    WorkDepth {
        routine: "releaseBlock",
        work: "O(1)",
        depth: "O(1)",
        amortized: true,
    },
    WorkDepth {
        routine: "DHT insert",
        work: "O(1)",
        depth: "O(1)",
        amortized: true,
    },
    WorkDepth {
        routine: "DHT lookup",
        work: "O(1)",
        depth: "O(1)",
        amortized: true,
    },
    WorkDepth {
        routine: "DHT delete",
        work: "O(1)",
        depth: "O(1)",
        amortized: true,
    },
    WorkDepth {
        routine: "TranslateVertexID",
        work: "O(1)",
        depth: "O(1)",
        amortized: true,
    },
    WorkDepth {
        routine: "AssociateVertex (fetch)",
        work: "O(b)",
        depth: "O(b)",
        amortized: false,
    },
    WorkDepth {
        routine: "CreateVertex",
        work: "O(1)",
        depth: "O(1)",
        amortized: true,
    },
    WorkDepth {
        routine: "DeleteVertex",
        work: "O(d·b)",
        depth: "O(b)",
        amortized: false,
    },
    WorkDepth {
        routine: "Add/RemoveLabel (cached)",
        work: "O(1)",
        depth: "O(1)",
        amortized: false,
    },
    WorkDepth {
        routine: "Add/Update/RemoveProperty (cached)",
        work: "O(1)",
        depth: "O(1)",
        amortized: false,
    },
    WorkDepth {
        routine: "GetEdgesOfVertex (cached)",
        work: "O(d)",
        depth: "O(1)",
        amortized: false,
    },
    WorkDepth {
        routine: "CreateEdge",
        work: "O(b)",
        depth: "O(b)",
        amortized: false,
    },
    WorkDepth {
        routine: "DeleteEdge",
        work: "O(b+d)",
        depth: "O(b)",
        amortized: false,
    },
    WorkDepth {
        routine: "Lock acquire/release",
        work: "O(1)",
        depth: "O(1)",
        amortized: true,
    },
    WorkDepth {
        routine: "Commit (local tx)",
        work: "O(t·b)",
        depth: "O(b)",
        amortized: false,
    },
    WorkDepth {
        routine: "Abort",
        work: "O(t)",
        depth: "O(1)",
        amortized: false,
    },
    WorkDepth {
        routine: "Start/CloseCollectiveTransaction",
        work: "O(P)",
        depth: "O(log P)",
        amortized: false,
    },
    WorkDepth {
        routine: "CreateLabel / CreatePropertyType",
        work: "O(x)",
        depth: "O(x)",
        amortized: false,
    },
    WorkDepth {
        routine: "GetLocalVerticesOfIndex",
        work: "O(n_I)",
        depth: "O(1)",
        amortized: false,
    },
    WorkDepth {
        routine: "BulkLoad",
        work: "O((n+m)/P)",
        depth: "O(log P)",
        amortized: true,
    },
];

/// Look up the bounds of one routine.
pub fn work_depth(routine: &str) -> Option<&'static WorkDepth> {
    WORK_DEPTH.iter().find(|w| w.routine == routine)
}

/// Render the table as aligned markdown (used by documentation and the
/// bench harness).
pub fn render_markdown() -> String {
    let mut s = String::from("| routine | work | depth | bound |\n|---|---|---|---|\n");
    for w in WORK_DEPTH {
        s.push_str(&format!(
            "| {} | {} | {} | {} |\n",
            w.routine,
            w.work,
            w.depth,
            if w.amortized {
                "expected"
            } else {
                "worst-case"
            }
        ));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn core_routines_covered() {
        for r in [
            "acquireBlock",
            "DHT insert",
            "DHT lookup",
            "DHT delete",
            "TranslateVertexID",
            "CreateVertex",
            "Commit (local tx)",
            "BulkLoad",
        ] {
            assert!(work_depth(r).is_some(), "missing bound for {r}");
        }
    }

    #[test]
    fn majority_constant_work() {
        // §5.9: "the majority of GDA routines … come with constant O(1)
        // work and depth"
        let constant = WORK_DEPTH
            .iter()
            .filter(|w| w.work == "O(1)" && w.depth == "O(1)")
            .count();
        assert!(constant * 2 > WORK_DEPTH.len() - 4, "constant = {constant}");
    }

    #[test]
    fn markdown_renders_every_routine() {
        let md = render_markdown();
        for w in WORK_DEPTH {
            assert!(md.contains(w.routine));
        }
    }

    #[test]
    fn unknown_routine_is_none() {
        assert!(work_depth("Frobnicate").is_none());
    }
}

//! Explicit indexes (§3.6) with per-rank partitions.
//!
//! GDI exposes user-managed indexes over vertices: an index is associated
//! with a set of labels (and optionally property types); queries retrieve
//! the **local** partition of an index (`GDI_GetLocalVerticesOfIndex`) —
//! the natural building block for collective OLAP/OLSP scans, where every
//! rank processes its own shard (Listings 2 and 3).
//!
//! Postings live on the rank that owns the vertex (its primary block's
//! rank). Index maintenance happens at transaction commit and is only
//! *eventually consistent* (§3.8): committed membership changes become
//! visible to index scans that start afterwards.

use parking_lot::{Mutex, RwLock};
use rustc_hash::FxHashMap;

use gdi::{AppVertexId, Constraint, GdiError, GdiResult, LabelId, PTypeId};

use crate::dptr::DPtr;
use crate::holder::Holder;

/// Identifier of an explicit index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct IndexId(pub u32);

/// Definition of an explicit index.
#[derive(Debug, Clone, PartialEq)]
pub struct IndexDef {
    /// The index id.
    pub id: IndexId,
    /// Unique index name.
    pub name: String,
    /// Labels whose carriers are indexed. Empty = index **all** vertices.
    pub labels: Vec<LabelId>,
    /// Property types associated for acceleration hints
    /// (`GDI_AddPropertyTypeToIndex`); membership is label-driven.
    pub ptypes: Vec<PTypeId>,
}

impl IndexDef {
    /// Does a vertex with these labels belong to the index?
    pub fn matches(&self, labels: &[LabelId]) -> bool {
        self.labels.is_empty() || self.labels.iter().any(|l| labels.contains(l))
    }
}

/// A posting: one indexed vertex on its owner rank.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Posting {
    /// Internal id of the indexed vertex.
    pub vertex: DPtr,
    /// Its application id.
    pub app_id: AppVertexId,
}

type RankPostings = FxHashMap<IndexId, FxHashMap<u64, AppVertexId>>;

/// Shared index state of one database.
#[derive(Debug)]
pub struct IndexShared {
    defs: RwLock<Vec<IndexDef>>,
    next_id: Mutex<u32>,
    /// `postings[rank]`: that rank's partitions of every index.
    postings: Vec<Mutex<RankPostings>>,
}

impl IndexShared {
    /// Empty index state for a fabric of `nranks` ranks.
    pub fn new(nranks: usize) -> Self {
        Self {
            defs: RwLock::new(Vec::new()),
            next_id: Mutex::new(1),
            postings: (0..nranks)
                .map(|_| Mutex::new(FxHashMap::default()))
                .collect(),
        }
    }

    /// `GDI_CreateIndex`.
    pub fn create(
        &self,
        name: &str,
        labels: Vec<LabelId>,
        ptypes: Vec<PTypeId>,
    ) -> GdiResult<IndexId> {
        let mut defs = self.defs.write();
        if defs.iter().any(|d| d.name == name) {
            return Err(GdiError::AlreadyExists("index"));
        }
        let mut next = self.next_id.lock();
        let id = IndexId(*next);
        *next += 1;
        defs.push(IndexDef {
            id,
            name: name.to_string(),
            labels,
            ptypes,
        });
        Ok(id)
    }

    /// `GDI_DeleteIndex`.
    pub fn delete(&self, id: IndexId) -> GdiResult<()> {
        let mut defs = self.defs.write();
        let before = defs.len();
        defs.retain(|d| d.id != id);
        if defs.len() == before {
            return Err(GdiError::NotFound("index"));
        }
        for p in &self.postings {
            p.lock().remove(&id);
        }
        Ok(())
    }

    /// `GDI_GetAllIndexesOfDatabase`.
    pub fn all(&self) -> Vec<IndexDef> {
        self.defs.read().clone()
    }

    /// Definition of one index.
    pub fn def(&self, id: IndexId) -> GdiResult<IndexDef> {
        self.defs
            .read()
            .iter()
            .find(|d| d.id == id)
            .cloned()
            .ok_or(GdiError::NotFound("index"))
    }

    /// `GDI_AddLabelToIndex` / `GDI_RemoveLabelFromIndex`.
    pub fn add_label(&self, id: IndexId, label: LabelId) -> GdiResult<()> {
        let mut defs = self.defs.write();
        let d = defs
            .iter_mut()
            .find(|d| d.id == id)
            .ok_or(GdiError::NotFound("index"))?;
        if !d.labels.contains(&label) {
            d.labels.push(label);
        }
        Ok(())
    }

    /// `GDI_RemoveLabelFromIndex`.
    pub fn remove_label(&self, id: IndexId, label: LabelId) -> GdiResult<()> {
        let mut defs = self.defs.write();
        let d = defs
            .iter_mut()
            .find(|d| d.id == id)
            .ok_or(GdiError::NotFound("index"))?;
        d.labels.retain(|l| *l != label);
        Ok(())
    }

    /// Recompute the postings of one vertex against every index, given its
    /// (possibly new) labels. `None` labels = vertex deleted.
    pub fn reindex_vertex(&self, vertex: DPtr, app_id: AppVertexId, labels: Option<&[LabelId]>) {
        let defs = self.defs.read();
        let mut rank = self.postings[vertex.rank()].lock();
        for d in defs.iter() {
            let belongs = labels.map(|ls| d.matches(ls)).unwrap_or(false);
            let part = rank.entry(d.id).or_default();
            if belongs {
                part.insert(vertex.raw(), app_id);
            } else {
                part.remove(&vertex.raw());
            }
        }
    }

    /// The local partition of an index on `rank`
    /// (`GDI_GetLocalVerticesOfIndex`), unfiltered.
    pub fn local_vertices(&self, rank: usize, id: IndexId) -> Vec<Posting> {
        let guard = self.postings[rank].lock();
        guard
            .get(&id)
            .map(|m| {
                let mut v: Vec<Posting> = m
                    .iter()
                    .map(|(&raw, &app)| Posting {
                        vertex: DPtr::from_raw(raw),
                        app_id: app,
                    })
                    .collect();
                v.sort_by_key(|p| p.vertex);
                v
            })
            .unwrap_or_default()
    }

    /// Export the index definitions plus the id allocator (persistence
    /// support: the manifest half of a durable snapshot).
    pub fn export_defs(&self) -> (Vec<IndexDef>, u32) {
        (self.defs.read().clone(), *self.next_id.lock())
    }

    /// Export one rank's postings of every index, sorted for stable
    /// snapshot bytes (persistence support: the per-rank half).
    pub fn export_rank(&self, rank: usize) -> Vec<(IndexId, Vec<Posting>)> {
        let guard = self.postings[rank].lock();
        let mut out: Vec<(IndexId, Vec<Posting>)> = guard
            .iter()
            .map(|(&id, m)| {
                let mut v: Vec<Posting> = m
                    .iter()
                    .map(|(&raw, &app)| Posting {
                        vertex: DPtr::from_raw(raw),
                        app_id: app,
                    })
                    .collect();
                v.sort_by_key(|p| p.vertex);
                (id, v)
            })
            .collect();
        out.sort_by_key(|(id, _)| *id);
        out
    }

    /// Rebuild shared index state from exported parts (recovery).
    pub fn from_parts(nranks: usize, defs: Vec<IndexDef>, next_id: u32) -> Self {
        Self {
            defs: RwLock::new(defs),
            next_id: Mutex::new(next_id.max(1)),
            postings: (0..nranks)
                .map(|_| Mutex::new(FxHashMap::default()))
                .collect(),
        }
    }

    /// Install one rank's exported postings (recovery; replaces that
    /// rank's partitions wholesale).
    pub fn import_rank(&self, rank: usize, parts: Vec<(IndexId, Vec<Posting>)>) {
        let mut guard = self.postings[rank].lock();
        guard.clear();
        for (id, postings) in parts {
            let m = guard.entry(id).or_default();
            for p in postings {
                m.insert(p.vertex.raw(), p.app_id);
            }
        }
    }

    /// Look up a vertex by app id within an index partition — the fast path
    /// behind `GDI_TranslateVertexID` when an index is available.
    pub fn find_by_app_id(&self, rank: usize, id: IndexId, app: AppVertexId) -> Option<DPtr> {
        let guard = self.postings[rank].lock();
        let part = guard.get(&id)?;
        part.iter()
            .find(|(_, &a)| a == app)
            .map(|(&raw, _)| DPtr::from_raw(raw))
    }
}

/// Evaluate a constraint against a holder (used when scanning an index
/// partition with a filter). Property values are compared raw-decoded; the
/// caller supplies a decode function from p-type to value.
pub fn holder_matches(
    holder: &Holder,
    constraint: &Constraint,
    decode: impl Fn(PTypeId, &[u8]) -> Option<gdi::PropertyValue>,
) -> bool {
    struct View<'a, F> {
        h: &'a Holder,
        decode: F,
    }
    impl<F: Fn(PTypeId, &[u8]) -> Option<gdi::PropertyValue>> gdi::constraint::ElementView
        for View<'_, F>
    {
        fn has_label(&self, label: LabelId) -> bool {
            self.h.has_label(label)
        }
        fn properties(&self, ptype: PTypeId) -> Vec<gdi::PropertyValue> {
            self.h
                .properties_raw(ptype)
                .into_iter()
                .filter_map(|raw| (self.decode)(ptype, raw))
                .collect()
        }
    }
    constraint.eval(&View { h: holder, decode })
}

#[cfg(test)]
mod tests {
    use super::*;
    use gdi::{CmpOp, PropertyValue, Subconstraint};

    fn person() -> LabelId {
        LabelId(10)
    }

    #[test]
    fn create_delete_indexes() {
        let ix = IndexShared::new(2);
        let a = ix.create("people", vec![person()], vec![]).unwrap();
        assert_eq!(
            ix.create("people", vec![], vec![]),
            Err(GdiError::AlreadyExists("index"))
        );
        let b = ix.create("all", vec![], vec![]).unwrap();
        assert_ne!(a, b);
        assert_eq!(ix.all().len(), 2);
        ix.delete(a).unwrap();
        assert_eq!(ix.delete(a), Err(GdiError::NotFound("index")));
        assert_eq!(ix.all().len(), 1);
    }

    #[test]
    fn postings_follow_membership() {
        let ix = IndexShared::new(2);
        let people = ix.create("people", vec![person()], vec![]).unwrap();
        let v0 = DPtr::new(0, 128);
        let v1 = DPtr::new(1, 128);

        ix.reindex_vertex(v0, AppVertexId(100), Some(&[person()]));
        ix.reindex_vertex(v1, AppVertexId(101), Some(&[LabelId(99)]));
        assert_eq!(ix.local_vertices(0, people).len(), 1);
        assert_eq!(ix.local_vertices(1, people).len(), 0);

        // label removed -> vertex drops out
        ix.reindex_vertex(v0, AppVertexId(100), Some(&[]));
        assert!(ix.local_vertices(0, people).is_empty());

        // deletion removes from all indexes
        ix.reindex_vertex(v1, AppVertexId(101), Some(&[person()]));
        assert_eq!(ix.local_vertices(1, people).len(), 1);
        ix.reindex_vertex(v1, AppVertexId(101), None);
        assert!(ix.local_vertices(1, people).is_empty());
    }

    #[test]
    fn empty_label_set_indexes_everything() {
        let ix = IndexShared::new(1);
        let all = ix.create("all", vec![], vec![]).unwrap();
        ix.reindex_vertex(DPtr::new(0, 128), AppVertexId(1), Some(&[]));
        ix.reindex_vertex(DPtr::new(0, 256), AppVertexId(2), Some(&[person()]));
        assert_eq!(ix.local_vertices(0, all).len(), 2);
    }

    #[test]
    fn find_by_app_id_works() {
        let ix = IndexShared::new(1);
        let all = ix.create("all", vec![], vec![]).unwrap();
        let v = DPtr::new(0, 384);
        ix.reindex_vertex(v, AppVertexId(42), Some(&[]));
        assert_eq!(ix.find_by_app_id(0, all, AppVertexId(42)), Some(v));
        assert_eq!(ix.find_by_app_id(0, all, AppVertexId(43)), None);
    }

    #[test]
    fn index_def_matching() {
        let d = IndexDef {
            id: IndexId(1),
            name: "x".into(),
            labels: vec![LabelId(1), LabelId(2)],
            ptypes: vec![],
        };
        assert!(d.matches(&[LabelId(2)]));
        assert!(d.matches(&[LabelId(1), LabelId(9)]));
        assert!(!d.matches(&[LabelId(9)]));
        assert!(!d.matches(&[]));
    }

    #[test]
    fn mutate_index_labels() {
        let ix = IndexShared::new(1);
        let id = ix.create("x", vec![LabelId(1)], vec![]).unwrap();
        ix.add_label(id, LabelId(2)).unwrap();
        ix.add_label(id, LabelId(2)).unwrap(); // idempotent
        assert_eq!(ix.def(id).unwrap().labels, vec![LabelId(1), LabelId(2)]);
        ix.remove_label(id, LabelId(1)).unwrap();
        assert_eq!(ix.def(id).unwrap().labels, vec![LabelId(2)]);
        assert_eq!(
            ix.add_label(IndexId(999), LabelId(1)),
            Err(GdiError::NotFound("index"))
        );
    }

    #[test]
    fn holder_constraint_matching() {
        let mut h = Holder::new_vertex(1);
        h.add_label(person());
        h.add_property(PTypeId(3), 35u64.to_le_bytes().to_vec());
        let c = Constraint::from_sub(Subconstraint::new().with_label(person()).with_prop(
            PTypeId(3),
            CmpOp::Gt,
            PropertyValue::U64(30),
        ));
        let decode = |_pt: PTypeId, raw: &[u8]| {
            Some(PropertyValue::U64(u64::from_le_bytes(raw.try_into().ok()?)))
        };
        assert!(holder_matches(&h, &c, decode));
        let c2 = Constraint::from_sub(Subconstraint::new().with_prop(
            PTypeId(3),
            CmpOp::Gt,
            PropertyValue::U64(40),
        ));
        assert!(!holder_matches(&h, &c2, decode));
    }
}

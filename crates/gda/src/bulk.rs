//! Collective bulk data ingestion (`GDI_BulkLoadVertices` /
//! `GDI_BulkLoadEdges`, the BULK workload class of §2/Table 2).
//!
//! Bulk load is a collective: every rank contributes a batch of vertex and
//! edge specifications; the batches are routed to the round-robin owner
//! ranks with all-to-all collectives, materialized into holders locally,
//! registered in the internal DHT and the explicit indexes, and written to
//! blocks — without per-object transactions or locks. Like MPI-IO
//! collective writes, the operation assumes the database is quiescent
//! (no concurrent transactions), which is what makes it so much faster
//! than transactional inserts for massive ingestion.

use rustc_hash::FxHashMap;

use gdi::{AppVertexId, Direction, GdiError, GdiResult, LabelId, PTypeId, PropertyValue};

use crate::db::GdaRank;
use crate::dptr::{owner_rank, DPtr};
use crate::hio;
use crate::holder::{EdgeRecord, Holder};

/// Specification of one vertex to ingest.
#[derive(Debug, Clone, PartialEq)]
pub struct VertexSpec {
    /// The application vertex id.
    pub app: AppVertexId,
    /// Labels to attach.
    pub labels: Vec<LabelId>,
    /// Property entries to attach.
    pub props: Vec<(PTypeId, PropertyValue)>,
}

impl VertexSpec {
    /// A bare vertex with the given application id.
    pub fn new(app: u64) -> Self {
        Self {
            app: AppVertexId(app),
            labels: Vec::new(),
            props: Vec::new(),
        }
    }

    /// Attach a label (builder).
    pub fn with_label(mut self, l: LabelId) -> Self {
        self.labels.push(l);
        self
    }

    /// Attach a property entry (builder).
    pub fn with_prop(mut self, p: PTypeId, v: PropertyValue) -> Self {
        self.props.push((p, v));
        self
    }
}

/// Specification of one edge to ingest.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EdgeSpec {
    /// Origin application vertex id.
    pub from: AppVertexId,
    /// Target application vertex id.
    pub to: AppVertexId,
    /// Lightweight edge label (0 = unlabeled).
    pub label: u32,
    /// Directed (`from → to`) or undirected.
    pub directed: bool,
}

/// Half-edge routed to one endpoint's owner.
#[derive(Debug, Clone, Copy)]
struct HalfEdge {
    local: AppVertexId,
    remote: AppVertexId,
    label: u32,
    dir: Direction,
}

/// Outcome of a bulk load on this rank.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BulkReport {
    /// Vertices materialized on this rank.
    pub vertices: usize,
    /// Half-edges attached on this rank.
    pub half_edges: usize,
    /// Half-edges dropped because an endpoint app id was unknown.
    pub dangling_edges: usize,
    /// Vertices dropped as duplicates of an existing app id.
    pub duplicate_vertices: usize,
}

impl<'d, 'c, 'f> GdaRank<'d, 'c, 'f> {
    /// Collective bulk ingestion. Every rank passes its share of vertices
    /// and edges (any rank may pass any subset; routing is internal).
    pub fn bulk_load(
        &self,
        vertices: Vec<VertexSpec>,
        edges: Vec<EdgeSpec>,
    ) -> GdiResult<BulkReport> {
        let nranks = self.nranks();
        let me = self.rank();
        let mut report = BulkReport::default();

        // ---- phase 1: route vertices to their owners -------------------
        let mut vrows: Vec<Vec<VertexSpec>> = vec![Vec::new(); nranks];
        for v in vertices {
            vrows[owner_rank(v.app, nranks)].push(v);
        }
        let received = self.ctx().alltoallv(vrows);

        // ---- phase 2: materialize local holders -------------------------
        let mut local: FxHashMap<u64, (DPtr, Holder)> = FxHashMap::default();
        for spec in received.into_iter().flatten() {
            if local.contains_key(&spec.app.0) || self.dht.lookup(spec.app.0).is_some() {
                report.duplicate_vertices += 1;
                continue;
            }
            let primary = self.bm.acquire(me)?;
            let mut h = Holder::new_vertex(spec.app.0);
            for l in spec.labels {
                h.add_label(l);
            }
            for (p, v) in spec.props {
                h.add_property(p, v.encode());
            }
            // quiet insert: one epoch bump per rank after the loop
            // replaces millions of per-vertex bumps
            self.dht.insert_quiet(spec.app.0, primary.raw())?;
            local.insert(spec.app.0, (primary, h));
            report.vertices += 1;
        }
        // collective: every rank bumps its own word before the barrier,
        // so all cached negative entries are retired machine-wide
        self.dht.bump_own_insert_epoch();
        self.ctx().barrier();

        // ---- phase 3: route half-edges to endpoint owners ----------------
        let mut erows: Vec<Vec<(u64, u64, u32, u8)>> = vec![Vec::new(); nranks];
        for e in edges {
            let (fd, td) = if e.directed {
                (Direction::Out, Direction::In)
            } else {
                (Direction::Undirected, Direction::Undirected)
            };
            erows[owner_rank(e.from, nranks)].push((e.from.0, e.to.0, e.label, fd as u8));
            erows[owner_rank(e.to, nranks)].push((e.to.0, e.from.0, e.label, td as u8));
        }
        let halves = self.ctx().alltoallv(erows);

        // ---- phase 4: attach half-edges ---------------------------------
        for (l, r, lbl, d) in halves.into_iter().flatten() {
            let he = HalfEdge {
                local: AppVertexId(l),
                remote: AppVertexId(r),
                label: lbl,
                dir: Direction::from_u8(d).ok_or(GdiError::InvalidArgument("direction"))?,
            };
            let remote_ptr = if let Some((dp, _)) = local.get(&he.remote.0) {
                Some(*dp)
            } else {
                self.dht.lookup(he.remote.0).map(DPtr::from_raw)
            };
            let Some(remote_ptr) = remote_ptr else {
                report.dangling_edges += 1;
                continue;
            };
            match local.get_mut(&he.local.0) {
                Some((_, h)) => {
                    h.push_edge(EdgeRecord::lightweight(remote_ptr, he.label, he.dir));
                    report.half_edges += 1;
                }
                None => {
                    // endpoint owned here but created in an earlier bulk
                    // load: fetch, modify, rewrite
                    if let Some(raw) = self.dht.lookup(he.local.0) {
                        let dp = DPtr::from_raw(raw);
                        let (bytes, mut blocks) = hio::read_chain(self.ctx(), self.cfg(), dp)?;
                        let mut h = Holder::decode(&bytes);
                        h.push_edge(EdgeRecord::lightweight(remote_ptr, he.label, he.dir));
                        hio::write_chain(self.ctx(), &self.bm, &h.encode(), &mut blocks)?;
                        report.half_edges += 1;
                    } else {
                        report.dangling_edges += 1;
                    }
                }
            }
        }

        // ---- phase 5: write holders + index postings ---------------------
        // under MVCC (or persistence) every published holder needs a
        // nonzero owner-rank version stamp: validated snapshot reads
        // reject a zero seqlock stamp, and replay orders by version.
        // Bulk-loaded holders keep commit_epoch 0 — visible to every
        // snapshot, like any pre-MVCC world state.
        let stamp_holders = self.cfg().mvcc || self.persist_enabled();
        for (app, (primary, h)) in &mut local {
            if stamp_holders {
                h.version = self.next_version_stamp(*primary);
            }
            let mut blocks = vec![*primary];
            hio::write_chain(self.ctx(), &self.bm, &h.encode(), &mut blocks)?;
            self.indexes()
                .reindex_vertex(*primary, AppVertexId(*app), Some(&h.labels()));
        }
        self.ctx().flush(me);
        // one topology-epoch bump per rank closes the bulk load (all
        // writes of a bulk load land in the local window), so cached
        // OLAP scan views revalidate against the new graph; the load is
        // NOT in the redo log, so the store is told the tail is no
        // longer a complete delta (scan views rebuild instead of patch)
        self.bump_topology_epoch(me);
        if let Some(store) = &self.persist {
            store.note_unlogged_mutation();
        }
        self.ctx().barrier();
        Ok(report)
    }
}

//! Replicated graph metadata: labels and property types (§5.8).
//!
//! GDA replicates metadata on every process "for performance reasons …
//! because both L and P are in practice much smaller than n". A label is a
//! (name, integer id) pair; a property type additionally carries entity
//! type, datatype, size type and count (Fig. 3 M).
//!
//! Consistency: GDI only requires **eventual consistency** for metadata
//! (§3.8). We model replication with a shared authoritative store plus a
//! per-rank *snapshot* that is refreshed lazily: metadata mutations bump a
//! global epoch; transactions record the epoch they started at, and any
//! commit that observes a newer epoch while having relied on metadata aborts
//! with `GDI_ERROR_STALE_METADATA` — exactly the "transactions must be able
//! to detect such state and abort accordingly" requirement.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::RwLock;
use rustc_hash::FxHashMap;

use gdi::{
    Datatype, EntityType, GdiError, GdiResult, LabelId, Multiplicity, PTypeId, SizeType,
    FIRST_PTYPE_ID,
};

/// Definition of a label (element of `L`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LabelDef {
    /// The label id.
    pub id: LabelId,
    /// Unique label name.
    pub name: String,
}

/// Definition of a property type (element of `K`), with the §3.7 hints.
#[derive(Debug, Clone, PartialEq)]
pub struct PTypeDef {
    /// The property-type id.
    pub id: PTypeId,
    /// Unique property-type name.
    pub name: String,
    /// Element datatype of the values.
    pub dtype: Datatype,
    /// Which entity kinds may carry it.
    pub entity: EntityType,
    /// Single- or multi-entry per element.
    pub mult: Multiplicity,
    /// Size behaviour of values.
    pub stype: SizeType,
    /// Element count for `Fixed`/`Limited` size types.
    pub count: usize,
}

#[derive(Debug, Default)]
struct MetaInner {
    labels: Vec<LabelDef>,
    ptypes: Vec<PTypeDef>,
    next_label: u32,
    next_ptype: u32,
}

/// The authoritative metadata store of one database, shared by all ranks.
#[derive(Debug)]
pub struct MetaStore {
    inner: RwLock<MetaInner>,
    epoch: AtomicU64,
}

impl Default for MetaStore {
    fn default() -> Self {
        Self::new()
    }
}

impl MetaStore {
    /// An empty catalog.
    pub fn new() -> Self {
        Self {
            inner: RwLock::new(MetaInner {
                labels: Vec::new(),
                ptypes: Vec::new(),
                next_label: 1,
                next_ptype: FIRST_PTYPE_ID,
            }),
            epoch: AtomicU64::new(1),
        }
    }

    /// Current metadata epoch.
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    fn bump(&self) {
        self.epoch.fetch_add(1, Ordering::AcqRel);
    }

    /// Create a label (`GDI_CreateLabel`).
    pub fn create_label(&self, name: &str) -> GdiResult<LabelId> {
        let mut g = self.inner.write();
        if g.labels.iter().any(|l| l.name == name) {
            return Err(GdiError::AlreadyExists("label"));
        }
        let id = LabelId(g.next_label);
        g.next_label += 1;
        g.labels.push(LabelDef {
            id,
            name: name.to_string(),
        });
        drop(g);
        self.bump();
        Ok(id)
    }

    /// Rename a label (`GDI_UpdateLabel`).
    pub fn update_label(&self, id: LabelId, new_name: &str) -> GdiResult<()> {
        let mut g = self.inner.write();
        if g.labels.iter().any(|l| l.name == new_name && l.id != id) {
            return Err(GdiError::AlreadyExists("label name"));
        }
        let l = g
            .labels
            .iter_mut()
            .find(|l| l.id == id)
            .ok_or(GdiError::NotFound("label"))?;
        l.name = new_name.to_string();
        drop(g);
        self.bump();
        Ok(())
    }

    /// Delete a label (`GDI_DeleteLabel`). Graph data still carrying the
    /// label id is unaffected (eventual consistency: readers resolve the id
    /// to "unknown" until converged).
    pub fn delete_label(&self, id: LabelId) -> GdiResult<()> {
        let mut g = self.inner.write();
        let before = g.labels.len();
        g.labels.retain(|l| l.id != id);
        if g.labels.len() == before {
            return Err(GdiError::NotFound("label"));
        }
        drop(g);
        self.bump();
        Ok(())
    }

    /// Create a property type (`GDI_CreatePropertyType`).
    #[allow(clippy::too_many_arguments)]
    pub fn create_ptype(
        &self,
        name: &str,
        dtype: Datatype,
        entity: EntityType,
        mult: Multiplicity,
        stype: SizeType,
        count: usize,
    ) -> GdiResult<PTypeId> {
        let mut g = self.inner.write();
        if g.ptypes.iter().any(|p| p.name == name) {
            return Err(GdiError::AlreadyExists("property type"));
        }
        let id = PTypeId(g.next_ptype);
        g.next_ptype += 1;
        g.ptypes.push(PTypeDef {
            id,
            name: name.to_string(),
            dtype,
            entity,
            mult,
            stype,
            count,
        });
        drop(g);
        self.bump();
        Ok(id)
    }

    /// Delete a property type (`GDI_DeletePropertyType`).
    pub fn delete_ptype(&self, id: PTypeId) -> GdiResult<()> {
        let mut g = self.inner.write();
        let before = g.ptypes.len();
        g.ptypes.retain(|p| p.id != id);
        if g.ptypes.len() == before {
            return Err(GdiError::NotFound("property type"));
        }
        drop(g);
        self.bump();
        Ok(())
    }

    /// Export the full catalog state for a durable snapshot (labels,
    /// property types, id allocators and the current epoch) — the
    /// persistence twin of [`MetaStore::snapshot`].
    pub fn export_parts(&self) -> MetaParts {
        let g = self.inner.read();
        MetaParts {
            labels: g.labels.clone(),
            ptypes: g.ptypes.clone(),
            next_label: g.next_label,
            next_ptype: g.next_ptype,
            epoch: self.epoch(),
        }
    }

    /// Rebuild a store from exported parts (recovery). Id allocators are
    /// restored too, so ids created after recovery never collide with
    /// pre-crash ids.
    pub fn from_parts(parts: MetaParts) -> Self {
        Self {
            inner: RwLock::new(MetaInner {
                labels: parts.labels,
                ptypes: parts.ptypes,
                next_label: parts.next_label,
                next_ptype: parts.next_ptype,
            }),
            epoch: AtomicU64::new(parts.epoch.max(1)),
        }
    }

    /// Take a consistent snapshot (what a rank replicates locally).
    pub fn snapshot(&self) -> MetaSnapshot {
        // epoch first: if a mutation lands between the two reads we get a
        // snapshot at least as new as the recorded epoch, which is safe
        // (staleness detection errs towards aborting).
        let epoch = self.epoch();
        let g = self.inner.read();
        let mut s = MetaSnapshot {
            epoch,
            labels: g.labels.clone(),
            ptypes: g.ptypes.clone(),
            label_by_name: FxHashMap::default(),
            label_by_id: FxHashMap::default(),
            ptype_by_name: FxHashMap::default(),
            ptype_by_id: FxHashMap::default(),
        };
        for (i, l) in s.labels.iter().enumerate() {
            s.label_by_name.insert(l.name.clone(), i);
            s.label_by_id.insert(l.id, i);
        }
        for (i, p) in s.ptypes.iter().enumerate() {
            s.ptype_by_name.insert(p.name.clone(), i);
            s.ptype_by_id.insert(p.id, i);
        }
        s
    }
}

/// Exportable catalog state of a [`MetaStore`] (persistence support: what
/// a durable snapshot's manifest carries).
#[derive(Debug, Clone, PartialEq)]
pub struct MetaParts {
    /// All label definitions.
    pub labels: Vec<LabelDef>,
    /// All property-type definitions.
    pub ptypes: Vec<PTypeDef>,
    /// Next label id to allocate.
    pub next_label: u32,
    /// Next property-type id to allocate.
    pub next_ptype: u32,
    /// Metadata epoch at export time.
    pub epoch: u64,
}

/// A rank-local replica of the metadata (hash maps for O(1) existence
/// checks, per §5.8).
#[derive(Debug, Clone, Default)]
pub struct MetaSnapshot {
    /// The authoritative epoch this replica reflects.
    pub epoch: u64,
    /// All label definitions at that epoch.
    pub labels: Vec<LabelDef>,
    /// All property-type definitions at that epoch.
    pub ptypes: Vec<PTypeDef>,
    label_by_name: FxHashMap<String, usize>,
    label_by_id: FxHashMap<LabelId, usize>,
    ptype_by_name: FxHashMap<String, usize>,
    ptype_by_id: FxHashMap<PTypeId, usize>,
}

impl MetaSnapshot {
    /// `GDI_GetLabelFromName`.
    pub fn label_from_name(&self, name: &str) -> Option<LabelId> {
        self.label_by_name.get(name).map(|&i| self.labels[i].id)
    }

    /// `GDI_GetNameOfLabel`.
    pub fn label_name(&self, id: LabelId) -> Option<&str> {
        self.label_by_id
            .get(&id)
            .map(|&i| self.labels[i].name.as_str())
    }

    /// `GDI_GetPropertyTypeFromName`.
    pub fn ptype_from_name(&self, name: &str) -> Option<PTypeId> {
        self.ptype_by_name.get(name).map(|&i| self.ptypes[i].id)
    }

    /// Full definition of a property type.
    pub fn ptype(&self, id: PTypeId) -> Option<&PTypeDef> {
        self.ptype_by_id.get(&id).map(|&i| &self.ptypes[i])
    }

    /// `GDI_GetAllLabelsOfDatabase`.
    pub fn all_labels(&self) -> &[LabelDef] {
        &self.labels
    }

    /// `GDI_GetAllPropertyTypesOfDatabase`.
    pub fn all_ptypes(&self) -> &[PTypeDef] {
        &self.ptypes
    }
}

/// Convenience alias for sharing a store.
pub type SharedMeta = Arc<MetaStore>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn label_lifecycle() {
        let m = MetaStore::new();
        let e0 = m.epoch();
        let person = m.create_label("Person").unwrap();
        let car = m.create_label("Car").unwrap();
        assert_ne!(person, car);
        assert!(m.epoch() > e0, "creation bumps the epoch");
        assert_eq!(
            m.create_label("Person"),
            Err(GdiError::AlreadyExists("label"))
        );

        let s = m.snapshot();
        assert_eq!(s.label_from_name("Person"), Some(person));
        assert_eq!(s.label_name(car), Some("Car"));
        assert_eq!(s.all_labels().len(), 2);

        m.update_label(person, "Human").unwrap();
        let s2 = m.snapshot();
        assert_eq!(s2.label_from_name("Human"), Some(person));
        assert_eq!(s2.label_from_name("Person"), None);
        assert_eq!(
            m.update_label(car, "Human"),
            Err(GdiError::AlreadyExists("label name"))
        );

        m.delete_label(car).unwrap();
        assert_eq!(m.delete_label(car), Err(GdiError::NotFound("label")));
        assert_eq!(m.snapshot().all_labels().len(), 1);
    }

    #[test]
    fn ptype_lifecycle() {
        let m = MetaStore::new();
        let age = m
            .create_ptype(
                "age",
                Datatype::Uint64,
                EntityType::Vertex,
                Multiplicity::Single,
                SizeType::Fixed,
                1,
            )
            .unwrap();
        assert!(age.0 >= FIRST_PTYPE_ID);
        assert_eq!(
            m.create_ptype(
                "age",
                Datatype::Uint32,
                EntityType::Vertex,
                Multiplicity::Single,
                SizeType::Fixed,
                1
            ),
            Err(GdiError::AlreadyExists("property type"))
        );
        let s = m.snapshot();
        let def = s.ptype(age).unwrap();
        assert_eq!(def.dtype, Datatype::Uint64);
        assert_eq!(def.entity, EntityType::Vertex);
        assert_eq!(s.ptype_from_name("age"), Some(age));
        m.delete_ptype(age).unwrap();
        assert_eq!(
            m.delete_ptype(age),
            Err(GdiError::NotFound("property type"))
        );
    }

    #[test]
    fn snapshots_are_isolated_from_later_changes() {
        let m = MetaStore::new();
        m.create_label("A").unwrap();
        let snap = m.snapshot();
        m.create_label("B").unwrap();
        assert_eq!(snap.all_labels().len(), 1, "snapshot is a replica");
        assert!(snap.epoch < m.epoch(), "staleness is detectable");
        assert_eq!(m.snapshot().all_labels().len(), 2);
    }

    #[test]
    fn ids_never_reused() {
        let m = MetaStore::new();
        let a = m.create_label("A").unwrap();
        m.delete_label(a).unwrap();
        let b = m.create_label("B").unwrap();
        assert_ne!(a, b, "label ids must not be recycled");
    }

    #[test]
    fn concurrent_creates_unique_ids() {
        let m = Arc::new(MetaStore::new());
        let mut handles = Vec::new();
        for t in 0..8 {
            let m = m.clone();
            handles.push(std::thread::spawn(move || {
                (0..20)
                    .map(|i| m.create_label(&format!("L{t}-{i}")).unwrap())
                    .collect::<Vec<_>>()
            }));
        }
        let mut all = Vec::new();
        for h in handles {
            all.extend(h.join().unwrap());
        }
        let uniq: std::collections::HashSet<_> = all.iter().collect();
        assert_eq!(uniq.len(), all.len());
        assert_eq!(m.snapshot().all_labels().len(), 160);
    }
}

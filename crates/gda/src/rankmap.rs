//! The canonical home of **rank-ownership math** — and the
//! snapshot-rank → live-rank map behind elastic resharding.
//!
//! Ownership used to be baked into every layer as ad-hoc modulo
//! arithmetic: vertex owners in `dptr`, DHT key placement in `dht`,
//! request routing in the server. That was harmless while a database
//! only ever ran on the topology it was created with — but restoring a
//! `P`-rank snapshot onto `Q ≠ P` ranks means *every one* of those
//! formulas changes meaning, and any copy that silently keeps using the
//! old rank count corrupts data. This module therefore owns the
//! formulas ([`vertex_owner`], [`dht_rank`], [`dht_bucket`]) — the
//! other layers delegate — and packages the two topologies of a
//! resharded recovery into a [`RankMap`]:
//!
//! * **snapshot ranks** (`P`): the topology that wrote the snapshot and
//!   the redo logs being restored;
//! * **live ranks** (`Q`): the topology of the fabric being booted;
//! * a deterministic assignment of snapshot shards to live readers
//!   ([`RankMap::shard_reader`]), so the `P` snapshot files and logs
//!   are consumed exactly once with no coordination.
//!
//! The map is intentionally *pure data* (two integers): live migration
//! can later extend it with an explicit old-rank → new-rank relocation
//! table without touching the call sites.

use gdi::AppVertexId;

use crate::dht::hash64;

/// Round-robin owner rank of an application vertex id (§5.4: "use
/// round-robin distribution"). The single authoritative copy — every
/// layer that places or routes by vertex id must call this (or
/// [`crate::dptr::owner_rank`], which delegates here).
#[inline]
pub fn vertex_owner(app: AppVertexId, nranks: usize) -> usize {
    (app.0 % nranks as u64) as usize
}

/// Rank whose index window holds a DHT key's chain (placement half of
/// the paper's `h(k) mod P` scheme).
#[inline]
pub fn dht_rank(key: u64, nranks: usize) -> usize {
    (hash64(key) % nranks as u64) as usize
}

/// Bucket index of a DHT key on its placement rank (`(h(k)/P) mod B` —
/// dividing by `P` decorrelates the bucket choice from the rank choice).
#[inline]
pub fn dht_bucket(key: u64, nranks: usize, nbuckets: usize) -> usize {
    ((hash64(key) / nranks as u64) % nbuckets as u64) as usize
}

/// The snapshot-rank → live-rank → key-ownership map of one recovery.
///
/// For a same-topology recovery this is the identity; for a resharded
/// recovery it relates the `P` on-disk shards to the `Q` live ranks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RankMap {
    snapshot_ranks: usize,
    live_ranks: usize,
}

impl RankMap {
    /// The identity map of an `n`-rank topology (normal operation and
    /// same-topology recovery).
    pub fn identity(n: usize) -> Self {
        Self::resharded(n, n)
    }

    /// A map restoring `snapshot_ranks` on-disk shards onto
    /// `live_ranks` live ranks.
    pub fn resharded(snapshot_ranks: usize, live_ranks: usize) -> Self {
        assert!(snapshot_ranks >= 1, "need at least one snapshot rank");
        assert!(live_ranks >= 1, "need at least one live rank");
        Self {
            snapshot_ranks,
            live_ranks,
        }
    }

    /// Number of ranks the snapshot was written by (`P`).
    #[inline]
    pub fn snapshot_ranks(&self) -> usize {
        self.snapshot_ranks
    }

    /// Number of ranks being booted (`Q`).
    #[inline]
    pub fn live_ranks(&self) -> usize {
        self.live_ranks
    }

    /// Is this a same-topology map?
    #[inline]
    pub fn is_identity(&self) -> bool {
        self.snapshot_ranks == self.live_ranks
    }

    /// Owner rank of a vertex under the **live** topology.
    #[inline]
    pub fn vertex_owner(&self, app: AppVertexId) -> usize {
        vertex_owner(app, self.live_ranks)
    }

    /// DHT placement rank of a key under the **live** topology.
    #[inline]
    pub fn dht_rank(&self, key: u64) -> usize {
        dht_rank(key, self.live_ranks)
    }

    /// The live rank responsible for reading snapshot shard `s` (its
    /// snapshot file and redo segment) during a resharded restore.
    /// Round-robin over the live ranks: every shard has exactly one
    /// reader, and shards spread evenly over readers for `Q < P`.
    #[inline]
    pub fn shard_reader(&self, snapshot_rank: usize) -> usize {
        debug_assert!(snapshot_rank < self.snapshot_ranks);
        snapshot_rank % self.live_ranks
    }

    /// The snapshot shards a live rank reads (inverse of
    /// [`RankMap::shard_reader`]).
    pub fn shards_for(&self, live_rank: usize) -> Vec<usize> {
        (0..self.snapshot_ranks)
            .filter(|s| self.shard_reader(*s) == live_rank)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The formulas here are the on-disk/placement contract: `dptr` and
    /// `dht` delegate to them, and this test pins the exact values so a
    /// refactor cannot silently change where existing data lives.
    #[test]
    fn ownership_formulas_are_pinned() {
        assert_eq!(vertex_owner(AppVertexId(0), 4), 0);
        assert_eq!(vertex_owner(AppVertexId(5), 4), 1);
        assert_eq!(vertex_owner(AppVertexId(7), 1), 0);
        for key in [0u64, 1, 17, 1_000_003] {
            for p in [1usize, 2, 5, 8] {
                assert_eq!(dht_rank(key, p), (hash64(key) % p as u64) as usize);
                assert_eq!(
                    dht_bucket(key, p, 64),
                    ((hash64(key) / p as u64) % 64) as usize
                );
            }
        }
    }

    #[test]
    fn identity_map_round_trips() {
        let m = RankMap::identity(4);
        assert!(m.is_identity());
        assert_eq!(m.snapshot_ranks(), 4);
        assert_eq!(m.live_ranks(), 4);
        for app in 0..16u64 {
            assert_eq!(
                m.vertex_owner(AppVertexId(app)),
                vertex_owner(AppVertexId(app), 4)
            );
        }
    }

    #[test]
    fn shard_assignment_covers_every_shard_exactly_once() {
        for (p, q) in [(2usize, 8usize), (8, 2), (4, 5), (5, 4), (3, 1), (1, 3)] {
            let m = RankMap::resharded(p, q);
            assert!(!m.is_identity() || p == q);
            let mut seen = vec![0usize; p];
            for live in 0..q {
                for s in m.shards_for(live) {
                    assert_eq!(m.shard_reader(s), live);
                    seen[s] += 1;
                }
            }
            assert!(seen.iter().all(|&c| c == 1), "P={p} Q={q}: {seen:?}");
            // readers are balanced within one shard
            let loads: Vec<usize> = (0..q).map(|l| m.shards_for(l).len()).collect();
            let (min, max) = (loads.iter().min().unwrap(), loads.iter().max().unwrap());
            assert!(max - min <= 1, "unbalanced shard readers: {loads:?}");
        }
    }

    #[test]
    fn reshard_changes_vertex_owner_consistently() {
        let m = RankMap::resharded(2, 5);
        for app in 0..20u64 {
            assert_eq!(m.vertex_owner(AppVertexId(app)), (app % 5) as usize);
            assert_eq!(m.dht_rank(app), dht_rank(app, 5));
        }
    }
}

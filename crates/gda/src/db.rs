//! Database objects and the per-rank engine handle.
//!
//! A [`GdaDb`] is one GDI database: configuration, replicated metadata and
//! explicit-index state. GDA supports **multiple parallel databases**
//! (§3.9) through the [`DbRegistry`]; each database's graph data lives in
//! the fabric windows, disambiguated per database instance (one fabric per
//! database in this implementation — the registry tracks the objects).
//!
//! Inside `fabric.run`, every rank *attaches* to the database
//! ([`GdaDb::attach`]) to obtain a [`GdaRank`]: the engine handle providing
//! metadata routines, index routines, and [`GdaRank::begin`] /
//! [`GdaRank::begin_collective`] to start transactions.

use std::cell::{Cell, Ref, RefCell};
use std::rc::Rc;
use std::sync::Arc;

use parking_lot::Mutex;
use rustc_hash::FxHashMap;

use gdi::{
    AccessMode, AppVertexId, Datatype, EntityType, GdiError, GdiResult, LabelId, Multiplicity,
    PTypeId, SizeType, TxKind,
};
use rma::{CostModel, Fabric, RankCtx};

use crate::blocks::BlockManager;
use crate::cache::{CacheStats, TranslationCache};
use crate::config::GdaConfig;
use crate::dht::Dht;
use crate::dptr::DPtr;
use crate::index::{IndexId, IndexShared, Posting};
use crate::locks::LockManager;
use crate::meta::{MetaSnapshot, MetaStore, SharedMeta};
use crate::persist::{PersistOptions, PersistStore, RedoRecord};
use crate::tx::Transaction;

/// One GDI database (shared, rank-independent state).
#[derive(Debug)]
pub struct GdaDb {
    /// Database name (the registry key).
    pub name: String,
    /// The configuration the storage windows are laid out for.
    pub cfg: GdaConfig,
    nranks: usize,
    pub(crate) meta: SharedMeta,
    pub(crate) indexes: Arc<IndexShared>,
    persist: Mutex<Option<Arc<PersistStore>>>,
}

impl GdaDb {
    /// Create a database for a fabric of `nranks` ranks.
    pub fn new(name: &str, cfg: GdaConfig, nranks: usize) -> Arc<GdaDb> {
        cfg.validate();
        Arc::new(GdaDb {
            name: name.to_string(),
            cfg,
            nranks,
            meta: Arc::new(MetaStore::new()),
            indexes: Arc::new(IndexShared::new(nranks)),
            persist: Mutex::new(None),
        })
    }

    /// Rebuild a database object from recovered parts (the catalog and
    /// index definitions a snapshot manifest carried).
    pub(crate) fn restore(
        name: &str,
        cfg: GdaConfig,
        nranks: usize,
        meta: MetaStore,
        indexes: IndexShared,
    ) -> Arc<GdaDb> {
        cfg.validate();
        Arc::new(GdaDb {
            name: name.to_string(),
            cfg,
            nranks,
            meta: Arc::new(meta),
            indexes: Arc::new(indexes),
            persist: Mutex::new(None),
        })
    }

    /// Turn on durability: every commit from now on appends to a
    /// per-rank redo log under `opts.dir`, and [`GdaRank::checkpoint`]
    /// (collective) writes snapshots there. Writes a genesis manifest
    /// (checkpoint 0) capturing the catalog as of now; fails if the
    /// directory already holds a database (use
    /// [`crate::persist::recover`] for that). Ranks attached *before*
    /// this call do not log — enable persistence before `fabric.run`.
    pub fn enable_persistence(&self, opts: PersistOptions) -> GdiResult<Arc<PersistStore>> {
        let mut guard = self.persist.lock();
        if guard.is_some() {
            return Err(GdiError::AlreadyExists("persistence store"));
        }
        let store = crate::persist::create_store(self, opts)?;
        *guard = Some(store.clone());
        Ok(store)
    }

    /// The attached persistence store, if any.
    pub fn persistence(&self) -> Option<Arc<PersistStore>> {
        self.persist.lock().clone()
    }

    /// Attach an already-open store (recovery path).
    pub(crate) fn set_persistence(&self, store: Arc<PersistStore>) {
        *self.persist.lock() = Some(store);
    }

    /// The authoritative metadata store (persistence support).
    pub(crate) fn meta_store(&self) -> &MetaStore {
        &self.meta
    }

    /// The shared index state (persistence support).
    pub(crate) fn indexes_shared(&self) -> &IndexShared {
        &self.indexes
    }

    /// Convenience: create the database together with a matching fabric.
    /// The fabric's execution backend follows the process default
    /// (`GDI_FABRIC_BACKEND`, else simulated).
    pub fn with_fabric(
        name: &str,
        cfg: GdaConfig,
        nranks: usize,
        cost: CostModel,
    ) -> (Arc<GdaDb>, Fabric) {
        let db = Self::new(name, cfg, nranks);
        let fabric = cfg.build_fabric(nranks, cost);
        (db, fabric)
    }

    /// Like [`GdaDb::with_fabric`] but pinned to an explicit fabric
    /// execution backend, ignoring `GDI_FABRIC_BACKEND`.
    pub fn with_fabric_on(
        name: &str,
        cfg: GdaConfig,
        nranks: usize,
        cost: CostModel,
        backend: rma::BackendKind,
    ) -> (Arc<GdaDb>, Fabric) {
        let db = Self::new(name, cfg, nranks);
        let fabric = cfg.build_fabric_on(nranks, cost, backend);
        (db, fabric)
    }

    /// Number of ranks the database is laid out for.
    pub fn nranks(&self) -> usize {
        self.nranks
    }

    /// Attach the calling rank to the database.
    pub fn attach<'d, 'c, 'f>(&'d self, ctx: &'c RankCtx<'f>) -> GdaRank<'d, 'c, 'f> {
        assert_eq!(
            ctx.nranks(),
            self.nranks,
            "fabric size does not match database layout"
        );
        GdaRank {
            db: self,
            ctx,
            bm: BlockManager::new(ctx, self.cfg),
            lm: LockManager::new(ctx, self.cfg),
            dht: Dht::new(ctx, self.cfg),
            tcache: TranslationCache::new(
                self.cfg.translation_cache,
                self.cfg.translation_cache_capacity,
                ctx.nranks(),
            ),
            persist: self.persistence(),
            meta_snap: RefCell::new(self.meta.snapshot()),
            scan_cache: RefCell::new(None),
            snaps: RefCell::new(Vec::new()),
            last_epoch: Cell::new(0),
        }
    }
}

/// The per-rank engine handle (all GDI routines are invoked through it).
pub struct GdaRank<'d, 'c, 'f> {
    pub(crate) db: &'d GdaDb,
    pub(crate) ctx: &'c RankCtx<'f>,
    pub(crate) bm: BlockManager<'c, 'f>,
    pub(crate) lm: LockManager<'c, 'f>,
    pub(crate) dht: Dht<'c, 'f>,
    pub(crate) tcache: TranslationCache,
    pub(crate) persist: Option<Arc<PersistStore>>,
    meta_snap: RefCell<MetaSnapshot>,
    /// Cached OLAP scan view of this rank's partition (see
    /// [`GdaRank::olap_view`]): revalidated per job against the
    /// topology-epoch words it was stamped with.
    scan_cache: RefCell<Option<Rc<crate::scan::CsrView>>>,
    /// Snapshot epochs pinned by live read-only transactions on this
    /// rank (a multiset — the minimum is published to the rank's
    /// min-active-snapshot system word for the chain truncator).
    snaps: RefCell<Vec<u64>>,
    /// Commit epoch of the last read-write transaction this handle
    /// committed (0 before any — the SI differential harness keys its
    /// oracle on this).
    last_epoch: Cell<u64>,
}

impl<'d, 'c, 'f> GdaRank<'d, 'c, 'f> {
    /// Collective: initialize the storage substrate (block free lists and
    /// DHT heaps). Must be called by all ranks before any transaction.
    pub fn init_collective(&self) {
        // publish "no active snapshot" before the block-manager barrier
        // so no rank can observe a stale 0 (= pin-in-flight marker) once
        // transactions start
        self.ctx.aput_u64(
            crate::config::WIN_SYSTEM,
            self.rank(),
            self.db.cfg.snap_word(),
            u64::MAX,
        );
        self.snaps.borrow_mut().clear();
        self.last_epoch.set(0);
        self.bm.init_collective();
        self.dht.init_collective();
        self.tcache.clear();
        self.scan_cache.borrow_mut().take();
    }

    /// This rank's id.
    pub fn rank(&self) -> usize {
        self.ctx.rank()
    }

    /// Number of ranks.
    pub fn nranks(&self) -> usize {
        self.ctx.nranks()
    }

    /// The underlying fabric context (for collectives in workloads).
    pub fn ctx(&self) -> &'c RankCtx<'f> {
        self.ctx
    }

    /// The database configuration.
    pub fn cfg(&self) -> &GdaConfig {
        &self.db.cfg
    }

    /// The database this rank is attached to.
    pub fn db(&self) -> &GdaDb {
        self.db
    }

    // ---- durability (see `crate::persist`) ------------------------------

    /// The persistence store this attach captured (if the database had
    /// durability enabled at [`GdaDb::attach`] time).
    pub fn persistence(&self) -> Option<Arc<PersistStore>> {
        self.persist.clone()
    }

    /// Is this engine handle logging commits durably?
    pub(crate) fn persist_enabled(&self) -> bool {
        self.persist.is_some()
    }

    /// Collective: take a durable checkpoint (quiesce, snapshot every
    /// rank's dirty chunks or full windows + index postings, publish,
    /// truncate the redo logs). Every rank must call this together;
    /// returns the published checkpoint id. Writes a delta chained to
    /// the last full snapshot when churn is low — see
    /// [`crate::persist`] for the protocol and the rebase policy.
    pub fn checkpoint(&self) -> GdiResult<u64> {
        crate::persist::checkpoint_rank(self)
    }

    /// Collective: like [`GdaRank::checkpoint`] but always writes a
    /// full snapshot (a *rebase*), resetting the delta chain to one
    /// file and letting the previous chain be garbage-collected.
    pub fn checkpoint_full(&self) -> GdiResult<u64> {
        crate::persist::checkpoint_rank_full(self)
    }

    /// Collective: run one background-maintenance pass (MVCC version
    /// vacuum below the global read watermark, holder-chain
    /// compaction, free-list vacuum, checksum verification of the
    /// published snapshot chain). Every rank must call this together.
    /// See [`crate::maint`].
    pub fn maintenance(&self) -> GdiResult<crate::maint::MaintenanceReport> {
        crate::maint::maintenance_rank(self)
    }

    /// Take the next **commit stamp** from the owner rank of `id`'s
    /// primary block (one `fadd` on the system-window counter). Commits
    /// of one object are serialized by its write lock and every
    /// incarnation of an application id lives on the same owner rank,
    /// so stamps give persisted holder versions a strict monotone order
    /// per object — across delete/recreate — which is what redo replay
    /// orders cross-log records by. Only taken when persistence is
    /// enabled (the in-memory path keeps the free `version + 1` bump).
    pub(crate) fn next_version_stamp(&self, id: crate::dptr::DPtr) -> u64 {
        let word = self.cfg().stamp_word();
        self.ctx
            .fadd_u64(crate::config::WIN_SYSTEM, id.rank(), word, 1)
            + 1
    }

    /// Raise `id`'s owner-rank commit-stamp counter to at least `floor`
    /// (CAS max loop). Needed when persistence is enabled on a database
    /// that already carries in-memory `version + 1` bumps: every future
    /// stamp — including one taken for a *later incarnation* of the same
    /// application id on another rank — must stay strictly above any
    /// version already written, or redo replay's cross-log tombstone
    /// ordering would refuse a genuine recreate.
    pub(crate) fn advance_version_stamp(&self, id: crate::dptr::DPtr, floor: u64) {
        let word = self.cfg().stamp_word();
        let mut cur = self
            .ctx
            .aget_u64(crate::config::WIN_SYSTEM, id.rank(), word);
        while cur < floor {
            let prev = self
                .ctx
                .cas_u64(crate::config::WIN_SYSTEM, id.rank(), word, cur, floor);
            if prev == cur {
                break;
            }
            cur = prev;
        }
    }

    /// Commit-path hook: append one committed transaction's redo
    /// records to this rank's log, charging the modeled device cost. An
    /// I/O failure is counted and reported, not propagated — the
    /// in-memory commit already succeeded and stays visible.
    pub(crate) fn log_commit(&self, records: Vec<RedoRecord>) {
        let Some(store) = &self.persist else { return };
        if records.is_empty() {
            return;
        }
        match store.append(self.rank(), &records) {
            Ok(bytes) => self.ctx.record_log_write(bytes),
            Err(e) => {
                store.note_log_error();
                eprintln!(
                    "[gda::persist] rank {}: redo append failed: {e}",
                    self.rank()
                );
            }
        }
    }

    // ---- metadata (eventually consistent, §3.8) -------------------------

    /// Refresh the local metadata replica if the authoritative store moved.
    /// Models the propagation cost of replication with a broadcast charge.
    pub fn refresh_meta(&self) {
        if self.db.meta.epoch() != self.meta_snap.borrow().epoch {
            let snap = self.db.meta.snapshot();
            let bytes = 64 * (snap.labels.len() + snap.ptypes.len()) + 64;
            self.ctx
                .charge_ns(self.ctx.cost_model().reduce_like(self.nranks(), bytes));
            *self.meta_snap.borrow_mut() = snap;
        }
    }

    /// Read access to the local metadata replica.
    pub fn meta(&self) -> Ref<'_, MetaSnapshot> {
        self.meta_snap.borrow()
    }

    /// Current authoritative metadata epoch.
    pub fn meta_epoch(&self) -> u64 {
        self.db.meta.epoch()
    }

    /// `GDI_CreateLabel` (local call; propagates eventually).
    pub fn create_label(&self, name: &str) -> GdiResult<LabelId> {
        let r = self.db.meta.create_label(name);
        self.refresh_meta();
        r
    }

    /// `GDI_UpdateLabel`.
    pub fn update_label(&self, id: LabelId, name: &str) -> GdiResult<()> {
        let r = self.db.meta.update_label(id, name);
        self.refresh_meta();
        r
    }

    /// `GDI_DeleteLabel`.
    pub fn delete_label(&self, id: LabelId) -> GdiResult<()> {
        let r = self.db.meta.delete_label(id);
        self.refresh_meta();
        r
    }

    /// `GDI_CreatePropertyType`.
    pub fn create_ptype(
        &self,
        name: &str,
        dtype: Datatype,
        entity: EntityType,
        mult: Multiplicity,
        stype: SizeType,
        count: usize,
    ) -> GdiResult<PTypeId> {
        let r = self
            .db
            .meta
            .create_ptype(name, dtype, entity, mult, stype, count);
        self.refresh_meta();
        r
    }

    /// `GDI_DeletePropertyType`.
    pub fn delete_ptype(&self, id: PTypeId) -> GdiResult<()> {
        let r = self.db.meta.delete_ptype(id);
        self.refresh_meta();
        r
    }

    // ---- explicit indexes ------------------------------------------------

    /// `GDI_CreateIndex` (collective in spirit; cheap here).
    pub fn create_index(
        &self,
        name: &str,
        labels: Vec<LabelId>,
        ptypes: Vec<PTypeId>,
    ) -> GdiResult<IndexId> {
        self.db.indexes.create(name, labels, ptypes)
    }

    /// `GDI_DeleteIndex`.
    pub fn delete_index(&self, id: IndexId) -> GdiResult<()> {
        self.db.indexes.delete(id)
    }

    /// `GDI_GetAllIndexesOfDatabase`.
    pub fn all_indexes(&self) -> Vec<crate::index::IndexDef> {
        self.db.indexes.all()
    }

    /// `GDI_GetLocalVerticesOfIndex` — this rank's partition, unfiltered.
    /// Charges the local scan cost.
    pub fn local_index_vertices(&self, id: IndexId) -> Vec<Posting> {
        let v = self.db.indexes.local_vertices(self.rank(), id);
        self.ctx.charge_cpu(v.len() as u64 + 1);
        v
    }

    /// Shared index state (used by transactions at commit).
    pub(crate) fn indexes(&self) -> &IndexShared {
        &self.db.indexes
    }

    // ---- MVCC snapshots (see `crate::tx`) --------------------------------

    /// Atomically read the global **read-epoch watermark** (one `aget`
    /// of rank 0's system window): the highest commit epoch whose
    /// writes — and those of all lower epochs — are fully flushed.
    pub fn read_watermark(&self) -> u64 {
        self.ctx
            .aget_u64(crate::config::WIN_SYSTEM, 0, self.cfg().watermark_word())
    }

    /// Allocate this commit's epoch: one `fadd` on rank 0's
    /// commit-epoch counter. Every allocated epoch **must** be published
    /// via [`GdaRank::publish_watermark`] — even when the commit fails —
    /// or the in-order publication chain wedges behind the gap.
    pub(crate) fn alloc_commit_epoch(&self) -> u64 {
        self.ctx.fadd_u64(
            crate::config::WIN_SYSTEM,
            0,
            self.cfg().epoch_counter_word(),
            1,
        ) + 1
    }

    /// Publish commit epoch `e`: spin until the watermark reaches
    /// `e - 1`, then CAS it to `e`. In-order publication is what makes
    /// a pinned snapshot `s = W` mean "the committed state as of epoch
    /// `s`, exactly" — an epoch never becomes visible before every
    /// lower epoch is flushed.
    pub(crate) fn publish_watermark(&self, e: u64) {
        let word = self.cfg().watermark_word();
        let shadow = self.cfg().wmark_shadow_word();
        loop {
            let cur = self.ctx.aget_u64(crate::config::WIN_SYSTEM, 0, word);
            if cur >= e {
                return;
            }
            if cur == e - 1 {
                // refresh every rank's watermark shadow *first*: epoch
                // `e` has exactly one publisher and it alone owns the
                // `W == e-1` slot, so shadow stores are serialized
                // (monotone) and `shadow ≥ W` holds on every rank at
                // every instant — the invariant that lets pins read
                // their local shadow instead of rank 0's word
                for r in 0..self.nranks() {
                    self.ctx.aput_u64(crate::config::WIN_SYSTEM, r, shadow, e);
                }
                if self
                    .ctx
                    .cas_u64(crate::config::WIN_SYSTEM, 0, word, e - 1, e)
                    == e - 1
                {
                    self.ctx.record_watermark_advance();
                    return;
                }
            }
            // the predecessor epoch's publisher may be descheduled (the
            // host can be oversubscribed); yield so it can finish rather
            // than charge-spinning remote agets against its timeslice
            std::thread::yield_now();
        }
    }

    /// Pin a snapshot epoch for a read-only transaction: write the `0`
    /// registration marker to this rank's min-active-snapshot word
    /// (flushed — a concurrent truncator that sees it skips its round),
    /// read this rank's **watermark shadow**, account the pin in the
    /// rank-local multiset and publish the new minimum. Returns the
    /// pinned epoch.
    ///
    /// The shadow read is the entire latency story of a pin: it is one
    /// *local* atomic, so beginning a read-only transaction costs no
    /// network round trip at all. Safety: the shadow is refreshed before
    /// the authoritative watermark advances (`shadow ≥ W` always), and
    /// every truncation floor is bounded by a `W` read *before* the
    /// truncator scanned our snap word — so the pinned epoch can never
    /// lie below a floor that already freed versions.
    pub(crate) fn pin_snapshot(&self) -> u64 {
        let word = self.cfg().snap_word();
        let me = self.rank();
        self.ctx.aput_u64(crate::config::WIN_SYSTEM, me, word, 0);
        self.ctx.flush(me);
        let s = self.ctx.aget_u64(
            crate::config::WIN_SYSTEM,
            me,
            self.cfg().wmark_shadow_word(),
        );
        let mut snaps = self.snaps.borrow_mut();
        snaps.push(s);
        let min = snaps.iter().copied().min().expect("just pushed");
        self.ctx.aput_u64(crate::config::WIN_SYSTEM, me, word, min);
        self.ctx.record_snapshot_pin();
        s
    }

    /// Drop a pinned snapshot at transaction end and republish the
    /// rank's minimum (`u64::MAX` when no reader remains active).
    pub(crate) fn unpin_snapshot(&self, s: u64) {
        let mut snaps = self.snaps.borrow_mut();
        if let Some(pos) = snaps.iter().position(|&x| x == s) {
            snaps.swap_remove(pos);
        }
        let min = snaps.iter().copied().min().unwrap_or(u64::MAX);
        self.ctx.aput_u64(
            crate::config::WIN_SYSTEM,
            self.rank(),
            self.cfg().snap_word(),
            min,
        );
    }

    /// The version-retention **floor**: archived versions whose commit
    /// epoch lies strictly below it can never be needed by any current
    /// or future snapshot. Reads the watermark *first*, then every
    /// rank's min-active-snapshot word; `None` means a pin registration
    /// was mid-flight somewhere (its epoch unknowable) — the caller
    /// skips truncation this round.
    pub(crate) fn snapshot_floor(&self) -> Option<u64> {
        let mut floor = self.read_watermark();
        let word = self.cfg().snap_word();
        for r in 0..self.nranks() {
            let m = self.ctx.aget_u64(crate::config::WIN_SYSTEM, r, word);
            if m == 0 {
                return None;
            }
            if m != u64::MAX {
                floor = floor.min(m);
            }
        }
        Some(floor)
    }

    /// Commit epoch of the last read-write transaction this engine
    /// handle committed (0 before any). The SI differential harness
    /// keys its sequential oracle on this.
    pub fn last_commit_epoch(&self) -> u64 {
        self.last_epoch.get()
    }

    pub(crate) fn set_last_commit_epoch(&self, e: u64) {
        self.last_epoch.set(e);
    }

    // ---- transactions ------------------------------------------------------

    /// `GDI_StartTransaction`: a local (single-process) transaction.
    pub fn begin(&self, mode: AccessMode) -> Transaction<'_, 'd, 'c, 'f> {
        Transaction::new(self, TxKind::Local, mode)
    }

    /// `GDI_StartCollectiveTransaction`: all ranks must call this together.
    pub fn begin_collective(&self, mode: AccessMode) -> Transaction<'_, 'd, 'c, 'f> {
        self.ctx.barrier();
        Transaction::new(self, TxKind::Collective, mode)
    }

    /// Service-layer entry point: a local transaction with grouped commit
    /// enabled. Many client operations are coalesced into this one
    /// transaction and their write-backs are issued as a single
    /// non-blocking RMA batch at commit — the engine half of the server's
    /// request batching / group commit (see the `server` crate).
    pub fn begin_grouped(&self, mode: AccessMode) -> Transaction<'_, 'd, 'c, 'f> {
        let tx = Transaction::new(self, TxKind::Local, mode);
        tx.enable_grouped_commit();
        tx
    }

    /// Resolve an application vertex id without a transaction (diagnostic;
    /// deliberately **uncached** — the reference path benches compare the
    /// translation cache against).
    pub fn peek_translate(&self, app: AppVertexId) -> Option<crate::dptr::DPtr> {
        self.dht.lookup(app.0).map(crate::dptr::DPtr::from_raw)
    }

    // ---- translation cache (see `crate::cache`) -------------------------

    /// Resolve an application vertex id through the epoch-validated
    /// translation cache (the hot path behind
    /// [`crate::tx::Transaction::translate_vertex_id`]).
    pub(crate) fn translate(&self, app: AppVertexId) -> Option<DPtr> {
        self.tcache
            .lookup(&self.dht, self.ctx, app.0)
            .map(DPtr::from_raw)
    }

    /// [`GdaRank::translate`] with forced remote epoch revalidation (see
    /// [`crate::cache::TranslationCache::lookup_fresh`]).
    pub(crate) fn translate_fresh(&self, app: AppVertexId) -> Option<DPtr> {
        self.tcache
            .lookup_fresh(&self.dht, self.ctx, app.0)
            .map(DPtr::from_raw)
    }

    /// Translation-cache counters of this rank.
    pub fn translation_cache_stats(&self) -> CacheStats {
        self.tcache.stats()
    }

    // ---- OLAP scan views (see `crate::scan`) ----------------------------

    /// Atomically read `rank`'s **topology-epoch word** (one `aget` of
    /// the system window): the scan-view revalidation primitive.
    /// Commits bump the word on every rank whose membership or edge
    /// lists they changed; property-only commits leave it alone.
    pub fn topology_epoch(&self, rank: usize) -> u64 {
        self.ctx
            .aget_u64(crate::config::WIN_SYSTEM, rank, self.cfg().topo_word())
    }

    /// Drop this attach's cached OLAP scan view (recovery hook: after
    /// an in-place window restore the cached mirror describes a dead
    /// incarnation of the storage).
    pub(crate) fn drop_scan_cache(&self) {
        self.scan_cache.borrow_mut().take();
    }

    /// Bump `rank`'s topology-epoch word (one `fadd`). Commit-path and
    /// bulk-load hook; always issued *after* the corresponding data
    /// writes so a concurrent view build can never capture new bytes
    /// under an old epoch.
    pub(crate) fn bump_topology_epoch(&self, rank: usize) {
        self.ctx
            .fadd_u64(crate::config::WIN_SYSTEM, rank, self.cfg().topo_word(), 1);
    }

    /// Collective: the cached, epoch-validated OLAP scan view of this
    /// rank's partition (every live local vertex, rows sorted by app
    /// id). One topology-epoch snapshot revalidates the cached mirror;
    /// when an epoch moved the view is delta-patched from the redo-log
    /// tail when cheap, and rebuilt by a raw-window sweep otherwise —
    /// an abort-free rendezvous, so collective OLAP jobs (`server`
    /// crate) reuse the mirror across jobs instead of rebuilding per
    /// request. Every rank must call this together; like collective
    /// read-only transactions, it assumes no concurrent writers.
    pub fn olap_view(&self) -> Rc<crate::scan::CsrView> {
        let cached = self.scan_cache.borrow().clone();
        let mut revalidated = false;
        let usable: Option<Rc<crate::scan::CsrView>> = match cached {
            Some(v) if crate::scan::revalidate(self, &v) => {
                revalidated = true;
                Some(v)
            }
            Some(v) => crate::scan::try_patch(self, &v).map(Rc::new),
            None => None,
        };
        // the rebuild sweep is collective (DHT exchange): every rank
        // votes, and a rank whose view is still valid participates as a
        // responder without re-sweeping its own window
        let any_rebuild = self.ctx.allreduce_any(usable.is_none());
        let view = if any_rebuild {
            crate::scan::build_collective(self, crate::scan::ScanPartition::LocalAll, usable)
        } else {
            usable.expect("voted no-rebuild with a usable view")
        };
        // a reuse is exactly a pure revalidation: builds and delta
        // patches carry their own counters, so builds + patches +
        // reuses partitions the jobs this rank served
        if revalidated {
            self.ctx.record_scan_reuse();
        }
        *self.scan_cache.borrow_mut() = Some(view.clone());
        view
    }

    /// Non-collective peek at the OLAP scan view cached by a previous
    /// [`GdaRank::olap_view`] call on this attach, if any. No epoch
    /// revalidation is performed — this is a **planning hint** (the
    /// query planner uses it to decide whether a `CsrView`-backed stage
    /// is already paid for), never a substitute for the collective
    /// rendezvous.
    pub fn olap_view_peek(&self) -> Option<Rc<crate::scan::CsrView>> {
        self.scan_cache.borrow().clone()
    }

    /// Pin the translation cache for one service drain cycle: snapshot
    /// every rank's epoch word now and skip per-lookup revalidation until
    /// [`GdaRank::cache_end_cycle`] — one epoch check per batch instead
    /// of per op. Local commits stay exact via write-through.
    pub fn cache_begin_cycle(&self) {
        self.tcache.begin_cycle(&self.dht, self.nranks());
    }

    /// Leave the pinned cycle (per-lookup revalidation resumes).
    pub fn cache_end_cycle(&self) {
        self.tcache.end_cycle();
    }
}

/// Registry of concurrently existing databases (§3.9).
#[derive(Default)]
pub struct DbRegistry {
    dbs: Mutex<FxHashMap<String, Arc<GdaDb>>>,
}

impl DbRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// `GDI_CreateDatabase`.
    pub fn create(&self, name: &str, cfg: GdaConfig, nranks: usize) -> GdiResult<Arc<GdaDb>> {
        let mut g = self.dbs.lock();
        if g.contains_key(name) {
            return Err(GdiError::AlreadyExists("database"));
        }
        let db = GdaDb::new(name, cfg, nranks);
        g.insert(name.to_string(), db.clone());
        Ok(db)
    }

    /// Look up an existing database.
    pub fn get(&self, name: &str) -> Option<Arc<GdaDb>> {
        self.dbs.lock().get(name).cloned()
    }

    /// `GDI_DeleteDatabase`.
    pub fn delete(&self, name: &str) -> GdiResult<()> {
        self.dbs
            .lock()
            .remove(name)
            .map(|_| ())
            .ok_or(GdiError::NotFound("database"))
    }

    /// Names of all live databases.
    pub fn names(&self) -> Vec<String> {
        let mut v: Vec<String> = self.dbs.lock().keys().cloned().collect();
        v.sort();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_lifecycle() {
        let reg = DbRegistry::new();
        let cfg = GdaConfig::tiny();
        let a = reg.create("a", cfg, 2).unwrap();
        assert_eq!(a.name, "a");
        assert_eq!(
            reg.create("a", cfg, 2).unwrap_err(),
            GdiError::AlreadyExists("database")
        );
        reg.create("b", cfg, 4).unwrap();
        assert_eq!(reg.names(), vec!["a", "b"]);
        assert!(reg.get("a").is_some());
        reg.delete("a").unwrap();
        assert_eq!(reg.delete("a").unwrap_err(), GdiError::NotFound("database"));
        assert!(reg.get("a").is_none());
    }

    #[test]
    fn attach_and_metadata_replication() {
        let cfg = GdaConfig::tiny();
        let (db, fabric) = GdaDb::with_fabric("m", cfg, 2, CostModel::zero());
        fabric.run(|ctx| {
            let eng = db.attach(ctx);
            eng.init_collective();
            if ctx.rank() == 0 {
                eng.create_label("Person").unwrap();
            }
            ctx.barrier();
            // rank 1's replica is stale until refreshed (eventual consistency)
            let eng2 = &eng;
            eng2.refresh_meta();
            assert!(eng2.meta().label_from_name("Person").is_some());
        });
    }

    // the fabric resumes the original payload of a panicking rank, so
    // the attach assertion's own message is what reaches the caller
    #[test]
    #[should_panic(expected = "fabric size does not match database layout")]
    fn attach_wrong_fabric_size_panics() {
        let cfg = GdaConfig::tiny();
        let db = GdaDb::new("x", cfg, 4);
        let fabric = cfg.build_fabric(2, CostModel::zero());
        fabric.run(|ctx| {
            let _ = db.attach(ctx);
        });
    }
}

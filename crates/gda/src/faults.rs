//! The engine's fault-point catalog over the shared fault plane.
//!
//! The registry itself lives in [`rma::faults`] (so the fabric's
//! quiesce/collective paths and the persistence layer probe one plane);
//! this module names every storage-side fault point the engine fires and
//! re-exports the plane types. Arm faults through
//! [`PersistStore::fault_plane`] (or build a shared plane and hand it to
//! both [`crate::persist::PersistOptions::faults`] and
//! [`rma::FabricBuilder::faults`]):
//!
//! ```no_run
//! use gda::faults::{self, FaultMode};
//! # let store: std::sync::Arc<gda::persist::PersistStore> = unimplemented!();
//! // next snapshot write on any rank fails once
//! store.fault_plane().arm(faults::SNAP_WRITE, FaultMode::Error);
//! // the 3rd redo append on rank 1 persists only 10 bytes, then "crashes"
//! store
//!     .fault_plane()
//!     .arm_at(faults::REDO_APPEND, Some(1), 2, 1, FaultMode::TornWrite(10));
//! ```
//!
//! Every point sits at an I/O boundary whose failure the recovery path
//! must tolerate; `tests/tests/chaos.rs` walks this catalog crash point by
//! crash point and proves recovered state ≡ uninterrupted state.
//!
//! [`PersistStore::fault_plane`]: crate::persist::PersistStore::fault_plane

pub use rma::faults::points::{FABRIC_COLLECTIVE, FABRIC_QUIESCE};
pub use rma::faults::{flip_bit, FaultMode, FaultPlane, PERSISTENT};

/// Writing one rank's snapshot piece (full or delta image, tmp file +
/// rename). Supports [`FaultMode::Error`] and [`FaultMode::TornWrite`];
/// a voted failure aborts the whole checkpoint and unwinds.
pub const SNAP_WRITE: &str = "snap.write";

/// Writing the checkpoint manifest (rank 0, after all pieces landed).
pub const MANIFEST_WRITE: &str = "manifest.write";

/// Appending one redo-log frame on the commit path. `Error` models a
/// failed `write(2)` (the store rolls the file back to the pre-append
/// length and reports the lost commit); [`FaultMode::TornWrite`] models a
/// crash mid-append — the partial frame stays on disk and recovery must
/// truncate it at the last checksum-valid boundary.
pub const REDO_APPEND: &str = "redo.append";

/// Rotating (truncating) one rank's redo log after a published
/// checkpoint. Non-fatal by design: a stale log tail is skipped at
/// replay because its frames carry a superseded generation.
pub const REDO_ROTATE: &str = "redo.rotate";

/// Publishing the `CURRENT` pointer (tmp write + atomic rename) — the
/// checkpoint commit point. A failure here aborts the checkpoint with
/// the previous snapshot chain still intact and every log replayable.
pub const CURRENT_RENAME: &str = "current.rename";

/// Pruning superseded snapshot directories after a publish (rank 0,
/// best-effort; a failure leaves garbage directories, never data loss).
pub const SNAP_PRUNE: &str = "snap.prune";

/// Reading one rank's snapshot piece during recovery. `Error` models an
/// unreadable file; [`FaultMode::BitFlip`] corrupts the returned bytes so
/// the piece checksum must catch it.
pub const SNAP_READ: &str = "snap.read";

/// Reading the manifest/CURRENT chain during recovery.
pub const MANIFEST_READ: &str = "manifest.read";

/// Reading one rank's redo log during recovery ([`FaultMode::BitFlip`]
/// corrupts a frame so checksum validation must truncate there).
pub const REDO_READ: &str = "redo.read";

/// One rank's phase-3 materialization slice of an elastic reshard; a
/// voted failure aborts the reshard with the previous topology
/// recoverable.
pub const RESHARD_REDISTRIBUTE: &str = "reshard.redistribute";

/// The storage-side fault points in catalog order (fabric points not
/// included): the grid the chaos harness and `chaos_sweep` iterate.
pub const CATALOG: &[&str] = &[
    SNAP_WRITE,
    MANIFEST_WRITE,
    REDO_APPEND,
    REDO_ROTATE,
    CURRENT_RENAME,
    SNAP_PRUNE,
    SNAP_READ,
    MANIFEST_READ,
    REDO_READ,
    RESHARD_REDISTRIBUTE,
];

//! BGDL block management (§5.5).
//!
//! The Blocked Graph Data Layout divides each rank's data window into
//! fixed-size blocks. `acquire_block` / `release_block` are the two basic
//! operations; both are **lock-free** and fully one-sided, following the
//! paper's protocol:
//!
//! *acquire*: (1) `AGET` the tagged free-list head from the system window;
//! (2) `GET` the next-free link of the head block from the usage window;
//! (3) `CAS` the head from the observed value to `(tag+1, next)` — success
//! means no other process raced us, failure restarts at (2) with the value
//! returned by the CAS.
//!
//! The 16-bit tag in the head implements the *tagged pointer* ABA
//! mitigation the paper prescribes: without it, a concurrent
//! release-acquire pair reinstating the same head block would let a stale
//! CAS succeed and corrupt the free list.

use gdi::{GdiError, GdiResult};
use rma::RankCtx;

use crate::config::{GdaConfig, WIN_SYSTEM, WIN_USAGE};
use crate::dptr::{DPtr, TaggedIdx};

/// Word index of the free-list head in the system window.
const HEAD_WORD: usize = 0;

/// Block-pool view bound to a rank context.
pub struct BlockManager<'c, 'f> {
    ctx: &'c RankCtx<'f>,
    cfg: GdaConfig,
}

impl<'c, 'f> BlockManager<'c, 'f> {
    /// Bind a block-pool view to a rank context.
    pub fn new(ctx: &'c RankCtx<'f>, cfg: GdaConfig) -> Self {
        Self { ctx, cfg }
    }

    /// Block size in bytes.
    #[inline]
    pub fn block_size(&self) -> usize {
        self.cfg.block_size
    }

    /// Collective: initialize this rank's free list (blocks `1..=N` linked
    /// in order, block 0 reserved as the null block). Must be called by
    /// every rank before any block traffic; ends with a barrier.
    pub fn init_collective(&self) {
        let me = self.ctx.rank();
        let n = self.cfg.blocks_per_rank;
        for i in 1..=n {
            let next = if i < n { (i + 1) as u64 } else { 0 };
            self.ctx.put_u64(WIN_USAGE, me, i, next);
        }
        self.ctx
            .put_u64(WIN_SYSTEM, me, HEAD_WORD, TaggedIdx::new(0, 1).raw());
        self.ctx.barrier();
    }

    /// Try to allocate one block on `target`. Returns the `DPtr` of the
    /// block, or `GDI_ERROR_NO_MEMORY` if the target's pool is exhausted.
    pub fn acquire(&self, target: usize) -> GdiResult<DPtr> {
        let mut head = TaggedIdx::from_raw(self.ctx.aget_u64(WIN_SYSTEM, target, HEAD_WORD));
        loop {
            let idx = head.idx();
            if idx == 0 {
                return Err(GdiError::OutOfMemory);
            }
            let next = self.ctx.get_u64(WIN_USAGE, target, idx as usize);
            let new_head = head.bump(next);
            let prev = self
                .ctx
                .cas_u64(WIN_SYSTEM, target, HEAD_WORD, head.raw(), new_head.raw());
            if prev == head.raw() {
                return Ok(DPtr::new(target, idx * self.cfg.block_size as u64));
            }
            head = TaggedIdx::from_raw(prev);
        }
    }

    /// Return a block to its owner's pool. The caller must not use the
    /// block afterwards.
    pub fn release(&self, dp: DPtr) {
        debug_assert!(!dp.is_null(), "releasing the null block");
        let target = dp.rank();
        let idx = dp.offset() / self.cfg.block_size as u64;
        debug_assert!(idx >= 1 && idx <= self.cfg.blocks_per_rank as u64);
        let mut head = TaggedIdx::from_raw(self.ctx.aget_u64(WIN_SYSTEM, target, HEAD_WORD));
        loop {
            self.ctx
                .put_u64(WIN_USAGE, target, idx as usize, head.idx());
            let new_head = head.bump(idx);
            let prev = self
                .ctx
                .cas_u64(WIN_SYSTEM, target, HEAD_WORD, head.raw(), new_head.raw());
            if prev == head.raw() {
                return;
            }
            head = TaggedIdx::from_raw(prev);
        }
    }

    /// Claim a *specific* block out of its owner's free list, if it is
    /// free: returns `true` when `dp` was unlinked (the caller now owns
    /// it), `false` when `dp` is not on the free list (already
    /// allocated). **Recovery primitive**: redo-log replay must
    /// materialize objects at their original addresses so that
    /// persisted `DPtr` references stay valid; it walks the quiesced
    /// free list and unlinks the exact block. Requires quiescence — the
    /// walk-then-unlink is not safe against concurrent pool traffic.
    pub fn acquire_at(&self, dp: DPtr) -> bool {
        debug_assert!(!dp.is_null(), "claiming the null block");
        let target = dp.rank();
        let want = dp.offset() / self.cfg.block_size as u64;
        debug_assert!(want >= 1 && want <= self.cfg.blocks_per_rank as u64);
        let head = TaggedIdx::from_raw(self.ctx.aget_u64(WIN_SYSTEM, target, HEAD_WORD));
        let mut cur = head.idx();
        if cur == 0 {
            return false;
        }
        if cur == want {
            let next = self.ctx.get_u64(WIN_USAGE, target, want as usize);
            self.ctx
                .put_u64(WIN_SYSTEM, target, HEAD_WORD, head.bump(next).raw());
            return true;
        }
        let mut steps = 0usize;
        loop {
            let next = self.ctx.get_u64(WIN_USAGE, target, cur as usize);
            if next == 0 {
                return false;
            }
            if next == want {
                let after = self.ctx.get_u64(WIN_USAGE, target, want as usize);
                self.ctx.put_u64(WIN_USAGE, target, cur as usize, after);
                return true;
            }
            cur = next;
            steps += 1;
            assert!(
                steps <= self.cfg.blocks_per_rank,
                "free-list cycle during acquire_at"
            );
        }
    }

    /// Rebuild `target`'s free list in **ascending block order**.
    /// Sustained acquire/release churn leaves the LIFO list in arrival
    /// order, so a block freed long ago can sit behind hundreds of
    /// recently freed ones; after a vacuum, `acquire` hands out the
    /// lowest-numbered free blocks first, which keeps live data packed
    /// at the front of the window (smaller deltas, better scan
    /// locality) and gives [`BlockManager::acquire_at`] short walks at
    /// recovery. **Maintenance primitive** — requires quiescence, like
    /// [`BlockManager::acquire_at`]: the walk-then-rewrite is not safe
    /// against concurrent pool traffic. Returns the free-block count.
    pub fn vacuum_free_list(&self, target: usize) -> usize {
        let head = TaggedIdx::from_raw(self.ctx.aget_u64(WIN_SYSTEM, target, HEAD_WORD));
        let mut idx = head.idx();
        let mut free = Vec::new();
        while idx != 0 {
            free.push(idx);
            idx = self.ctx.get_u64(WIN_USAGE, target, idx as usize);
            assert!(
                free.len() <= self.cfg.blocks_per_rank,
                "free-list cycle during vacuum"
            );
        }
        free.sort_unstable();
        for (i, &b) in free.iter().enumerate() {
            let next = free.get(i + 1).copied().unwrap_or(0);
            self.ctx.put_u64(WIN_USAGE, target, b as usize, next);
        }
        let new_head = free.first().copied().unwrap_or(0);
        // the tag still bumps: a stale CAS from before the vacuum must
        // not succeed against the rebuilt list
        self.ctx
            .put_u64(WIN_SYSTEM, target, HEAD_WORD, head.bump(new_head).raw());
        self.ctx.flush(target);
        free.len()
    }

    /// Count the free blocks on `target` by walking the free list (O(n);
    /// diagnostic only — not part of the hot path).
    pub fn count_free(&self, target: usize) -> usize {
        let head = TaggedIdx::from_raw(self.ctx.aget_u64(WIN_SYSTEM, target, HEAD_WORD));
        let mut idx = head.idx();
        let mut n = 0;
        while idx != 0 {
            n += 1;
            idx = self.ctx.get_u64(WIN_USAGE, target, idx as usize);
            if n > self.cfg.blocks_per_rank {
                panic!("free-list cycle detected");
            }
        }
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rma::CostModel;
    use std::collections::HashSet;

    fn setup(nranks: usize) -> (rma::Fabric, GdaConfig) {
        let cfg = GdaConfig::tiny();
        (cfg.build_fabric(nranks, CostModel::zero()), cfg)
    }

    #[test]
    fn acquire_returns_distinct_blocks() {
        let (f, cfg) = setup(1);
        f.run(|ctx| {
            let bm = BlockManager::new(ctx, cfg);
            bm.init_collective();
            let mut seen = HashSet::new();
            for _ in 0..cfg.blocks_per_rank {
                let dp = bm.acquire(0).unwrap();
                assert!(seen.insert(dp), "duplicate block {dp}");
                assert!(!dp.is_null());
                assert!(dp.offset().is_multiple_of(cfg.block_size as u64));
            }
            assert_eq!(bm.acquire(0), Err(GdiError::OutOfMemory));
        });
    }

    #[test]
    fn release_makes_blocks_reusable() {
        let (f, cfg) = setup(1);
        f.run(|ctx| {
            let bm = BlockManager::new(ctx, cfg);
            bm.init_collective();
            let a = bm.acquire(0).unwrap();
            let b = bm.acquire(0).unwrap();
            let free_before = bm.count_free(0);
            bm.release(a);
            bm.release(b);
            assert_eq!(bm.count_free(0), free_before + 2);
            // drain fully: all blocks come back
            let mut n = 0;
            while bm.acquire(0).is_ok() {
                n += 1;
            }
            assert_eq!(n, cfg.blocks_per_rank);
        });
    }

    #[test]
    fn acquire_at_claims_specific_blocks() {
        let (f, cfg) = setup(1);
        f.run(|ctx| {
            let bm = BlockManager::new(ctx, cfg);
            bm.init_collective();
            // claim a block from the middle of the pristine list
            let mid = DPtr::new(0, (cfg.blocks_per_rank / 2) as u64 * cfg.block_size as u64);
            assert!(bm.acquire_at(mid));
            assert!(!bm.acquire_at(mid), "already claimed");
            assert_eq!(bm.count_free(0), cfg.blocks_per_rank - 1);
            // the head block is claimable too
            let head = bm.acquire(0).unwrap();
            bm.release(head);
            assert!(bm.acquire_at(head));
            // ordinary allocation never hands out a claimed block
            let mut seen = HashSet::new();
            while let Ok(dp) = bm.acquire(0) {
                assert!(seen.insert(dp));
                assert_ne!(dp, mid);
                assert_ne!(dp, head);
            }
            assert_eq!(seen.len(), cfg.blocks_per_rank - 2);
            // released claims come back through the ordinary path
            bm.release(mid);
            assert_eq!(bm.acquire(0).unwrap(), mid);
        });
    }

    #[test]
    fn remote_acquire_and_release() {
        let (f, cfg) = setup(2);
        f.run(|ctx| {
            let bm = BlockManager::new(ctx, cfg);
            bm.init_collective();
            if ctx.rank() == 0 {
                // rank 0 allocates on rank 1 and gives the block back
                let dp = bm.acquire(1).unwrap();
                assert_eq!(dp.rank(), 1);
                bm.release(dp);
            }
            ctx.barrier();
            if ctx.rank() == 1 {
                assert_eq!(bm.count_free(1), cfg.blocks_per_rank);
            }
        });
    }

    #[test]
    fn concurrent_acquire_no_double_allocation() {
        // All ranks hammer rank 0's pool concurrently; the union of
        // allocations must be duplicate-free and complete.
        let (f, cfg) = setup(8);
        let got = f.run(|ctx| {
            let bm = BlockManager::new(ctx, cfg);
            bm.init_collective();
            let per_rank = cfg.blocks_per_rank / 8;
            let mut mine = Vec::new();
            for _ in 0..per_rank {
                mine.push(bm.acquire(0).unwrap());
            }
            ctx.barrier();
            mine
        });
        let all: Vec<DPtr> = got.into_iter().flatten().collect();
        let uniq: HashSet<DPtr> = all.iter().copied().collect();
        assert_eq!(all.len(), uniq.len(), "double allocation detected");
        assert_eq!(all.len(), (GdaConfig::tiny().blocks_per_rank / 8) * 8);
    }

    #[test]
    fn concurrent_acquire_release_churn() {
        // Acquire/release churn across ranks; afterwards every block must be
        // back in the pool exactly once (ABA / lost-block detector).
        let (f, cfg) = setup(4);
        f.run(|ctx| {
            let bm = BlockManager::new(ctx, cfg);
            bm.init_collective();
            for round in 0..50 {
                let t = (ctx.rank() + round) % ctx.nranks();
                let mut held = Vec::new();
                for _ in 0..4 {
                    if let Ok(dp) = bm.acquire(t) {
                        held.push(dp);
                    }
                }
                for dp in held {
                    bm.release(dp);
                }
            }
            ctx.barrier();
            if ctx.rank() == 0 {
                for r in 0..ctx.nranks() {
                    assert_eq!(bm.count_free(r), cfg.blocks_per_rank, "rank {r}");
                }
            }
        });
    }
}

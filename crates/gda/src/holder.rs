//! Vertex and edge *holders* — the Logical Layout level (§5.4).
//!
//! A holder is the logically contiguous, flexible-size structure describing
//! one vertex (or one heavyweight edge): management metadata, the list of
//! lightweight edge records, and the label/property entries. Holders are
//! assembled and edited in local memory and only translated to fixed-size
//! BGDL blocks when written back (see [`crate::hio`]), which is exactly the
//! paper's split between the graph-centric LL API and the block-centric
//! BGDL level.
//!
//! ### Serialized layout
//!
//! ```text
//! header  (48 B): total_len:u32 | num_edges:u32 | entries_bytes:u32 |
//!                 flags:u32 | app_id:u64 | version:u64 |
//!                 commit_epoch:u64 | prev:u64
//! edges   (24 B each): target:u64 | edge_holder:u64 | label:u32 |
//!                 dir:u8 | eflags:u8 | pad:u16
//! entries (8 B header + padded data): id:u32 | len:u32 | data…pad8
//! ```
//!
//! `commit_epoch` is the global commit epoch the version became visible
//! at (0 = bulk-loaded / pre-MVCC, visible to every snapshot). `prev`
//! is the raw `DPtr` of the archived previous version's chain head
//! (NULL if none) — the MVCC version chain snapshot reads walk. Flag
//! bits 16..24 carry the archive-chain depth (see [`Holder::depth`]).
//!
//! Entry ids follow §5.4.3: `ENTRY_LABEL` (2) tags a label entry whose data
//! is the label integer id; ids `>= FIRST_PTYPE_ID` are property entries of
//! that p-type.

use gdi::{Direction, LabelId, PTypeId, ENTRY_LABEL, FIRST_PTYPE_ID};

use crate::dptr::DPtr;

/// Bytes of one serialized edge record.
pub const EDGE_RECORD_BYTES: usize = 24;
/// Bytes of the serialized holder header.
pub const HEADER_BYTES: usize = 48;
/// Holder flag: this holder describes a (heavyweight) edge, not a vertex.
pub const FLAG_EDGE_HOLDER: u32 = 1;
/// Byte offset of the `commit_epoch` field within a serialized holder
/// (persistence reads it straight out of redo-record bytes to re-derive
/// the watermark after a crash).
pub const COMMIT_EPOCH_OFFSET: usize = 32;
/// Mask of the archive-chain **depth** packed into flag bits 16..24.
pub(crate) const DEPTH_MASK: u32 = 0xFF << 16;
/// Byte offset of the `prev` (archived version chain head) field within
/// a serialized holder — patched **in place** by chain truncation and
/// the maintenance vacuum (one aligned word write) to seal a truncated
/// chain, so no later walk follows a freed link.
pub(crate) const PREV_OFFSET: usize = 40;
/// Byte offset of the word holding `entries_bytes` (low half) and the
/// flags+depth word (high half) within a serialized holder — the word
/// the maintenance vacuum rewrites to patch the archive depth in place.
pub(crate) const FLAGS_WORD_OFFSET: usize = 24;
/// Flag bits that may legitimately be set on a serialized holder.
const KNOWN_FLAGS: u32 = FLAG_EDGE_HOLDER | DEPTH_MASK;

/// A lightweight edge record stored inside a vertex holder (§5.4.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EdgeRecord {
    /// `DPtr` of the other endpoint's vertex holder.
    pub target: DPtr,
    /// `DPtr` of a heavyweight edge holder carrying extra labels/properties,
    /// or NULL for a pure lightweight edge (≤ 1 label, no properties).
    pub edge_holder: DPtr,
    /// The single label of a lightweight edge (0 = unlabeled).
    pub label: u32,
    /// Direction of the edge relative to the vertex storing this record.
    pub dir: Direction,
    /// Record flags (bit 0: tombstone — slot kept to preserve edge-UID
    /// offsets of later records within a transaction).
    pub flags: u8,
}

impl EdgeRecord {
    /// Flag bit marking a tombstoned (removed) record.
    pub const TOMBSTONE: u8 = 1;

    /// A lightweight record (no heavy holder) to `target`.
    pub fn lightweight(target: DPtr, label: u32, dir: Direction) -> Self {
        Self {
            target,
            edge_holder: DPtr::NULL,
            label,
            dir,
            flags: 0,
        }
    }

    /// Is this record tombstoned?
    pub fn is_tombstone(&self) -> bool {
        self.flags & Self::TOMBSTONE != 0
    }

    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.target.raw().to_le_bytes());
        out.extend_from_slice(&self.edge_holder.raw().to_le_bytes());
        out.extend_from_slice(&self.label.to_le_bytes());
        out.push(self.dir as u8);
        out.push(self.flags);
        out.extend_from_slice(&[0u8; 2]);
    }

    fn decode(b: &[u8]) -> Option<Self> {
        let target = DPtr::from_raw(u64::from_le_bytes(b[0..8].try_into().unwrap()));
        let edge_holder = DPtr::from_raw(u64::from_le_bytes(b[8..16].try_into().unwrap()));
        let label = u32::from_le_bytes(b[16..20].try_into().unwrap());
        let dir = Direction::from_u8(b[20])?;
        let flags = b[21];
        Some(Self {
            target,
            edge_holder,
            label,
            dir,
            flags,
        })
    }
}

/// One label or property entry (§5.4.3).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Entry {
    /// `ENTRY_LABEL` for labels; a p-type integer id (`>= FIRST_PTYPE_ID`)
    /// for properties.
    pub id: u32,
    /// Raw value bytes (for a label: the 4-byte LE label id).
    pub data: Vec<u8>,
}

impl Entry {
    /// A label entry.
    pub fn label(label: LabelId) -> Self {
        Self {
            id: ENTRY_LABEL,
            data: label.0.to_le_bytes().to_vec(),
        }
    }

    /// A property entry of `ptype` with raw value bytes.
    pub fn property(ptype: PTypeId, data: Vec<u8>) -> Self {
        debug_assert!(ptype.0 >= FIRST_PTYPE_ID);
        Self { id: ptype.0, data }
    }

    /// The label id, if this is a label entry.
    pub fn as_label(&self) -> Option<LabelId> {
        if self.id == ENTRY_LABEL && self.data.len() == 4 {
            Some(LabelId(u32::from_le_bytes(
                self.data[..].try_into().unwrap(),
            )))
        } else {
            None
        }
    }

    /// Is this a property entry of `ptype`?
    pub fn is_property_of(&self, ptype: PTypeId) -> bool {
        self.id == ptype.0
    }

    /// Serialized size including the 8-byte entry header and padding.
    pub fn encoded_len(&self) -> usize {
        8 + self.data.len().div_ceil(8) * 8
    }
}

/// A decoded holder: the Logical Layout view of one vertex or heavy edge.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Holder {
    /// Application-level id (vertices only; 0 for edge holders).
    pub app_id: u64,
    /// Is this an edge holder?
    pub is_edge: bool,
    /// Version counter, bumped on every write-back. Under MVCC this is
    /// the rank-unique commit stamp also written into every block's
    /// stamp word (the torn-read seqlock validator, see `crate::hio`).
    pub version: u64,
    /// Global commit epoch this version became visible at (0 =
    /// bulk-loaded / pre-MVCC: visible to every snapshot).
    pub commit_epoch: u64,
    /// Raw `DPtr` of the archived previous version's chain head, or
    /// `DPtr::NULL` if none survives. Archives are immutable; dangling
    /// pointers below the truncation floor are never followed.
    pub prev: u64,
    /// Archive-chain depth behind this version (saturating at 255).
    pub depth: u8,
    /// Lightweight edge records (vertices) or the two endpoints (edges).
    pub edges: Vec<EdgeRecord>,
    /// Label and property entries.
    pub entries: Vec<Entry>,
}

impl Holder {
    /// A fresh vertex holder.
    pub fn new_vertex(app_id: u64) -> Self {
        Self {
            app_id,
            ..Default::default()
        }
    }

    /// A fresh edge holder for a heavy edge between `origin` and `target`.
    pub fn new_edge(origin: DPtr, target: DPtr) -> Self {
        Self {
            is_edge: true,
            edges: vec![
                EdgeRecord::lightweight(origin, 0, Direction::Out),
                EdgeRecord::lightweight(target, 0, Direction::In),
            ],
            ..Default::default()
        }
    }

    // ----- labels ---------------------------------------------------------

    /// All labels on the element.
    pub fn labels(&self) -> Vec<LabelId> {
        self.entries.iter().filter_map(Entry::as_label).collect()
    }

    /// Does the element carry `label`?
    pub fn has_label(&self, label: LabelId) -> bool {
        self.entries.iter().any(|e| e.as_label() == Some(label))
    }

    /// Add a label; no-op if already present. Returns whether it was added.
    pub fn add_label(&mut self, label: LabelId) -> bool {
        if self.has_label(label) {
            return false;
        }
        self.entries.push(Entry::label(label));
        true
    }

    /// Remove a label. Returns whether it was present.
    pub fn remove_label(&mut self, label: LabelId) -> bool {
        let before = self.entries.len();
        self.entries.retain(|e| e.as_label() != Some(label));
        self.entries.len() != before
    }

    // ----- properties ------------------------------------------------------

    /// Raw bytes of all property entries of `ptype`, in entry order.
    pub fn properties_raw(&self, ptype: PTypeId) -> Vec<&[u8]> {
        self.entries
            .iter()
            .filter(|e| e.is_property_of(ptype))
            .map(|e| e.data.as_slice())
            .collect()
    }

    /// Append a property entry.
    pub fn add_property(&mut self, ptype: PTypeId, data: Vec<u8>) {
        self.entries.push(Entry::property(ptype, data));
    }

    /// Replace the first entry of `ptype` (insert if absent) — the `Single`
    /// multiplicity update path.
    pub fn set_property(&mut self, ptype: PTypeId, data: Vec<u8>) {
        if let Some(e) = self.entries.iter_mut().find(|e| e.is_property_of(ptype)) {
            e.data = data;
        } else {
            self.add_property(ptype, data);
        }
    }

    /// Remove all entries of `ptype`. Returns the number removed.
    pub fn remove_property(&mut self, ptype: PTypeId) -> usize {
        let before = self.entries.len();
        self.entries.retain(|e| !e.is_property_of(ptype));
        before - self.entries.len()
    }

    /// Remove every property entry (keeps labels) —
    /// `GDI_RemoveAllPropertiesFromVertex`.
    pub fn remove_all_properties(&mut self) -> usize {
        let before = self.entries.len();
        self.entries.retain(|e| e.id == ENTRY_LABEL);
        before - self.entries.len()
    }

    /// All distinct p-type ids present — `GDI_GetAllPropertyTypesOf…`.
    pub fn ptypes(&self) -> Vec<PTypeId> {
        let mut v: Vec<PTypeId> = self
            .entries
            .iter()
            .filter(|e| e.id >= FIRST_PTYPE_ID)
            .map(|e| PTypeId(e.id))
            .collect();
        v.sort_unstable();
        v.dedup();
        v
    }

    // ----- edges -----------------------------------------------------------

    /// Live (non-tombstoned) edge records with their slots.
    pub fn live_edges(&self) -> impl Iterator<Item = (u32, &EdgeRecord)> {
        self.edges
            .iter()
            .enumerate()
            .filter(|(_, e)| !e.is_tombstone())
            .map(|(i, e)| (i as u32, e))
    }

    /// Number of live edges.
    pub fn edge_count(&self) -> usize {
        self.edges.iter().filter(|e| !e.is_tombstone()).count()
    }

    /// Append an edge record; returns its slot (stable edge-UID offset).
    pub fn push_edge(&mut self, rec: EdgeRecord) -> u32 {
        self.edges.push(rec);
        (self.edges.len() - 1) as u32
    }

    /// Tombstone the edge record in `slot`. Returns the record if it was
    /// live.
    pub fn remove_edge(&mut self, slot: u32) -> Option<EdgeRecord> {
        let rec = self.edges.get_mut(slot as usize)?;
        if rec.is_tombstone() {
            return None;
        }
        let out = *rec;
        rec.flags |= EdgeRecord::TOMBSTONE;
        Some(out)
    }

    /// Drop trailing/interior tombstones (compaction at write-back; edge
    /// UIDs are volatile across transactions, §3.4, so compaction between
    /// transactions is legal).
    pub fn compact_edges(&mut self) {
        self.edges.retain(|e| !e.is_tombstone());
    }

    // ----- serialization ---------------------------------------------------

    /// Serialized size in bytes.
    pub fn encoded_len(&self) -> usize {
        HEADER_BYTES
            + self.edges.len() * EDGE_RECORD_BYTES
            + self.entries.iter().map(Entry::encoded_len).sum::<usize>()
    }

    /// Serialize to the on-block byte layout.
    pub fn encode(&self) -> Vec<u8> {
        let total = self.encoded_len();
        let mut out = Vec::with_capacity(total);
        let entries_bytes: usize = self.entries.iter().map(Entry::encoded_len).sum();
        out.extend_from_slice(&(total as u32).to_le_bytes());
        out.extend_from_slice(&(self.edges.len() as u32).to_le_bytes());
        out.extend_from_slice(&(entries_bytes as u32).to_le_bytes());
        let flags = if self.is_edge { FLAG_EDGE_HOLDER } else { 0 } | ((self.depth as u32) << 16);
        out.extend_from_slice(&flags.to_le_bytes());
        out.extend_from_slice(&self.app_id.to_le_bytes());
        out.extend_from_slice(&self.version.to_le_bytes());
        out.extend_from_slice(&self.commit_epoch.to_le_bytes());
        out.extend_from_slice(&self.prev.to_le_bytes());
        for e in &self.edges {
            e.encode(&mut out);
        }
        for e in &self.entries {
            out.extend_from_slice(&e.id.to_le_bytes());
            out.extend_from_slice(&(e.data.len() as u32).to_le_bytes());
            out.extend_from_slice(&e.data);
            let pad = e.data.len().div_ceil(8) * 8 - e.data.len();
            out.extend_from_slice(&[0u8; 8][..pad]);
        }
        debug_assert_eq!(out.len(), total);
        out
    }

    /// Total length field of a serialized holder (peek at the first bytes).
    pub fn peek_total_len(bytes: &[u8]) -> usize {
        u32::from_le_bytes(bytes[0..4].try_into().unwrap()) as usize
    }

    /// Decode from the on-block byte layout. Panics on corrupt input; use
    /// [`Holder::try_decode`] for bytes fetched from shared memory, where a
    /// stale internal id may point at storage that was reclaimed and
    /// reused by another object (§3.4: volatile ids).
    pub fn decode(bytes: &[u8]) -> Self {
        Self::try_decode(bytes).expect("corrupt holder bytes")
    }

    /// Defensive decode: structural validation of every field, `None` on
    /// any inconsistency.
    pub fn try_decode(bytes: &[u8]) -> Option<Self> {
        if bytes.len() < HEADER_BYTES {
            return None;
        }
        let total = Self::peek_total_len(bytes);
        if total < HEADER_BYTES || bytes.len() < total {
            return None;
        }
        let num_edges = u32::from_le_bytes(bytes[4..8].try_into().unwrap()) as usize;
        let entries_bytes = u32::from_le_bytes(bytes[8..12].try_into().unwrap()) as usize;
        let flags = u32::from_le_bytes(bytes[12..16].try_into().unwrap());
        if flags & !KNOWN_FLAGS != 0 {
            return None;
        }
        if HEADER_BYTES + num_edges * EDGE_RECORD_BYTES + entries_bytes != total {
            return None;
        }
        let app_id = u64::from_le_bytes(bytes[16..24].try_into().unwrap());
        let version = u64::from_le_bytes(bytes[24..32].try_into().unwrap());
        let commit_epoch = u64::from_le_bytes(bytes[32..40].try_into().unwrap());
        let prev = u64::from_le_bytes(bytes[40..48].try_into().unwrap());
        let mut edges = Vec::with_capacity(num_edges);
        let mut off = HEADER_BYTES;
        for _ in 0..num_edges {
            edges.push(EdgeRecord::decode(&bytes[off..off + EDGE_RECORD_BYTES])?);
            off += EDGE_RECORD_BYTES;
        }
        let mut entries = Vec::new();
        let end = off + entries_bytes;
        while off < end {
            if off + 8 > end {
                return None;
            }
            let id = u32::from_le_bytes(bytes[off..off + 4].try_into().unwrap());
            let len = u32::from_le_bytes(bytes[off + 4..off + 8].try_into().unwrap()) as usize;
            if off + 8 + len > end {
                return None;
            }
            let data = bytes[off + 8..off + 8 + len].to_vec();
            entries.push(Entry { id, data });
            off += 8 + len.div_ceil(8) * 8;
        }
        if off != end {
            return None;
        }
        Some(Self {
            app_id,
            is_edge: flags & FLAG_EDGE_HOLDER != 0,
            version,
            commit_epoch,
            prev,
            depth: ((flags & DEPTH_MASK) >> 16) as u8,
            edges,
            entries,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Holder {
        let mut h = Holder::new_vertex(42);
        h.add_label(LabelId(10));
        h.add_label(LabelId(11));
        h.add_property(PTypeId(3), vec![1, 2, 3]);
        h.add_property(PTypeId(4), 77u64.to_le_bytes().to_vec());
        h.push_edge(EdgeRecord::lightweight(
            DPtr::new(1, 512),
            5,
            Direction::Out,
        ));
        h.push_edge(EdgeRecord::lightweight(
            DPtr::new(2, 1024),
            6,
            Direction::In,
        ));
        h
    }

    #[test]
    fn encode_decode_roundtrip() {
        let h = sample();
        let bytes = h.encode();
        assert_eq!(bytes.len(), h.encoded_len());
        assert_eq!(Holder::peek_total_len(&bytes), bytes.len());
        let d = Holder::decode(&bytes);
        assert_eq!(d, h);
    }

    #[test]
    fn empty_holder_roundtrip() {
        let h = Holder::new_vertex(0);
        let d = Holder::decode(&h.encode());
        assert_eq!(d, h);
        assert_eq!(h.encoded_len(), HEADER_BYTES);
    }

    #[test]
    fn edge_holder_roundtrip() {
        let h = Holder::new_edge(DPtr::new(0, 128), DPtr::new(3, 256));
        let d = Holder::decode(&h.encode());
        assert!(d.is_edge);
        assert_eq!(d.edges.len(), 2);
        assert_eq!(d.edges[0].dir, Direction::Out);
        assert_eq!(d.edges[1].dir, Direction::In);
    }

    #[test]
    fn label_crud() {
        let mut h = Holder::new_vertex(1);
        assert!(h.add_label(LabelId(5)));
        assert!(!h.add_label(LabelId(5)), "duplicate add is a no-op");
        assert!(h.has_label(LabelId(5)));
        assert_eq!(h.labels(), vec![LabelId(5)]);
        assert!(h.remove_label(LabelId(5)));
        assert!(!h.remove_label(LabelId(5)));
        assert!(h.labels().is_empty());
    }

    #[test]
    fn property_crud() {
        let mut h = Holder::new_vertex(1);
        h.add_property(PTypeId(3), vec![1]);
        h.add_property(PTypeId(3), vec![2]);
        assert_eq!(h.properties_raw(PTypeId(3)), vec![&[1][..], &[2][..]]);
        h.set_property(PTypeId(3), vec![9]);
        assert_eq!(h.properties_raw(PTypeId(3)), vec![&[9][..], &[2][..]]);
        assert_eq!(h.remove_property(PTypeId(3)), 2);
        assert!(h.properties_raw(PTypeId(3)).is_empty());
    }

    #[test]
    fn remove_all_properties_keeps_labels() {
        let mut h = sample();
        let removed = h.remove_all_properties();
        assert_eq!(removed, 2);
        assert_eq!(h.labels().len(), 2);
        assert!(h.ptypes().is_empty());
    }

    #[test]
    fn ptypes_sorted_deduped() {
        let mut h = Holder::new_vertex(1);
        h.add_property(PTypeId(9), vec![]);
        h.add_property(PTypeId(3), vec![]);
        h.add_property(PTypeId(9), vec![1]);
        assert_eq!(h.ptypes(), vec![PTypeId(3), PTypeId(9)]);
    }

    #[test]
    fn edge_tombstones_preserve_slots() {
        let mut h = sample();
        assert_eq!(h.edge_count(), 2);
        let removed = h.remove_edge(0).unwrap();
        assert_eq!(removed.label, 5);
        assert_eq!(h.edge_count(), 1);
        assert!(h.remove_edge(0).is_none(), "double remove");
        assert!(h.remove_edge(99).is_none(), "bad slot");
        // slot 1 still addresses the same record
        let live: Vec<u32> = h.live_edges().map(|(s, _)| s).collect();
        assert_eq!(live, vec![1]);
        h.compact_edges();
        assert_eq!(h.edges.len(), 1);
    }

    #[test]
    fn entry_padding_alignment() {
        for len in 0..=17 {
            let e = Entry::property(PTypeId(3), vec![0xAB; len]);
            assert!(e.encoded_len().is_multiple_of(8));
            assert!(e.encoded_len() >= 8 + len);
        }
    }

    #[test]
    fn odd_sized_properties_roundtrip() {
        let mut h = Holder::new_vertex(7);
        for len in [0usize, 1, 7, 8, 9, 15, 16, 17, 63] {
            h.add_property(PTypeId(3 + len as u32), vec![len as u8; len]);
        }
        let d = Holder::decode(&h.encode());
        assert_eq!(d, h);
    }

    #[test]
    fn version_survives_roundtrip() {
        let mut h = sample();
        h.version = 9000;
        assert_eq!(Holder::decode(&h.encode()).version, 9000);
    }

    #[test]
    fn mvcc_fields_survive_roundtrip() {
        let mut h = sample();
        h.commit_epoch = 77;
        h.prev = DPtr::new(1, 4096).raw();
        h.depth = 3;
        let bytes = h.encode();
        assert_eq!(
            u64::from_le_bytes(
                bytes[COMMIT_EPOCH_OFFSET..COMMIT_EPOCH_OFFSET + 8]
                    .try_into()
                    .unwrap()
            ),
            77,
            "commit_epoch must sit at the fixed header offset"
        );
        let d = Holder::decode(&bytes);
        assert_eq!(d, h);
        assert_eq!(d.depth, 3);
        // an unknown flag bit outside FLAG_EDGE_HOLDER | depth is corrupt
        let mut bad = bytes.clone();
        bad[15] |= 0x80; // flags bit 31
        assert!(Holder::try_decode(&bad).is_none());
    }
}

//! Failure-injection tests: resource exhaustion, conflicting workloads and
//! recovery behaviour. A transaction that hits an error must leave the
//! database exactly as it found it (atomicity) and release every resource
//! (no leaked blocks, locks, or DHT entries).

use gda::blocks::BlockManager;
use gda::{GdaConfig, GdaDb};
use gdi::{
    AccessMode, AppVertexId, CmpOp, Constraint, Datatype, EdgeOrientation, EntityType, GdiError,
    Multiplicity, PropertyValue, SizeType, Subconstraint,
};
use rma::CostModel;

/// A pool so small that a handful of vertices exhausts it.
fn starved_cfg() -> GdaConfig {
    GdaConfig {
        block_size: 128,
        blocks_per_rank: 8,
        dht_buckets_per_rank: 8,
        dht_heap_per_rank: 8,
        max_lock_retries: 8,
        ..GdaConfig::tiny()
    }
}

#[test]
fn out_of_blocks_fails_cleanly_and_recovers() {
    let cfg = starved_cfg();
    let (db, fabric) = GdaDb::with_fabric("oom", cfg, 1, CostModel::zero());
    fabric.run(|ctx| {
        let eng = db.attach(ctx);
        eng.init_collective();

        // exhaust the pool inside one transaction
        let tx = eng.begin(AccessMode::ReadWrite);
        let mut created = 0u64;
        loop {
            match tx.create_vertex(AppVertexId(created + 1)) {
                Ok(_) => created += 1,
                Err(GdiError::OutOfMemory) => break,
                Err(e) => panic!("unexpected error: {e}"),
            }
            assert!(created < 100, "pool should have been exhausted");
        }
        assert!(created > 0);
        tx.abort(); // give everything back

        // full capacity must be available again
        let bm = BlockManager::new(ctx, cfg);
        assert_eq!(bm.count_free(0), cfg.blocks_per_rank);

        // and a committed transaction of the same size succeeds now
        let tx = eng.begin(AccessMode::ReadWrite);
        for i in 0..created {
            tx.create_vertex(AppVertexId(1000 + i)).unwrap();
        }
        tx.commit().unwrap();
    });
}

#[test]
fn dht_heap_exhaustion_surfaces_at_commit() {
    // heap of 8 entries, but plenty of blocks: creating more vertices than
    // DHT entries must fail at the insert step without corrupting the map
    let cfg = GdaConfig {
        blocks_per_rank: 128,
        ..starved_cfg()
    };
    let (db, fabric) = GdaDb::with_fabric("dhtoom", cfg, 1, CostModel::zero());
    fabric.run(|ctx| {
        let eng = db.attach(ctx);
        eng.init_collective();
        let mut committed = 0;
        for i in 0..20u64 {
            let tx = eng.begin(AccessMode::ReadWrite);
            if tx.create_vertex(AppVertexId(i)).is_ok() && tx.commit().is_ok() {
                committed += 1;
            }
        }
        assert!(
            committed >= cfg.dht_heap_per_rank.min(8),
            "committed {committed}"
        );
        // every committed vertex is still resolvable
        let tx = eng.begin(AccessMode::ReadOnly);
        let mut found = 0;
        for i in 0..20u64 {
            if tx.translate_vertex_id(AppVertexId(i)).is_ok() {
                found += 1;
            }
        }
        tx.commit().unwrap();
        assert_eq!(found, committed);
    });
}

#[test]
fn failed_transactions_leave_no_partial_writes() {
    let cfg = GdaConfig::tiny();
    let (db, fabric) = GdaDb::with_fabric("atomic", cfg, 2, CostModel::zero());
    fabric.run(|ctx| {
        let eng = db.attach(ctx);
        eng.init_collective();
        let age = if ctx.rank() == 0 {
            eng.create_ptype(
                "a",
                Datatype::Uint64,
                EntityType::Vertex,
                Multiplicity::Single,
                SizeType::Fixed,
                1,
            )
            .ok()
        } else {
            None
        };
        ctx.barrier();
        eng.refresh_meta();
        let age = age.unwrap_or_else(|| eng.meta().ptype_from_name("a").unwrap());
        if ctx.rank() == 0 {
            let tx = eng.begin(AccessMode::ReadWrite);
            let v = tx.create_vertex(AppVertexId(1)).unwrap();
            tx.add_property(v, age, &PropertyValue::U64(100)).unwrap();
            let w = tx.create_vertex(AppVertexId(2)).unwrap();
            tx.add_edge(v, w, None, true).unwrap();
            tx.commit().unwrap();
        }
        ctx.barrier();

        // rank 1 starts a multi-object mutation and aborts midway
        if ctx.rank() == 1 {
            let tx = eng.begin(AccessMode::ReadWrite);
            let v = tx.translate_vertex_id(AppVertexId(1)).unwrap();
            let w = tx.translate_vertex_id(AppVertexId(2)).unwrap();
            tx.update_property(v, age, &PropertyValue::U64(999))
                .unwrap();
            tx.delete_edge(tx.edges(v, EdgeOrientation::Outgoing).unwrap()[0])
                .unwrap();
            tx.delete_vertex(w).unwrap();
            tx.abort(); // none of the above may be visible
        }
        ctx.barrier();

        let tx = eng.begin(AccessMode::ReadOnly);
        let v = tx.translate_vertex_id(AppVertexId(1)).unwrap();
        assert_eq!(tx.property(v, age).unwrap(), Some(PropertyValue::U64(100)));
        assert_eq!(tx.edge_count(v, EdgeOrientation::Outgoing).unwrap(), 1);
        assert!(tx.translate_vertex_id(AppVertexId(2)).is_ok());
        tx.commit().unwrap();
    });
}

#[test]
fn lock_conflict_storm_never_corrupts_edges() {
    // many ranks add/delete edges between the same two hot vertices; after
    // the storm both endpoints must agree on the edge count
    let cfg = GdaConfig {
        blocks_per_rank: 2048,
        dht_buckets_per_rank: 64,
        dht_heap_per_rank: 256,
        ..GdaConfig::tiny()
    };
    let (db, fabric) = GdaDb::with_fabric("storm", cfg, 6, CostModel::zero());
    fabric.run(|ctx| {
        let eng = db.attach(ctx);
        eng.init_collective();
        if ctx.rank() == 0 {
            let tx = eng.begin(AccessMode::ReadWrite);
            tx.create_vertex(AppVertexId(1)).unwrap();
            tx.create_vertex(AppVertexId(2)).unwrap();
            tx.commit().unwrap();
        }
        ctx.barrier();
        let mut net_added = 0i64;
        for round in 0..30 {
            let tx = eng.begin(AccessMode::ReadWrite);
            let r = (|| {
                let a = tx.translate_vertex_id(AppVertexId(1))?;
                let b = tx.translate_vertex_id(AppVertexId(2))?;
                if round % 3 == 0 {
                    // try deleting one of our previously added edges
                    let es = tx.edges(a, EdgeOrientation::Outgoing)?;
                    if let Some(&e) = es.first() {
                        tx.delete_edge(e)?;
                        return Ok::<i64, GdiError>(-1);
                    }
                }
                tx.add_edge(a, b, None, true)?;
                Ok(1)
            })();
            match r {
                Ok(delta) => {
                    if tx.commit().is_ok() {
                        net_added += delta;
                    }
                }
                Err(_) => tx.abort(),
            }
        }
        ctx.barrier();
        let total: u64 = ctx.allreduce_sum_u64(net_added.max(0) as u64)
            - ctx.allreduce_sum_u64((-net_added).max(0) as u64);
        let tx = eng.begin(AccessMode::ReadOnly);
        let a = tx.translate_vertex_id(AppVertexId(1)).unwrap();
        let b = tx.translate_vertex_id(AppVertexId(2)).unwrap();
        let out_a = tx.edge_count(a, EdgeOrientation::Outgoing).unwrap() as u64;
        let in_b = tx.edge_count(b, EdgeOrientation::Incoming).unwrap() as u64;
        tx.commit().unwrap();
        assert_eq!(out_a, in_b, "mirror invariant broken");
        assert_eq!(out_a, total, "edge count diverged from committed ops");
    });
}

/// Checkpoint under resource exhaustion: a checkpoint that fails while
/// writing (injected, modeling a full log device) must leave the
/// previous snapshot usable and the database serving — including under
/// the same storage pressure the rest of this suite exercises — and a
/// recovery anchored at the previous snapshot must see every commit,
/// even those made *after* the failed attempt.
#[test]
fn failed_checkpoint_under_oom_keeps_serving_and_recovers() {
    use gda::persist::{recover, PersistOptions};

    let dir = std::env::temp_dir().join(format!("gda-fi-ckpt-oom-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    // a starved pool: the serving-path commits below run close to the
    // same OutOfMemory edge the other tests in this file probe
    let cfg = GdaConfig {
        blocks_per_rank: 24,
        dht_buckets_per_rank: 16,
        dht_heap_per_rank: 24,
        ..starved_cfg()
    };
    {
        let (db, fabric) = GdaDb::with_fabric("ckptoom", cfg, 2, CostModel::zero());
        let store = db.enable_persistence(PersistOptions::new(&dir)).unwrap();
        fabric.run(|ctx| {
            let eng = db.attach(ctx);
            eng.init_collective();
            if ctx.rank() == 0 {
                let tx = eng.begin(AccessMode::ReadWrite);
                for i in 0..6u64 {
                    tx.create_vertex(AppVertexId(i)).unwrap();
                }
                tx.commit().unwrap();
            }
            ctx.barrier();
            // a good checkpoint, then a failing one (disk exhaustion)
            assert_eq!(eng.checkpoint().unwrap(), 1);
            if ctx.rank() == 0 {
                store.fault_plane().arm_at(
                    gda::faults::SNAP_WRITE,
                    Some(0),
                    0,
                    1,
                    gda::faults::FaultMode::Error,
                );
            }
            assert!(eng.checkpoint().is_err(), "injected failure surfaces");
            // the failed attempt left no partial state: CURRENT still
            // points at the good snapshot, no half-written directory
            assert_eq!(store.current(), 1);
            assert!(!store.ckpt_dir_exists(2));
            ctx.barrier();
            // the database keeps serving, including transactions that
            // themselves hit resource exhaustion and roll back cleanly
            if ctx.rank() == 1 {
                let tx = eng.begin(AccessMode::ReadWrite);
                let mut i = 100u64;
                loop {
                    match tx.create_vertex(AppVertexId(i)) {
                        Ok(_) => i += 1,
                        Err(GdiError::OutOfMemory) => break,
                        Err(e) => panic!("unexpected: {e}"),
                    }
                }
                tx.abort(); // exhaustion rolls back, pool refills
                let tx = eng.begin(AccessMode::ReadWrite);
                tx.create_vertex(AppVertexId(50)).unwrap();
                tx.commit().unwrap();
            }
            ctx.barrier();
        });
    }
    // recovery is anchored at the previous (good) snapshot; the commits
    // made after the failed checkpoint replay from the redo tail
    let (db, fabric, plan) = recover(PersistOptions::new(&dir), CostModel::zero()).unwrap();
    assert_eq!(plan.snapshot_id(), 1);
    fabric.run(|ctx| {
        let eng = db.attach(ctx);
        let rec = plan.restore_rank(&eng).unwrap();
        assert_eq!(rec.errors, 0);
        let tx = eng.begin(AccessMode::ReadOnly);
        for i in (0..6u64).chain([50]) {
            tx.translate_vertex_id(AppVertexId(i))
                .unwrap_or_else(|e| panic!("vertex {i} lost after failed checkpoint: {e}"));
        }
        assert!(tx.translate_vertex_id(AppVertexId(100)).is_err(), "aborted");
        tx.commit().unwrap();
    });
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn constraint_filtered_neighbors() {
    let cfg = GdaConfig::tiny();
    let (db, fabric) = GdaDb::with_fabric("cnstr", cfg, 1, CostModel::zero());
    fabric.run(|ctx| {
        let eng = db.attach(ctx);
        eng.init_collective();
        let car = eng.create_label("Car").unwrap();
        let owns = eng.create_label("OWNS").unwrap();
        let color = eng
            .create_ptype(
                "color",
                Datatype::Uint64,
                EntityType::Vertex,
                Multiplicity::Single,
                SizeType::Fixed,
                1,
            )
            .unwrap();
        let tx = eng.begin(AccessMode::ReadWrite);
        let p = tx.create_vertex(AppVertexId(1)).unwrap();
        for (id, c, labeled) in [(10u64, 1u64, true), (11, 2, true), (12, 1, false)] {
            let v = tx.create_vertex(AppVertexId(id)).unwrap();
            if labeled {
                tx.add_label(v, car).unwrap();
            }
            tx.add_property(v, color, &PropertyValue::U64(c)).unwrap();
            tx.add_edge(p, v, Some(owns), true).unwrap();
        }
        tx.commit().unwrap();

        let tx = eng.begin(AccessMode::ReadOnly);
        let p = tx.translate_vertex_id(AppVertexId(1)).unwrap();
        // red (color == 1) cars only
        let red_cars = Constraint::from_sub(Subconstraint::new().with_label(car).with_prop(
            color,
            CmpOp::Eq,
            PropertyValue::U64(1),
        ));
        let found = tx
            .neighbors_matching(p, EdgeOrientation::Outgoing, Some(owns), &red_cars)
            .unwrap();
        assert_eq!(found.len(), 1);
        assert_eq!(tx.vertex_app_id(found[0]).unwrap(), AppVertexId(10));
        // everything reachable without the constraint
        assert_eq!(
            tx.neighbors_matching(p, EdgeOrientation::Outgoing, Some(owns), &Constraint::any())
                .unwrap()
                .len(),
            3
        );
        tx.commit().unwrap();
    });
}

#[test]
fn read_only_collective_with_concurrent_local_writers_stays_alive() {
    // collective readers skip locks (paper's optimized path); verify the
    // defensive decode keeps them alive even while local writers churn
    let cfg = GdaConfig {
        blocks_per_rank: 4096,
        dht_buckets_per_rank: 256,
        dht_heap_per_rank: 1024,
        ..GdaConfig::tiny()
    };
    let (db, fabric) = GdaDb::with_fabric("mixed", cfg, 4, CostModel::zero());
    fabric.run(|ctx| {
        let eng = db.attach(ctx);
        eng.init_collective();
        if ctx.rank() == 0 {
            let tx = eng.begin(AccessMode::ReadWrite);
            for i in 0..64u64 {
                tx.create_vertex(AppVertexId(i)).unwrap();
            }
            tx.commit().unwrap();
        }
        ctx.barrier();
        // ranks 0-1 write; ranks 2-3 read through local transactions (with
        // read locks, serializable), everyone stays consistent
        for round in 0..25u64 {
            if ctx.rank() < 2 {
                let tx = eng.begin(AccessMode::ReadWrite);
                let r = (|| {
                    let v =
                        tx.translate_vertex_id(AppVertexId((round * 7 + ctx.rank() as u64) % 64))?;
                    let w = tx.translate_vertex_id(AppVertexId((round * 13 + 1) % 64))?;
                    tx.add_edge(v, w, None, true)?;
                    Ok::<(), GdiError>(())
                })();
                match r {
                    Ok(()) => {
                        let _ = tx.commit();
                    }
                    Err(_) => tx.abort(),
                }
            } else {
                let tx = eng.begin(AccessMode::ReadOnly);
                let r = (|| {
                    let v = tx.translate_vertex_id(AppVertexId(round % 64))?;
                    let _ = tx.edge_count(v, EdgeOrientation::Any)?;
                    Ok::<(), GdiError>(())
                })();
                drop(r);
                let _ = tx.commit();
            }
        }
        ctx.barrier();
    });
}

//! Differential oracle for incremental-checkpoint recovery: a churn
//! workload executed against a persistent database — with full and
//! delta checkpoints, maintenance vacuums and a redo tail interleaved —
//! then crashed and recovered must read back exactly the state the
//! uninterrupted execution produced (tracked by an in-test model),
//! across rank counts P ∈ {1, 2, 4} and property-tested churn mixes.

use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use gda::blocks::BlockManager;
use gda::{GdaConfig, GdaDb, PersistOptions};
use gdi::{AccessMode, AppVertexId, Datatype, EntityType, Multiplicity, PropertyValue, SizeType};
use proptest::prelude::*;
use rma::CostModel;

/// A unique, self-cleaning persistence directory for one run.
struct TestDir(PathBuf);

impl TestDir {
    fn new(tag: &str) -> Self {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "gda-delta-oracle-{tag}-{}-{}",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&dir);
        TestDir(dir)
    }
}

impl Drop for TestDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// Enough headroom for the model's live vertices plus their (bounded)
/// MVCC archive chains at P = 1.
fn churn_cfg() -> GdaConfig {
    GdaConfig {
        blocks_per_rank: 512,
        ..GdaConfig::tiny()
    }
}

/// One generated mutation, interpreted against the model: inserts pick
/// a fresh id, updates/deletes pick an existing one (falling back to
/// insert when the model is empty).
#[derive(Debug, Clone, Copy)]
enum Churn {
    Insert,
    Update(u16),
    Delete(u16),
}

fn decode_churn(code: u8, sel: u16, mix: usize) -> Churn {
    // three mixes: insert-heavy, update-heavy, delete-heavy
    let (ins, upd) = match mix {
        0 => (140u8, 230u8),
        1 => (60, 220),
        _ => (80, 160),
    };
    if code < ins {
        Churn::Insert
    } else if code < upd {
        Churn::Update(sel)
    } else {
        Churn::Delete(sel)
    }
}

/// Run `ops` as one-commit-per-op churn on rank 0 of a fresh persistent
/// `p`-rank database, checkpointing every `ckpt_every` ops on all ranks
/// and running a collective maintenance pass every `2 * ckpt_every`
/// ops. Returns the model the surviving state must equal: app id → the
/// last committed property value, plus every id that was deleted.
fn run_and_crash(
    dir: &TestDir,
    p: usize,
    ops: &[(u8, u16)],
    mix: usize,
    ckpt_every: usize,
) -> (BTreeMap<u64, u64>, Vec<u64>) {
    let cfg = churn_cfg();
    let (db, fabric) = GdaDb::with_fabric("oracle", cfg, p, CostModel::zero());
    db.enable_persistence(PersistOptions::new(&dir.0)).unwrap();
    let mut out = fabric.run(|ctx| {
        let eng = db.attach(ctx);
        eng.init_collective();
        if ctx.rank() == 0 {
            eng.create_ptype(
                "val",
                Datatype::Uint64,
                EntityType::Vertex,
                Multiplicity::Single,
                SizeType::Fixed,
                1,
            )
            .unwrap();
        }
        ctx.barrier();
        eng.refresh_meta();
        let val = eng.meta().ptype_from_name("val").unwrap();
        let mut model: BTreeMap<u64, u64> = BTreeMap::new();
        let mut deleted: Vec<u64> = Vec::new();
        let mut next_id = 1u64;
        for (i, &(code, sel)) in ops.iter().enumerate() {
            // every rank walks the same schedule so the collective
            // checkpoint/maintenance points line up; only rank 0 mutates
            if ctx.rank() == 0 {
                let tx = eng.begin(AccessMode::ReadWrite);
                let mut op = decode_churn(code, sel, mix);
                if model.is_empty() && !matches!(op, Churn::Insert) {
                    op = Churn::Insert;
                }
                match op {
                    Churn::Insert => {
                        let id = next_id;
                        next_id += 1;
                        let v = tx.create_vertex(AppVertexId(id)).unwrap();
                        tx.add_property(v, val, &PropertyValue::U64(i as u64))
                            .unwrap();
                        model.insert(id, i as u64);
                    }
                    Churn::Update(s) => {
                        let id = *model.keys().nth(s as usize % model.len()).unwrap();
                        let v = tx.translate_vertex_id(AppVertexId(id)).unwrap();
                        tx.update_property(v, val, &PropertyValue::U64(i as u64))
                            .unwrap();
                        model.insert(id, i as u64);
                    }
                    Churn::Delete(s) => {
                        let id = *model.keys().nth(s as usize % model.len()).unwrap();
                        let v = tx.translate_vertex_id(AppVertexId(id)).unwrap();
                        tx.delete_vertex(v).unwrap();
                        model.remove(&id);
                        deleted.push(id);
                    }
                }
                tx.commit().unwrap();
            }
            if (i + 1) % ckpt_every == 0 {
                ctx.barrier();
                eng.checkpoint().unwrap();
            }
            if (i + 1) % (2 * ckpt_every) == 0 {
                ctx.barrier();
                eng.maintenance().unwrap();
            }
        }
        ctx.barrier();
        (model, deleted)
    });
    // rank 0 built the authoritative model; dropping db + fabric here
    // without a final checkpoint is the crash (the tail ops since the
    // last checkpoint live only in the redo logs)
    out.swap_remove(0)
}

/// Recover the crashed store and compare every surviving and deleted id
/// against the model.
fn recover_and_check(dir: &TestDir, model: &BTreeMap<u64, u64>, deleted: &[u64]) {
    let (db, fabric, plan) =
        gda::persist::recover(PersistOptions::new(&dir.0), CostModel::zero()).unwrap();
    let model = model.clone();
    let deleted = deleted.to_vec();
    fabric.run(move |ctx| {
        let eng = db.attach(ctx);
        let rec = plan.restore_rank(&eng).unwrap();
        assert_eq!(rec.errors, 0, "replay errors: {rec:?}");
        ctx.barrier();
        if ctx.rank() == 0 {
            let val = eng.meta().ptype_from_name("val").unwrap();
            let tx = eng.begin(AccessMode::ReadOnly);
            for (&id, &want) in &model {
                let v = tx
                    .translate_vertex_id(AppVertexId(id))
                    .unwrap_or_else(|e| panic!("live vertex {id} lost: {e}"));
                assert_eq!(
                    tx.property(v, val).unwrap(),
                    Some(PropertyValue::U64(want)),
                    "vertex {id} diverged from the uninterrupted execution"
                );
            }
            for &id in &deleted {
                assert!(
                    tx.translate_vertex_id(AppVertexId(id)).is_err(),
                    "deleted vertex {id} resurrected"
                );
            }
            tx.commit().unwrap();
        }
        ctx.barrier();
    });
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(5))]

    #[test]
    fn delta_chain_recovery_matches_uninterrupted_execution(
        ops in prop::collection::vec((any::<u8>(), any::<u16>()), 40..80),
        mix in 0usize..3,
        ckpt_every in 5usize..14,
    ) {
        for p in [1usize, 2, 4] {
            let dir = TestDir::new(&format!("p{p}"));
            let (model, deleted) = run_and_crash(&dir, p, &ops, mix, ckpt_every);
            recover_and_check(&dir, &model, &deleted);
        }
    }
}

/// Vacuum-then-recover round trip: archives reclaimed by the
/// maintenance vacuum must not resurrect through a checkpoint/recovery
/// cycle — recovered state reads the latest values only, and deleting
/// everything returns the whole pool (no vacuumed block comes back
/// allocated).
#[test]
fn vacuumed_archives_do_not_resurrect_through_recovery() {
    let dir = TestDir::new("vac-rt");
    let cfg = churn_cfg();
    {
        let (db, fabric) = GdaDb::with_fabric("vac", cfg, 1, CostModel::zero());
        db.enable_persistence(PersistOptions::new(&dir.0)).unwrap();
        fabric.run(|ctx| {
            let eng = db.attach(ctx);
            eng.init_collective();
            let val = eng
                .create_ptype(
                    "val",
                    Datatype::Uint64,
                    EntityType::Vertex,
                    Multiplicity::Single,
                    SizeType::Fixed,
                    1,
                )
                .unwrap();
            let tx = eng.begin(AccessMode::ReadWrite);
            for id in 1..=8u64 {
                let v = tx.create_vertex(AppVertexId(id)).unwrap();
                tx.add_property(v, val, &PropertyValue::U64(id)).unwrap();
            }
            tx.commit().unwrap();
            eng.checkpoint().unwrap();
            // pile archives onto the first four chains, then vacuum them
            for round in 0..3u64 {
                let tx = eng.begin(AccessMode::ReadWrite);
                for id in 1..=4u64 {
                    let v = tx.translate_vertex_id(AppVertexId(id)).unwrap();
                    tx.update_property(v, val, &PropertyValue::U64(100 * round + id))
                        .unwrap();
                }
                tx.commit().unwrap();
            }
            let rep = eng.maintenance().unwrap();
            assert!(rep.vacuumed_versions >= 1, "{rep:?}");
            // final values, vacuumed again so the published checkpoint
            // contains no archive blocks, then publish
            let tx = eng.begin(AccessMode::ReadWrite);
            for id in 1..=4u64 {
                let v = tx.translate_vertex_id(AppVertexId(id)).unwrap();
                tx.update_property(v, val, &PropertyValue::U64(1000 + id))
                    .unwrap();
            }
            tx.commit().unwrap();
            eng.maintenance().unwrap();
            eng.checkpoint().unwrap();
            // redo tail past the publish: inserts only (no archives)
            let tx = eng.begin(AccessMode::ReadWrite);
            for id in 9..=10u64 {
                let v = tx.create_vertex(AppVertexId(id)).unwrap();
                tx.add_property(v, val, &PropertyValue::U64(id)).unwrap();
            }
            tx.commit().unwrap();
        });
        // crash
    }
    let (db, fabric, plan) =
        gda::persist::recover(PersistOptions::new(&dir.0), CostModel::zero()).unwrap();
    fabric.run(|ctx| {
        let eng = db.attach(ctx);
        let rec = plan.restore_rank(&eng).unwrap();
        assert_eq!(rec.errors, 0);
        let val = eng.meta().ptype_from_name("val").unwrap();
        let tx = eng.begin(AccessMode::ReadOnly);
        for id in 1..=4u64 {
            let v = tx.translate_vertex_id(AppVertexId(id)).unwrap();
            assert_eq!(
                tx.property(v, val).unwrap(),
                Some(PropertyValue::U64(1000 + id)),
                "vertex {id} must read its latest value, not a vacuumed one"
            );
        }
        for id in 5..=10u64 {
            let v = tx.translate_vertex_id(AppVertexId(id)).unwrap();
            assert_eq!(tx.property(v, val).unwrap(), Some(PropertyValue::U64(id)));
        }
        tx.commit().unwrap();
        // delete everything: if a vacuumed archive had resurrected as an
        // allocated block, the pool would come up short
        let tx = eng.begin(AccessMode::ReadWrite);
        for id in 1..=10u64 {
            let v = tx.translate_vertex_id(AppVertexId(id)).unwrap();
            tx.delete_vertex(v).unwrap();
        }
        tx.commit().unwrap();
        eng.maintenance().unwrap();
        let bm = BlockManager::new(ctx, churn_cfg());
        assert_eq!(bm.count_free(0), churn_cfg().blocks_per_rank);
    });
}

//! Index maintenance across the transaction lifecycle: postings must track
//! committed label changes (and only committed ones), respecting the
//! eventual-consistency contract of §3.8.

use gda::{GdaConfig, GdaDb};
use gdi::{
    AccessMode, AppVertexId, CmpOp, Constraint, Datatype, EntityType, Multiplicity, PropertyValue,
    SizeType, Subconstraint,
};
use rma::CostModel;

#[test]
fn postings_follow_commits_not_aborts() {
    let cfg = GdaConfig::tiny();
    let (db, fabric) = GdaDb::with_fabric("ix", cfg, 1, CostModel::zero());
    fabric.run(|ctx| {
        let eng = db.attach(ctx);
        eng.init_collective();
        let person = eng.create_label("Person").unwrap();
        let ix = eng.create_index("people", vec![person], vec![]).unwrap();

        // committed labeled vertex appears in the index
        let tx = eng.begin(AccessMode::ReadWrite);
        let v = tx.create_vertex(AppVertexId(1)).unwrap();
        tx.add_label(v, person).unwrap();
        tx.commit().unwrap();
        assert_eq!(eng.local_index_vertices(ix).len(), 1);

        // aborted label addition leaves the index untouched
        let tx = eng.begin(AccessMode::ReadWrite);
        let w = tx.create_vertex(AppVertexId(2)).unwrap();
        tx.add_label(w, person).unwrap();
        tx.abort();
        assert_eq!(eng.local_index_vertices(ix).len(), 1);

        // removing the label at commit drops the posting
        let tx = eng.begin(AccessMode::ReadWrite);
        let v = tx.translate_vertex_id(AppVertexId(1)).unwrap();
        tx.remove_label(v, person).unwrap();
        tx.commit().unwrap();
        assert!(eng.local_index_vertices(ix).is_empty());

        // re-adding restores it; deleting the vertex drops it for good
        let tx = eng.begin(AccessMode::ReadWrite);
        let v = tx.translate_vertex_id(AppVertexId(1)).unwrap();
        tx.add_label(v, person).unwrap();
        tx.commit().unwrap();
        assert_eq!(eng.local_index_vertices(ix).len(), 1);
        let tx = eng.begin(AccessMode::ReadWrite);
        let v = tx.translate_vertex_id(AppVertexId(1)).unwrap();
        tx.delete_vertex(v).unwrap();
        tx.commit().unwrap();
        assert!(eng.local_index_vertices(ix).is_empty());
        ctx.barrier();
    });
}

#[test]
fn postings_live_on_owner_ranks() {
    let cfg = GdaConfig::tiny();
    let nranks = 4;
    let (db, fabric) = GdaDb::with_fabric("ixd", cfg, nranks, CostModel::zero());
    fabric.run(|ctx| {
        let eng = db.attach(ctx);
        eng.init_collective();
        let person = if ctx.rank() == 0 {
            Some(eng.create_label("Person").unwrap())
        } else {
            None
        };
        let ix = if ctx.rank() == 0 {
            Some(
                eng.create_index("people", vec![person.unwrap()], vec![])
                    .unwrap()
                    .0,
            )
        } else {
            None
        };
        let ix = gda::IndexId(ctx.bcast(0, ix));
        ctx.barrier();
        eng.refresh_meta();
        let person = person.unwrap_or_else(|| eng.meta().label_from_name("Person").unwrap());

        // rank 0 creates 40 labeled vertices, spread round-robin
        if ctx.rank() == 0 {
            let tx = eng.begin(AccessMode::ReadWrite);
            for i in 0..40u64 {
                let v = tx.create_vertex(AppVertexId(i)).unwrap();
                tx.add_label(v, person).unwrap();
            }
            tx.commit().unwrap();
        }
        ctx.barrier();

        // each rank's partition holds exactly its owned vertices
        let mine = eng.local_index_vertices(ix);
        assert_eq!(mine.len(), 10, "rank {}", ctx.rank());
        for p in &mine {
            assert_eq!(p.vertex.rank(), ctx.rank());
            assert_eq!(p.app_id.0 % nranks as u64, ctx.rank() as u64);
        }
        let total = ctx.allreduce_sum_u64(mine.len() as u64);
        assert_eq!(total, 40);
    });
}

#[test]
fn constrained_scan_inside_transaction() {
    let cfg = GdaConfig::tiny();
    let (db, fabric) = GdaDb::with_fabric("ixc", cfg, 2, CostModel::zero());
    fabric.run(|ctx| {
        let eng = db.attach(ctx);
        eng.init_collective();
        let (person, age) = if ctx.rank() == 0 {
            let p = eng.create_label("Person").unwrap();
            let a = eng
                .create_ptype(
                    "age",
                    Datatype::Uint64,
                    EntityType::Vertex,
                    Multiplicity::Single,
                    SizeType::Fixed,
                    1,
                )
                .unwrap();
            (Some(p), Some(a))
        } else {
            (None, None)
        };
        let ix = if ctx.rank() == 0 {
            Some(
                eng.create_index("people", vec![person.unwrap()], vec![])
                    .unwrap()
                    .0,
            )
        } else {
            None
        };
        let ix = gda::IndexId(ctx.bcast(0, ix));
        ctx.barrier();
        eng.refresh_meta();
        let person = person.unwrap_or_else(|| eng.meta().label_from_name("Person").unwrap());
        let age = age.unwrap_or_else(|| eng.meta().ptype_from_name("age").unwrap());

        if ctx.rank() == 0 {
            let tx = eng.begin(AccessMode::ReadWrite);
            for i in 0..30u64 {
                let v = tx.create_vertex(AppVertexId(i)).unwrap();
                tx.add_label(v, person).unwrap();
                tx.add_property(v, age, &PropertyValue::U64(i)).unwrap();
            }
            tx.commit().unwrap();
        }
        ctx.barrier();

        // constrained scan: Person AND age >= 20, evaluated per rank
        let tx = eng.begin_collective(AccessMode::ReadOnly);
        let c = Constraint::from_sub(Subconstraint::new().with_label(person).with_prop(
            age,
            CmpOp::Ge,
            PropertyValue::U64(20),
        ));
        let local = tx.local_index_scan(ix, &c).unwrap();
        for p in &local {
            assert!(p.app_id.0 >= 20);
        }
        tx.commit().unwrap();
        let total = ctx.allreduce_sum_u64(local.len() as u64);
        assert_eq!(total, 10, "ages 20..=29");
    });
}

#[test]
fn index_created_after_data_starts_empty() {
    // eventual consistency: a new index does not retroactively contain
    // pre-existing vertices until they are touched by a committing write
    let cfg = GdaConfig::tiny();
    let (db, fabric) = GdaDb::with_fabric("ixl", cfg, 1, CostModel::zero());
    fabric.run(|ctx| {
        let eng = db.attach(ctx);
        eng.init_collective();
        let l = eng.create_label("L").unwrap();
        let tx = eng.begin(AccessMode::ReadWrite);
        let v = tx.create_vertex(AppVertexId(1)).unwrap();
        tx.add_label(v, l).unwrap();
        tx.commit().unwrap();

        let late = eng.create_index("late", vec![l], vec![]).unwrap();
        assert!(
            eng.local_index_vertices(late).is_empty(),
            "not yet converged"
        );

        // the next committed write of the vertex converges the index
        let l2 = eng.create_label("L2").unwrap();
        let tx = eng.begin(AccessMode::ReadWrite);
        let v = tx.translate_vertex_id(AppVertexId(1)).unwrap();
        tx.add_label(v, l2).unwrap();
        tx.commit().unwrap();
        assert_eq!(eng.local_index_vertices(late).len(), 1, "converged");
        ctx.barrier();
    });
}

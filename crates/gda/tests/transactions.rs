//! End-to-end transaction tests for the GDA engine: CRUD, ACID behaviour,
//! conflicts, collective transactions, indexes and bulk load.

use gda::{EdgeSpec, GdaConfig, GdaDb, VertexSpec};
use gdi::{
    AccessMode, AppVertexId, CmpOp, Constraint, Datatype, EdgeOrientation, EntityType, GdiError,
    LabelId, Multiplicity, PropertyValue, SizeType, Subconstraint, TxStatus,
};
use rma::CostModel;

fn app(i: u64) -> AppVertexId {
    AppVertexId(i)
}

/// Helper: run a closure on a fresh single-rank database.
fn single_rank(f: impl Fn(&gda::GdaRank) + Sync) {
    let cfg = GdaConfig::tiny();
    let (db, fabric) = GdaDb::with_fabric("t", cfg, 1, CostModel::zero());
    fabric.run(|ctx| {
        let eng = db.attach(ctx);
        eng.init_collective();
        f(&eng);
    });
}

/// Helper: standard metadata (Person label, age/name ptypes).
fn std_meta(eng: &gda::GdaRank) -> (LabelId, gdi::PTypeId, gdi::PTypeId) {
    let person = eng.create_label("Person").unwrap();
    let age = eng
        .create_ptype(
            "age",
            Datatype::Uint64,
            EntityType::Vertex,
            Multiplicity::Single,
            SizeType::Fixed,
            1,
        )
        .unwrap();
    let name = eng
        .create_ptype(
            "name",
            Datatype::Char,
            EntityType::VertexEdge,
            Multiplicity::Single,
            SizeType::NoLimit,
            0,
        )
        .unwrap();
    (person, age, name)
}

#[test]
fn create_read_vertex_roundtrip() {
    single_rank(|eng| {
        let (person, age, name) = std_meta(eng);
        let tx = eng.begin(AccessMode::ReadWrite);
        let v = tx.create_vertex(app(1)).unwrap();
        tx.add_label(v, person).unwrap();
        tx.add_property(v, age, &PropertyValue::U64(33)).unwrap();
        tx.add_property(v, name, &PropertyValue::Text("Ada".into()))
            .unwrap();
        tx.commit().unwrap();

        let tx = eng.begin(AccessMode::ReadOnly);
        let v = tx.translate_vertex_id(app(1)).unwrap();
        assert_eq!(tx.vertex_app_id(v).unwrap(), app(1));
        assert_eq!(tx.labels(v).unwrap(), vec![person]);
        assert_eq!(tx.property(v, age).unwrap(), Some(PropertyValue::U64(33)));
        assert_eq!(
            tx.property(v, name).unwrap(),
            Some(PropertyValue::Text("Ada".into()))
        );
        assert_eq!(tx.ptypes(v).unwrap().len(), 2);
        tx.commit().unwrap();
    });
}

#[test]
fn uncommitted_changes_invisible_and_abort_discards() {
    single_rank(|eng| {
        let (_, age, _) = std_meta(eng);
        {
            let tx = eng.begin(AccessMode::ReadWrite);
            let v = tx.create_vertex(app(7)).unwrap();
            tx.add_property(v, age, &PropertyValue::U64(1)).unwrap();
            tx.abort();
        }
        let tx = eng.begin(AccessMode::ReadOnly);
        assert_eq!(
            tx.translate_vertex_id(app(7)).unwrap_err(),
            GdiError::NotFound("vertex (application id)")
        );
        tx.commit().unwrap();
    });
}

#[test]
fn dropped_transaction_auto_aborts() {
    single_rank(|eng| {
        {
            let tx = eng.begin(AccessMode::ReadWrite);
            tx.create_vertex(app(9)).unwrap();
            // dropped without commit
        }
        let tx = eng.begin(AccessMode::ReadOnly);
        assert!(tx.translate_vertex_id(app(9)).is_err());
        // block pool not leaked: we can still create plenty of vertices
        tx.commit().unwrap();
        let tx = eng.begin(AccessMode::ReadWrite);
        for i in 100..130 {
            tx.create_vertex(app(i)).unwrap();
        }
        tx.commit().unwrap();
    });
}

#[test]
fn read_only_transactions_reject_writes() {
    single_rank(|eng| {
        let tx = eng.begin(AccessMode::ReadWrite);
        tx.create_vertex(app(1)).unwrap();
        tx.commit().unwrap();

        let tx = eng.begin(AccessMode::ReadOnly);
        let v = tx.translate_vertex_id(app(1)).unwrap();
        assert_eq!(
            tx.add_label(v, LabelId(1)).unwrap_err(),
            GdiError::NotFound("label")
        );
        // a real write op on a read-only tx is transaction critical
        let err = tx.delete_vertex(v).unwrap_err();
        assert_eq!(err, GdiError::ReadOnlyViolation);
        assert_eq!(tx.status(), TxStatus::Aborted);
    });
}

#[test]
fn duplicate_app_id_rejected() {
    single_rank(|eng| {
        let tx = eng.begin(AccessMode::ReadWrite);
        tx.create_vertex(app(5)).unwrap();
        tx.commit().unwrap();
        let tx = eng.begin(AccessMode::ReadWrite);
        assert_eq!(
            tx.create_vertex(app(5)).unwrap_err(),
            GdiError::AlreadyExists("vertex (application id)")
        );
        tx.abort();
    });
}

#[test]
fn update_and_remove_properties() {
    single_rank(|eng| {
        let (_, age, _) = std_meta(eng);
        let tx = eng.begin(AccessMode::ReadWrite);
        let v = tx.create_vertex(app(1)).unwrap();
        tx.add_property(v, age, &PropertyValue::U64(30)).unwrap();
        // Single multiplicity: second add fails, update succeeds
        assert_eq!(
            tx.add_property(v, age, &PropertyValue::U64(31))
                .unwrap_err(),
            GdiError::AlreadyExists("single-valued property")
        );
        tx.update_property(v, age, &PropertyValue::U64(31)).unwrap();
        tx.commit().unwrap();

        let tx = eng.begin(AccessMode::ReadWrite);
        let v = tx.translate_vertex_id(app(1)).unwrap();
        assert_eq!(tx.property(v, age).unwrap(), Some(PropertyValue::U64(31)));
        assert_eq!(tx.remove_properties(v, age).unwrap(), 1);
        assert_eq!(tx.property(v, age).unwrap(), None);
        tx.commit().unwrap();
    });
}

#[test]
fn property_type_validation() {
    single_rank(|eng| {
        let (_, age, _) = std_meta(eng);
        let edge_only = eng
            .create_ptype(
                "weight",
                Datatype::Double,
                EntityType::Edge,
                Multiplicity::Single,
                SizeType::Fixed,
                1,
            )
            .unwrap();
        let bounded = eng
            .create_ptype(
                "tag",
                Datatype::Byte,
                EntityType::Vertex,
                Multiplicity::Multi,
                SizeType::Limited,
                4,
            )
            .unwrap();
        let tx = eng.begin(AccessMode::ReadWrite);
        let v = tx.create_vertex(app(1)).unwrap();
        // wrong entity type
        assert_eq!(
            tx.add_property(v, edge_only, &PropertyValue::F64(1.0))
                .unwrap_err(),
            GdiError::TypeMismatch
        );
        // datatype misalignment: 3 bytes into a u64 property
        assert_eq!(
            tx.add_property(v, age, &PropertyValue::Bytes(vec![1, 2, 3]))
                .unwrap_err(),
            GdiError::TypeMismatch
        );
        // size limit
        assert_eq!(
            tx.add_property(v, bounded, &PropertyValue::Bytes(vec![0; 5]))
                .unwrap_err(),
            GdiError::SizeExceeded
        );
        tx.add_property(v, bounded, &PropertyValue::Bytes(vec![0; 4]))
            .unwrap();
        // unknown ptype
        assert_eq!(
            tx.add_property(v, gdi::PTypeId(999), &PropertyValue::U64(0))
                .unwrap_err(),
            GdiError::NotFound("property type")
        );
        tx.commit().unwrap();
    });
}

#[test]
fn edges_directed_and_undirected() {
    single_rank(|eng| {
        let knows = eng.create_label("KNOWS").unwrap();
        let tx = eng.begin(AccessMode::ReadWrite);
        let a = tx.create_vertex(app(1)).unwrap();
        let b = tx.create_vertex(app(2)).unwrap();
        let c = tx.create_vertex(app(3)).unwrap();
        tx.add_edge(a, b, Some(knows), true).unwrap();
        tx.add_edge(a, c, None, false).unwrap();
        tx.commit().unwrap();

        let tx = eng.begin(AccessMode::ReadOnly);
        let a = tx.translate_vertex_id(app(1)).unwrap();
        let b = tx.translate_vertex_id(app(2)).unwrap();
        let c = tx.translate_vertex_id(app(3)).unwrap();
        assert_eq!(tx.edge_count(a, EdgeOrientation::Outgoing).unwrap(), 1);
        assert_eq!(tx.edge_count(a, EdgeOrientation::Undirected).unwrap(), 1);
        assert_eq!(tx.edge_count(a, EdgeOrientation::Any).unwrap(), 2);
        assert_eq!(tx.edge_count(b, EdgeOrientation::Incoming).unwrap(), 1);
        assert_eq!(tx.edge_count(c, EdgeOrientation::Undirected).unwrap(), 1);
        assert_eq!(
            tx.neighbors(a, EdgeOrientation::Outgoing, None).unwrap(),
            vec![b]
        );
        assert_eq!(
            tx.neighbors(a, EdgeOrientation::Outgoing, Some(knows))
                .unwrap(),
            vec![b]
        );
        assert!(tx
            .neighbors(a, EdgeOrientation::Outgoing, Some(LabelId(999)))
            .unwrap()
            .is_empty());
        // endpoints and labels through edge UIDs
        let es = tx.edges(a, EdgeOrientation::Outgoing).unwrap();
        assert_eq!(es.len(), 1);
        assert_eq!(tx.edge_endpoints(es[0]).unwrap(), (a, b));
        assert_eq!(tx.edge_labels(es[0]).unwrap(), vec![knows]);
        // reverse view from b
        let es_b = tx.edges(b, EdgeOrientation::Incoming).unwrap();
        assert_eq!(tx.edge_endpoints(es_b[0]).unwrap(), (a, b));
        tx.commit().unwrap();
    });
}

#[test]
fn delete_edge_removes_both_records() {
    single_rank(|eng| {
        let tx = eng.begin(AccessMode::ReadWrite);
        let a = tx.create_vertex(app(1)).unwrap();
        let b = tx.create_vertex(app(2)).unwrap();
        let e = tx.add_edge(a, b, None, true).unwrap();
        tx.delete_edge(e).unwrap();
        tx.commit().unwrap();

        let tx = eng.begin(AccessMode::ReadOnly);
        let a = tx.translate_vertex_id(app(1)).unwrap();
        let b = tx.translate_vertex_id(app(2)).unwrap();
        assert_eq!(tx.edge_count(a, EdgeOrientation::Any).unwrap(), 0);
        assert_eq!(tx.edge_count(b, EdgeOrientation::Any).unwrap(), 0);
        tx.commit().unwrap();
    });
}

#[test]
fn delete_vertex_cleans_neighbours() {
    single_rank(|eng| {
        let tx = eng.begin(AccessMode::ReadWrite);
        let hub = tx.create_vertex(app(1)).unwrap();
        let mut spokes = Vec::new();
        for i in 2..=5 {
            let s = tx.create_vertex(app(i)).unwrap();
            tx.add_edge(hub, s, None, true).unwrap();
            spokes.push(s);
        }
        tx.commit().unwrap();

        let tx = eng.begin(AccessMode::ReadWrite);
        let hub = tx.translate_vertex_id(app(1)).unwrap();
        tx.delete_vertex(hub).unwrap();
        tx.commit().unwrap();

        let tx = eng.begin(AccessMode::ReadOnly);
        assert!(tx.translate_vertex_id(app(1)).is_err());
        for i in 2..=5 {
            let s = tx.translate_vertex_id(app(i)).unwrap();
            assert_eq!(
                tx.edge_count(s, EdgeOrientation::Any).unwrap(),
                0,
                "spoke {i}"
            );
        }
        tx.commit().unwrap();
    });
}

#[test]
fn self_loops() {
    single_rank(|eng| {
        let tx = eng.begin(AccessMode::ReadWrite);
        let v = tx.create_vertex(app(1)).unwrap();
        let e = tx.add_edge(v, v, None, true).unwrap();
        assert_eq!(tx.edge_count(v, EdgeOrientation::Outgoing).unwrap(), 1);
        assert_eq!(tx.edge_count(v, EdgeOrientation::Incoming).unwrap(), 1);
        tx.delete_edge(e).unwrap();
        assert_eq!(tx.edge_count(v, EdgeOrientation::Any).unwrap(), 0);
        tx.commit().unwrap();
    });
}

#[test]
fn heavy_edge_properties_and_second_label() {
    single_rank(|eng| {
        let owns = eng.create_label("OWNS").unwrap();
        let since = eng.create_label("SINCE_2020").unwrap();
        let weight = eng
            .create_ptype(
                "weight",
                Datatype::Double,
                EntityType::Edge,
                Multiplicity::Single,
                SizeType::Fixed,
                1,
            )
            .unwrap();
        let tx = eng.begin(AccessMode::ReadWrite);
        let a = tx.create_vertex(app(1)).unwrap();
        let b = tx.create_vertex(app(2)).unwrap();
        let e = tx.add_edge(a, b, Some(owns), true).unwrap();
        tx.set_edge_property(e, weight, &PropertyValue::F64(2.5))
            .unwrap();
        tx.add_edge_label(e, since).unwrap();
        tx.commit().unwrap();

        let tx = eng.begin(AccessMode::ReadOnly);
        let a = tx.translate_vertex_id(app(1)).unwrap();
        let es = tx.edges(a, EdgeOrientation::Outgoing).unwrap();
        assert_eq!(es.len(), 1);
        assert_eq!(
            tx.edge_property(es[0], weight).unwrap(),
            Some(PropertyValue::F64(2.5))
        );
        let labels = tx.edge_labels(es[0]).unwrap();
        assert!(labels.contains(&owns) && labels.contains(&since));
        tx.commit().unwrap();
    });
}

#[test]
fn large_vertex_spills_to_many_blocks() {
    single_rank(|eng| {
        let (_, _, name) = std_meta(eng);
        let big_text = "x".repeat(1000); // >> 128-byte blocks
        let tx = eng.begin(AccessMode::ReadWrite);
        let v = tx.create_vertex(app(1)).unwrap();
        tx.add_property(v, name, &PropertyValue::Text(big_text.clone()))
            .unwrap();
        for i in 10..40 {
            let u = tx.create_vertex(app(i)).unwrap();
            tx.add_edge(v, u, None, true).unwrap();
        }
        tx.commit().unwrap();

        let tx = eng.begin(AccessMode::ReadOnly);
        let v = tx.translate_vertex_id(app(1)).unwrap();
        assert_eq!(
            tx.property(v, name).unwrap(),
            Some(PropertyValue::Text(big_text))
        );
        assert_eq!(tx.edge_count(v, EdgeOrientation::Outgoing).unwrap(), 30);
        tx.commit().unwrap();
    });
}

#[test]
fn distributed_crud_across_ranks() {
    let cfg = GdaConfig::tiny();
    let (db, fabric) = GdaDb::with_fabric("d", cfg, 4, CostModel::default());
    fabric.run(|ctx| {
        let eng = db.attach(ctx);
        eng.init_collective();
        let knows = if ctx.rank() == 0 {
            Some(eng.create_label("KNOWS").unwrap())
        } else {
            None
        };
        ctx.barrier();
        eng.refresh_meta();
        let knows = knows.unwrap_or_else(|| eng.meta().label_from_name("KNOWS").unwrap());

        // each rank creates a disjoint slice of vertices (ownership is
        // round-robin, so most creations are remote)
        let base = ctx.rank() as u64 * 100;
        let tx = eng.begin(AccessMode::ReadWrite);
        for i in 0..10 {
            tx.create_vertex(app(base + i)).unwrap();
        }
        tx.commit().unwrap();
        ctx.barrier();

        // cross-rank edges: rank r connects its vertices to rank r+1's
        let peer = ((ctx.rank() + 1) % ctx.nranks()) as u64 * 100;
        let tx = eng.begin(AccessMode::ReadWrite);
        for i in 0..10 {
            let a = tx.translate_vertex_id(app(base + i)).unwrap();
            let b = tx.translate_vertex_id(app(peer + i)).unwrap();
            tx.add_edge(a, b, Some(knows), true).unwrap();
        }
        tx.commit().unwrap();
        ctx.barrier();

        // everyone verifies the full ring
        let tx = eng.begin(AccessMode::ReadOnly);
        for r in 0..ctx.nranks() as u64 {
            for i in 0..10 {
                let v = tx.translate_vertex_id(app(r * 100 + i)).unwrap();
                assert_eq!(tx.edge_count(v, EdgeOrientation::Outgoing).unwrap(), 1);
                assert_eq!(tx.edge_count(v, EdgeOrientation::Incoming).unwrap(), 1);
            }
        }
        tx.commit().unwrap();
    });
}

#[test]
fn write_conflicts_abort_not_corrupt() {
    let cfg = GdaConfig::tiny();
    let (db, fabric) = GdaDb::with_fabric("c", cfg, 4, CostModel::zero());
    let counts = fabric.run(|ctx| {
        let eng = db.attach(ctx);
        eng.init_collective();
        let age = if ctx.rank() == 0 {
            eng.create_ptype(
                "n",
                Datatype::Uint64,
                EntityType::Vertex,
                Multiplicity::Single,
                SizeType::Fixed,
                1,
            )
            .ok()
        } else {
            None
        };
        ctx.barrier();
        eng.refresh_meta();
        let age = age.unwrap_or_else(|| eng.meta().ptype_from_name("n").unwrap());
        if ctx.rank() == 0 {
            let tx = eng.begin(AccessMode::ReadWrite);
            let v = tx.create_vertex(app(1)).unwrap();
            tx.add_property(v, age, &PropertyValue::U64(0)).unwrap();
            tx.commit().unwrap();
        }
        ctx.barrier();
        // all ranks increment the same counter property; conflicts abort
        let mut committed = 0u64;
        for _ in 0..25 {
            let tx = eng.begin(AccessMode::ReadWrite);
            let r = (|| {
                let v = tx.translate_vertex_id(app(1))?;
                let cur = tx.property(v, age)?.and_then(|p| p.as_u64()).unwrap_or(0);
                tx.update_property(v, age, &PropertyValue::U64(cur + 1))?;
                Ok::<(), GdiError>(())
            })();
            match r {
                Ok(()) => {
                    if tx.commit().is_ok() {
                        committed += 1;
                    }
                }
                Err(_) => { /* aborted by conflict */ }
            }
        }
        ctx.barrier();
        let total = ctx.allreduce_sum_u64(committed);
        // serializability: final value equals number of committed updates
        let tx = eng.begin(AccessMode::ReadOnly);
        let v = tx.translate_vertex_id(app(1)).unwrap();
        let fin = tx.property(v, age).unwrap().unwrap().as_u64().unwrap();
        tx.commit().unwrap();
        assert_eq!(fin, total, "lost or phantom update");
        committed
    });
    let total: u64 = counts.iter().sum();
    assert!(total > 0, "no transaction ever committed");
}

#[test]
fn collective_read_transaction_scans_index() {
    let cfg = GdaConfig::tiny();
    let (db, fabric) = GdaDb::with_fabric("i", cfg, 4, CostModel::default());
    fabric.run(|ctx| {
        let eng = db.attach(ctx);
        eng.init_collective();
        let (person, age) = if ctx.rank() == 0 {
            let p = eng.create_label("Person").unwrap();
            let a = eng
                .create_ptype(
                    "age",
                    Datatype::Uint64,
                    EntityType::Vertex,
                    Multiplicity::Single,
                    SizeType::Fixed,
                    1,
                )
                .unwrap();
            (Some(p), Some(a))
        } else {
            (None, None)
        };
        ctx.barrier();
        eng.refresh_meta();
        let person = person.unwrap_or_else(|| eng.meta().label_from_name("Person").unwrap());
        let age = age.unwrap_or_else(|| eng.meta().ptype_from_name("age").unwrap());
        let index = if ctx.rank() == 0 {
            Some(eng.create_index("people", vec![person], vec![age]).unwrap())
        } else {
            None
        };
        let index = gda::IndexId(ctx.bcast(0, index.map(|i| i.0)));
        ctx.barrier();

        // rank 0 populates 40 persons with ages 0..40
        if ctx.rank() == 0 {
            let tx = eng.begin(AccessMode::ReadWrite);
            for i in 0..40u64 {
                let v = tx.create_vertex(app(i)).unwrap();
                tx.add_label(v, person).unwrap();
                tx.add_property(v, age, &PropertyValue::U64(i)).unwrap();
            }
            tx.commit().unwrap();
        }
        ctx.barrier();

        // collective OLSP query: count persons with age > 30 (Listing 3)
        let tx = eng.begin_collective(AccessMode::ReadOnly);
        let cnstr = Constraint::from_sub(Subconstraint::new().with_label(person).with_prop(
            age,
            CmpOp::Gt,
            PropertyValue::U64(30),
        ));
        let local = tx.local_index_scan(index, &cnstr).unwrap().len() as u64;
        tx.commit().unwrap();
        let total = ctx.allreduce_sum_u64(local);
        assert_eq!(total, 9, "ages 31..=39");
    });
}

#[test]
fn bulk_load_roundtrip() {
    let cfg = GdaConfig::tiny();
    let (db, fabric) = GdaDb::with_fabric("b", cfg, 4, CostModel::default());
    fabric.run(|ctx| {
        let eng = db.attach(ctx);
        eng.init_collective();
        let person = if ctx.rank() == 0 {
            Some(eng.create_label("Person").unwrap())
        } else {
            None
        };
        ctx.barrier();
        eng.refresh_meta();
        let person = person.unwrap_or_else(|| eng.meta().label_from_name("Person").unwrap());

        // rank r contributes vertices [r*25, r*25+25) and a ring of edges
        let base = ctx.rank() as u64 * 25;
        let vs: Vec<VertexSpec> = (base..base + 25)
            .map(|i| VertexSpec::new(i).with_label(person))
            .collect();
        let es: Vec<EdgeSpec> = (base..base + 25)
            .map(|i| EdgeSpec {
                from: app(i),
                to: app((i + 1) % 100),
                label: person.0,
                directed: true,
            })
            .collect();
        let rep = eng.bulk_load(vs, es).unwrap();
        let total_v = ctx.allreduce_sum_u64(rep.vertices as u64);
        let total_he = ctx.allreduce_sum_u64(rep.half_edges as u64);
        assert_eq!(total_v, 100);
        assert_eq!(total_he, 200, "each edge lands at two endpoints");
        assert_eq!(rep.dangling_edges, 0);

        // ring is traversable
        let tx = eng.begin(AccessMode::ReadOnly);
        let mut cur = tx.translate_vertex_id(app(0)).unwrap();
        for _ in 0..100 {
            let nbrs = tx.neighbors(cur, EdgeOrientation::Outgoing, None).unwrap();
            assert_eq!(nbrs.len(), 1);
            cur = nbrs[0];
        }
        assert_eq!(tx.vertex_app_id(cur).unwrap(), app(0));
        tx.commit().unwrap();
    });
}

#[test]
fn bulk_load_reports_duplicates_and_dangling() {
    let cfg = GdaConfig::tiny();
    let (db, fabric) = GdaDb::with_fabric("bd", cfg, 2, CostModel::zero());
    fabric.run(|ctx| {
        let eng = db.attach(ctx);
        eng.init_collective();
        let (vs, es) = if ctx.rank() == 0 {
            (
                vec![VertexSpec::new(1), VertexSpec::new(1)], // duplicate
                vec![EdgeSpec {
                    from: app(1),
                    to: app(999),
                    label: 0,
                    directed: true,
                }],
            )
        } else {
            (Vec::new(), Vec::new())
        };
        let rep = eng.bulk_load(vs, es).unwrap();
        let dup = ctx.allreduce_sum_u64(rep.duplicate_vertices as u64);
        let dangling = ctx.allreduce_sum_u64(rep.dangling_edges as u64);
        assert_eq!(dup, 1);
        assert_eq!(dangling, 2, "both half-edges dangle");
    });
}

#[test]
fn stale_metadata_aborts_commit() {
    let cfg = GdaConfig::tiny();
    let (db, fabric) = GdaDb::with_fabric("s", cfg, 1, CostModel::zero());
    fabric.run(|ctx| {
        let eng = db.attach(ctx);
        eng.init_collective();
        let l = eng.create_label("A").unwrap();
        let tx = eng.begin(AccessMode::ReadWrite);
        let v = tx.create_vertex(app(1)).unwrap();
        tx.add_label(v, l).unwrap(); // transaction now relies on metadata
                                     // concurrent metadata change (as if from another process):
                                     // bumps the epoch mid-transaction
        eng.create_label("B").unwrap();
        assert_eq!(tx.commit().unwrap_err(), GdiError::StaleMetadata);
        // the vertex never became visible
        let tx = eng.begin(AccessMode::ReadOnly);
        assert!(tx.translate_vertex_id(app(1)).is_err());
        tx.commit().unwrap();
    });
}

#[test]
fn volatile_ids_stay_valid_within_transaction() {
    // edge slots (EdgeUid offsets) are volatile across transactions but
    // stable within one, even after deletions (tombstones)
    single_rank(|eng| {
        let tx = eng.begin(AccessMode::ReadWrite);
        let v = tx.create_vertex(app(1)).unwrap();
        let others: Vec<_> = (2..6).map(|i| tx.create_vertex(app(i)).unwrap()).collect();
        let e0 = tx.add_edge(v, others[0], None, true).unwrap();
        let e1 = tx.add_edge(v, others[1], None, true).unwrap();
        let e2 = tx.add_edge(v, others[2], None, true).unwrap();
        tx.delete_edge(e1).unwrap();
        // e0 and e2 still resolve to the right endpoints
        assert_eq!(tx.edge_endpoints(e0).unwrap(), (v, others[0]));
        assert_eq!(tx.edge_endpoints(e2).unwrap(), (v, others[2]));
        assert!(tx.edge_endpoints(e1).is_err());
        tx.commit().unwrap();
    });
}

#[test]
fn operations_on_closed_transaction_fail() {
    single_rank(|eng| {
        let tx = eng.begin(AccessMode::ReadWrite);
        let v = tx.create_vertex(app(1)).unwrap();
        let _ = v;
        tx.commit().unwrap();
        let tx2 = eng.begin(AccessMode::ReadWrite);
        tx2.abort();
        // new handle needed; aborted tx cannot be reused (moved), checked
        // via status on a fresh one we abort through an error instead:
        let tx3 = eng.begin(AccessMode::ReadOnly);
        let v = tx3.translate_vertex_id(app(1)).unwrap();
        let _ = tx3.delete_vertex(v); // read-only violation aborts tx3
        assert_eq!(tx3.status(), TxStatus::Aborted);
        assert_eq!(
            tx3.labels(v).unwrap_err(),
            GdiError::TransactionClosed,
            "aborted transaction must reject further operations"
        );
    });
}

#[test]
fn many_parallel_databases() {
    let reg = gda::DbRegistry::new();
    let cfg = GdaConfig::tiny();
    let db1 = reg.create("one", cfg, 2).unwrap();
    let db2 = reg.create("two", cfg, 2).unwrap();
    let f1 = cfg.build_fabric(2, CostModel::zero());
    let f2 = cfg.build_fabric(2, CostModel::zero());
    f1.run(|ctx| {
        let eng = db1.attach(ctx);
        eng.init_collective();
        if ctx.rank() == 0 {
            let tx = eng.begin(AccessMode::ReadWrite);
            tx.create_vertex(app(1)).unwrap();
            tx.commit().unwrap();
        }
        ctx.barrier();
    });
    f2.run(|ctx| {
        let eng = db2.attach(ctx);
        eng.init_collective();
        let tx = eng.begin(AccessMode::ReadOnly);
        // databases are fully isolated
        assert!(tx.translate_vertex_id(app(1)).is_err());
        tx.commit().unwrap();
    });
}

/// The pipelined candidate prefetch behind `neighbors_matching` must
/// keep the sequential path's semantics: identical results against
/// per-candidate fetching. Under MVCC a read-only probe is
/// snapshot-pinned, so a write lock held on a candidate neither
/// blocks nor aborts it — the probe sees the pinned (pre-update)
/// version instead.
#[test]
fn neighbors_matching_batched_prefetch_semantics() {
    single_rank(|eng| {
        let (person, age, _) = std_meta(eng);
        let tx = eng.begin(AccessMode::ReadWrite);
        let hub = tx.create_vertex(app(1)).unwrap();
        let mut nbrs = Vec::new();
        for i in 2..8u64 {
            let v = tx.create_vertex(app(i)).unwrap();
            tx.add_label(v, person).unwrap();
            tx.add_property(v, age, &PropertyValue::U64(i * 10))
                .unwrap();
            tx.add_edge(hub, v, None, true).unwrap();
            nbrs.push(v);
        }
        tx.commit().unwrap();

        // batched filter result ≡ per-candidate reference
        let young = Constraint::from_sub(Subconstraint::new().with_prop(
            age,
            CmpOp::Lt,
            PropertyValue::U64(50),
        ));
        let tx = eng.begin(AccessMode::ReadOnly);
        let got = tx
            .neighbors_matching(hub, EdgeOrientation::Outgoing, None, &young)
            .unwrap();
        let mut want = Vec::new();
        for &v in &nbrs {
            if tx.property(v, age).unwrap() == Some(PropertyValue::U64(20))
                || tx.property(v, age).unwrap() == Some(PropertyValue::U64(30))
                || tx.property(v, age).unwrap() == Some(PropertyValue::U64(40))
            {
                want.push(v);
            }
        }
        assert_eq!(got, want);
        tx.commit().unwrap();

        // a write lock held elsewhere on one candidate no longer
        // disturbs the probe: the snapshot-pinned read bypasses the
        // lock table and resolves every candidate at its pinned
        // (pre-update) version
        let blocker = eng.begin(AccessMode::ReadWrite);
        blocker
            .update_property(nbrs[1], age, &PropertyValue::U64(99))
            .unwrap(); // holds the write lock on nbrs[1]
        let probe = eng.begin(AccessMode::ReadOnly);
        let during = probe
            .neighbors_matching(hub, EdgeOrientation::Outgoing, None, &young)
            .unwrap();
        assert_eq!(during, want, "snapshot probe neither blocks nor aborts");
        probe.commit().unwrap();
        blocker.commit().unwrap();

        // with the lock released the probe succeeds again (and sees the
        // committed update)
        let tx = eng.begin(AccessMode::ReadOnly);
        let after = tx
            .neighbors_matching(hub, EdgeOrientation::Outgoing, None, &young)
            .unwrap();
        assert_eq!(after.len(), want.len() - 1, "updated vertex now filtered");
        tx.commit().unwrap();
    });
}

//! Integration test package (see tests/ directory).

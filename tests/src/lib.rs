//! Integration test package (see the `tests/` directory for the
//! cross-crate suites: paper claims, end-to-end pipeline,
//! property-based, server sessions, recovery, chaos).

pub mod harness;

/// Compiles and runs the README's code examples as doctests, so the
/// quick-start can never drift from the actual API (CI runs
/// `cargo test --doc`).
#[cfg(doctest)]
#[doc = include_str!("../../README.md")]
pub struct ReadmeDoctests;

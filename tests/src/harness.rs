//! Shared durability-test harness: a tiny scripted workload applied
//! serially (identical history on every run), a full-state readback, and
//! an uninterrupted reference executor. Used by the `recovery` and
//! `chaos` integration suites to express the differential oracle
//! *recovered state ≡ uninterrupted state*.

use std::collections::BTreeMap;

use gda::{GdaConfig, GdaDb};
use gdi::{
    AccessMode, AppVertexId, Datatype, EdgeOrientation, EntityType, Multiplicity, PropertyValue,
    SizeType,
};
use rma::CostModel;

/// One logical operation of the generated workload. All ops routed by
/// their first vertex id (the server discipline the replay assumes).
#[derive(Debug, Clone, Copy)]
pub enum WlOp {
    Create(u64),
    SetProp(u64, u64),
    AddEdge(u64, u64),
    Delete(u64),
}

impl WlOp {
    pub fn routing(&self) -> u64 {
        match self {
            WlOp::Create(v) | WlOp::SetProp(v, _) | WlOp::Delete(v) | WlOp::AddEdge(v, _) => *v,
        }
    }
}

/// The observable state of the whole database: per application id, the
/// property value and the any-orientation edge count (`None` = id does
/// not resolve).
pub type ReadState = BTreeMap<u64, Option<(Option<u64>, usize)>>;

/// Execute `ops` serially on `nranks` ranks — each op runs on the rank
/// owning its routing vertex, with a barrier in between, so every run
/// (interrupted or not) sees the identical serial history.
pub fn apply_ops(eng: &gda::GdaRank, ops: &[WlOp], ptype: gdi::PTypeId) {
    let me = eng.rank();
    for op in ops {
        if gda::dptr::owner_rank(AppVertexId(op.routing()), eng.nranks()) == me {
            let tx = eng.begin(AccessMode::ReadWrite);
            let r = (|| -> Result<(), gdi::GdiError> {
                match *op {
                    WlOp::Create(v) => {
                        let id = tx.create_vertex(AppVertexId(v))?;
                        tx.add_property(id, ptype, &PropertyValue::U64(v))?;
                    }
                    WlOp::SetProp(v, x) => {
                        let id = tx.translate_vertex_id(AppVertexId(v))?;
                        tx.update_property(id, ptype, &PropertyValue::U64(x))?;
                    }
                    WlOp::AddEdge(a, b) => {
                        let ia = tx.translate_vertex_id(AppVertexId(a))?;
                        let ib = tx.translate_vertex_id_fresh(AppVertexId(b))?;
                        tx.add_edge(ia, ib, None, true)?;
                    }
                    WlOp::Delete(v) => {
                        let id = tx.translate_vertex_id(AppVertexId(v))?;
                        tx.delete_vertex(id)?;
                    }
                }
                Ok(())
            })();
            match r {
                Ok(()) => {
                    let _ = tx.commit();
                }
                Err(_) => tx.abort(), // e.g. create of an existing id
            }
        }
        eng.ctx().barrier();
    }
}

/// Read back the full observable state (rank 0's view; any rank reads
/// the same data one-sidedly).
pub fn read_state(eng: &gda::GdaRank, ids: u64, ptype: gdi::PTypeId) -> ReadState {
    let mut out = ReadState::new();
    let tx = eng.begin(AccessMode::ReadOnly);
    for v in 0..ids {
        let entry = match tx.translate_vertex_id(AppVertexId(v)) {
            Ok(id) => {
                let prop = tx.property(id, ptype).unwrap().and_then(|p| match p {
                    PropertyValue::U64(x) => Some(x),
                    _ => None,
                });
                let edges = tx.edge_count(id, EdgeOrientation::Any).unwrap();
                Some((prop, edges))
            }
            Err(_) => None,
        };
        out.insert(v, entry);
    }
    tx.commit().unwrap();
    out
}

/// Create (rank 0) or look up the shared `val` property type.
pub fn install_ptype(eng: &gda::GdaRank) -> gdi::PTypeId {
    if eng.rank() == 0 {
        let p = eng
            .create_ptype(
                "val",
                Datatype::Uint64,
                EntityType::Vertex,
                Multiplicity::Single,
                SizeType::Fixed,
                1,
            )
            .unwrap();
        eng.ctx().barrier();
        p
    } else {
        eng.ctx().barrier();
        eng.refresh_meta();
        eng.meta().ptype_from_name("val").unwrap()
    }
}

/// Uninterrupted reference run: all ops on one fabric, no persistence.
pub fn reference_state(nranks: usize, cfg: GdaConfig, ops: &[WlOp], ids: u64) -> ReadState {
    let (db, fabric) = GdaDb::with_fabric("ref", cfg, nranks, CostModel::zero());
    let states = fabric.run(|ctx| {
        let eng = db.attach(ctx);
        eng.init_collective();
        let ptype = install_ptype(&eng);
        apply_ops(&eng, ops, ptype);
        ctx.barrier();
        read_state(&eng, ids, ptype)
    });
    states.into_iter().next().unwrap()
}

//! Topology-sensitivity tests for `workloads::analytics`: BFS and the
//! iterative algorithms must produce **identical results at every rank
//! count**, cross-checked against the single-threaded Graph500-style
//! reference in `baselines::graph500` — and must survive an elastic
//! reshard of the underlying database.
//!
//! Rank-count bugs are exactly the class elastic resharding exposes
//! (ownership formulas, message routing, partition boundaries), and the
//! analytics previously had no test varying the topology for the same
//! GDA-backed graph.

use std::collections::BTreeMap;

use baselines::graph500::{build_csr, csr_bfs};
use gda::persist::{recover_with_topology, PersistOptions};
use gda::GdaDb;
use graphgen::{load_into, sized_config, GraphSpec, LpgConfig};
use rma::{CostModel, FabricBuilder};
use workloads::analytics::{bfs, build_view, cdlp, lcc, pagerank, wcc_converged};
use workloads::scratch::ScratchDir;

fn spec() -> GraphSpec {
    GraphSpec {
        scale: 6,
        edge_factor: 4,
        seed: 42,
        lpg: LpgConfig::bare(),
    }
}

const ROOTS: [u64; 3] = [0, 3, 17];

/// BFS (visited, levels) per root via the tuned CSR reference kernel,
/// single-threaded (one rank).
fn reference_bfs(spec: &GraphSpec) -> Vec<(u64, u32)> {
    let fabric = FabricBuilder::new(1).cost(CostModel::zero()).build();
    fabric
        .run(|ctx| {
            let csr = build_csr(ctx, spec);
            ROOTS.map(|root| csr_bfs(ctx, &csr, root)).to_vec()
        })
        .into_iter()
        .next()
        .unwrap()
}

/// Run `f` against a GDA-loaded copy of the graph at `nranks`, merging
/// every rank's `(app id, value)` pairs into one map.
fn run_gda<V: Clone + Send>(
    spec: &GraphSpec,
    nranks: usize,
    f: impl Fn(&gda::GdaRank, &workloads::analytics::CsrView) -> Vec<(u64, V)> + Sync,
) -> BTreeMap<u64, V> {
    let cfg = sized_config(spec, nranks);
    let (db, fabric) = GdaDb::with_fabric("topo", cfg, nranks, CostModel::default());
    let per_rank = fabric.run(|ctx| {
        let eng = db.attach(ctx);
        eng.init_collective();
        load_into(&eng, spec);
        let apps = spec.vertices_for_rank(ctx.rank(), ctx.nranks());
        let view = build_view(&eng, &apps);
        f(&eng, &view)
    });
    per_rank.into_iter().flatten().collect()
}

#[test]
fn bfs_matches_graph500_reference_at_every_rank_count() {
    let spec = spec();
    let want = reference_bfs(&spec);
    for nranks in [1usize, 3] {
        let got = run_gda(&spec, nranks, |eng, view| {
            ROOTS
                .iter()
                .enumerate()
                .map(|(i, &root)| {
                    let r = bfs(eng, view, root);
                    (i as u64, (r.visited, r.levels))
                })
                .collect()
        });
        for (i, &(visited, levels)) in want.iter().enumerate() {
            assert_eq!(
                got[&(i as u64)],
                (visited, levels),
                "BFS root {} diverged from the graph500 reference at P={nranks}",
                ROOTS[i]
            );
        }
    }
}

#[test]
fn iterative_analytics_identical_across_rank_counts() {
    let spec = spec();
    let collect = |nranks: usize| {
        let pr = run_gda(&spec, nranks, |eng, view| {
            let v = pagerank(eng, view, 10, 0.85);
            view.apps.iter().copied().zip(v).collect()
        });
        let comp = run_gda(&spec, nranks, |eng, view| {
            let v = wcc_converged(eng, view);
            view.apps.iter().copied().zip(v).collect()
        });
        let labels = run_gda(&spec, nranks, |eng, view| {
            let v = cdlp(eng, view, 5);
            view.apps.iter().copied().zip(v).collect()
        });
        (pr, comp, labels)
    };
    let (pr1, comp1, labels1) = collect(1);
    let (pr3, comp3, labels3) = collect(3);
    assert_eq!(pr1.len(), spec.n_vertices() as usize);
    for (v, x) in &pr1 {
        let y = pr3[v];
        assert!(
            (x - y).abs() < 1e-9,
            "PageRank of vertex {v} topology-sensitive: {x} vs {y}"
        );
    }
    assert_eq!(comp1, comp3, "WCC components topology-sensitive");
    assert_eq!(labels1, labels3, "CDLP labels topology-sensitive");
}

#[test]
fn lcc_identical_across_rank_counts() {
    let spec = spec();
    let run = |nranks: usize| {
        run_gda(&spec, nranks, |eng, view| {
            let v = lcc(eng, view);
            view.apps
                .iter()
                .copied()
                .zip(v.into_iter().map(|x| x.to_bits()))
                .collect()
        })
    };
    let a = run(1);
    let b = run(3);
    assert_eq!(a, b, "LCC topology-sensitive");
    assert!(
        a.values().any(|&bits| f64::from_bits(bits) > 0.0),
        "degenerate graph: no triangles found"
    );
}

/// The elastic end-to-end: a graph served at P=2, checkpointed,
/// crashed, and resharded onto Q=3 must run BFS and WCC with results
/// identical to the never-crashed single-threaded reference.
#[test]
fn analytics_survive_elastic_reshard() {
    let spec = spec();
    let want_bfs = reference_bfs(&spec);
    let want_comp = run_gda(&spec, 1, |eng, view| {
        let v = wcc_converged(eng, view);
        view.apps.iter().copied().zip(v).collect::<Vec<_>>()
    });
    let dir = ScratchDir::new("analytics-reshard");
    {
        let cfg = sized_config(&spec, 2);
        let (db, fabric) = GdaDb::with_fabric("ar", cfg, 2, CostModel::default());
        db.enable_persistence(PersistOptions::new(dir.path()))
            .unwrap();
        fabric.run(|ctx| {
            let eng = db.attach(ctx);
            eng.init_collective();
            load_into(&eng, &spec);
            eng.checkpoint().unwrap();
        });
        // drop = crash
    }
    let (db, fabric, plan) = recover_with_topology(
        PersistOptions::new(dir.path()),
        CostModel::default(),
        Some(3),
    )
    .unwrap();
    let per_rank = fabric.run(|ctx| {
        let eng = db.attach(ctx);
        let rec = plan.restore_rank(&eng).unwrap();
        assert_eq!(rec.errors, 0, "{rec:?}");
        let apps = spec.vertices_for_rank(ctx.rank(), ctx.nranks());
        let view = build_view(&eng, &apps);
        let bfs_got = ROOTS
            .iter()
            .map(|&root| {
                let r = bfs(&eng, &view, root);
                (r.visited, r.levels)
            })
            .collect::<Vec<_>>();
        let comp = wcc_converged(&eng, &view);
        (
            bfs_got,
            view.apps.iter().copied().zip(comp).collect::<Vec<_>>(),
        )
    });
    let mut comp_got: BTreeMap<u64, u64> = BTreeMap::new();
    for (bfs_got, comp) in per_rank {
        assert_eq!(bfs_got, want_bfs, "post-reshard BFS diverged");
        comp_got.extend(comp);
    }
    let want_comp: BTreeMap<u64, u64> = want_comp.into_iter().collect();
    assert_eq!(comp_got, want_comp, "post-reshard WCC diverged");
}

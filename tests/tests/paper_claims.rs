//! Shape checks for the paper's headline experimental claims, at test
//! scale: these assert the *relationships* the figures show (who wins, by
//! roughly what factor), which is the contract of this reproduction.

use gdi_bench::{
    gda_olap_on, gda_oltp_on, graph500_bfs_on, janus_oltp_on, neo4j_olap_on, neo4j_oltp_on,
    spec_for, BackendKind, OlapAlgo, ViewMode,
};
use graphgen::{GraphSpec, LpgConfig};
use workloads::oltp::Mix;

const SCALE: u32 = 9;
const OPS: usize = 150;

// Every claim below is a relationship of the LogGP cost model, so the
// runs are pinned to the simulated backend: the suite must stay green
// under a `GDI_FABRIC_BACKEND=wall` environment, where these ratios
// would be hardware noise.
fn gda_oltp(nranks: usize, spec: &GraphSpec, mix: &Mix, ops: usize) -> (f64, f64) {
    gda_oltp_on(BackendKind::Sim, nranks, spec, mix, ops)
}
fn janus_oltp(nranks: usize, spec: &GraphSpec, mix: &Mix, ops: usize) -> (f64, f64) {
    janus_oltp_on(BackendKind::Sim, nranks, spec, mix, ops)
}
fn neo4j_oltp(nranks: usize, spec: &GraphSpec, mix: &Mix, ops: usize) -> (f64, f64) {
    neo4j_oltp_on(BackendKind::Sim, nranks, spec, mix, ops)
}
fn gda_olap(nranks: usize, spec: &GraphSpec, algo: OlapAlgo) -> f64 {
    gda_olap_on(BackendKind::Sim, nranks, spec, algo, ViewMode::Tx)
}
fn neo4j_olap(nranks: usize, spec: &GraphSpec, algo: OlapAlgo) -> f64 {
    neo4j_olap_on(BackendKind::Sim, nranks, spec, algo)
}
fn graph500_bfs(nranks: usize, spec: &GraphSpec) -> f64 {
    graph500_bfs_on(BackendKind::Sim, nranks, spec)
}

#[test]
fn oltp_ordering_gda_beats_janus_beats_neo4j() {
    // Fig. 4 / Fig. 5: GDA outperforms JanusGraph and Neo4j "by more than
    // an order of magnitude in both metrics"
    let spec = spec_for(SCALE, 1, LpgConfig::default());
    let nranks = 4;
    let (gda, _) = gda_oltp(nranks, &spec, &Mix::LINKBENCH, OPS);
    let (janus, _) = janus_oltp(nranks, &spec, &Mix::LINKBENCH, OPS);
    let (neo, _) = neo4j_oltp(nranks, &spec, &Mix::LINKBENCH, OPS);
    assert!(
        gda > 10.0 * janus,
        "GDA ({gda:.4} MQ/s) must beat JanusGraph ({janus:.4}) by >10x"
    );
    assert!(
        janus > neo,
        "JanusGraph ({janus:.4}) must beat Neo4j ({neo:.4})"
    );
}

#[test]
fn oltp_throughput_scales_with_ranks() {
    // Fig. 4a/4b: "adding more servers consistently improves the
    // throughput in both strong and weak scaling". The paper's plots start
    // at 8 servers; we compare two *distributed* points (2 vs 8 ranks) so
    // the local-vs-remote crossover at P=1 does not distort the check.
    let spec2 = spec_for(SCALE, 1, LpgConfig::default());
    let (t2, _) = gda_oltp(2, &spec2, &Mix::READ_MOSTLY, OPS);
    let spec8 = spec_for(SCALE + 2, 1, LpgConfig::default());
    let (t8, _) = gda_oltp(8, &spec8, &Mix::READ_MOSTLY, OPS);
    assert!(
        t8 > 1.5 * t2,
        "weak scaling 2→8 ranks must increase throughput: {t2:.4} → {t8:.4}"
    );
}

#[test]
fn write_mixes_fail_more_than_read_mixes() {
    // Fig. 4 annotations: failed-transaction percentages appear on the
    // write-heavy mixes (LB/WI), not on RM/RI
    let spec = spec_for(7, 5, LpgConfig::default()); // small graph → contention
    let nranks = 6;
    let (_, fail_rm) = gda_oltp(nranks, &spec, &Mix::READ_MOSTLY, 250);
    let (_, fail_wi) = gda_oltp(nranks, &spec, &Mix::WRITE_INTENSIVE, 250);
    assert!(
        fail_wi >= fail_rm,
        "write-intensive failure rate ({fail_wi:.4}) must be >= read-mostly ({fail_rm:.4})"
    );
    assert!(fail_rm < 0.02, "read-mostly failures must be negligible");
    assert!(
        fail_wi < 0.25,
        "WI failures stay low (paper: <2%), got {fail_wi}"
    );
}

#[test]
fn gda_bfs_within_small_factor_of_graph500() {
    // §6.5: "GDA is at most 2–4× slower than Graph500, and sometimes ...
    // comparable"; allow a looser band at tiny scale
    let spec = spec_for(SCALE, 2, LpgConfig::default());
    let nranks = 4;
    let gda = gda_olap(nranks, &spec, OlapAlgo::Bfs);
    let g500 = graph500_bfs(nranks, &spec);
    let ratio = gda / g500;
    assert!(
        ratio < 8.0,
        "GDA BFS must stay within a small factor of Graph500, got {ratio:.2}x"
    );
    assert!(
        ratio > 0.5,
        "suspicious: GDA much faster than the raw kernel"
    );
}

#[test]
fn neo4j_olap_orders_of_magnitude_slower() {
    // Fig. 6e: Neo4j BFS vs GDA BFS
    let spec = spec_for(SCALE, 2, LpgConfig::default());
    let nranks = 4;
    let gda = gda_olap(nranks, &spec, OlapAlgo::Bfs);
    let neo = neo4j_olap(nranks, &spec, OlapAlgo::Bfs);
    assert!(
        neo > 10.0 * gda,
        "Neo4j BFS ({neo:.5}s) must be >10x slower than GDA ({gda:.5}s)"
    );
}

#[test]
fn lcc_costs_more_than_bfs() {
    // §6.5: LCC has complexity O(n + m^1.5) vs O(n + m) for BFS, so its
    // runtime must dominate on the same graph
    let spec = spec_for(8, 3, LpgConfig::default());
    let nranks = 2;
    let bfs = gda_olap(nranks, &spec, OlapAlgo::Bfs);
    let lcc = gda_olap(nranks, &spec, OlapAlgo::Lcc);
    assert!(
        lcc > bfs,
        "LCC ({lcc:.5}s) must cost more than BFS ({bfs:.5}s)"
    );
}

#[test]
fn gnn_runtime_grows_with_feature_dimension() {
    // Fig. 6c/6d: larger k → longer runtimes
    let spec = spec_for(7, 4, LpgConfig::bare());
    let nranks = 2;
    let t4 = gda_olap(nranks, &spec, OlapAlgo::Gnn { layers: 1, k: 4 });
    let t64 = gda_olap(nranks, &spec, OlapAlgo::Gnn { layers: 1, k: 64 });
    assert!(
        t64 > 2.0 * t4,
        "k=64 ({t64:.5}s) must cost well beyond k=4 ({t4:.5}s)"
    );
}

#[test]
fn khop_runtime_increases_with_k() {
    let spec = spec_for(SCALE, 2, LpgConfig::default());
    let nranks = 2;
    let t2 = gda_olap(nranks, &spec, OlapAlgo::Khop(2));
    let t4 = gda_olap(nranks, &spec, OlapAlgo::Khop(4));
    assert!(
        t4 >= t2,
        "4-hop ({t4:.6}s) must cost at least 2-hop ({t2:.6}s)"
    );
}

//! Durability integration tests: the crash/restart axis.
//!
//! * a property-based equivalence check — for arbitrary operation
//!   sequences and an arbitrary checkpoint position, *snapshot + redo
//!   replay* must reconstruct exactly the state an uninterrupted run
//!   reaches (the core durability contract);
//! * the full service-layer round trip — checkpoint mid-traffic, kill
//!   the fabric, `GdiServer::recover()`, and every previously committed
//!   read returns identical results.

use std::sync::Arc;

use proptest::prelude::*;

use gda::persist::{recover, PersistOptions};
use gda::{GdaConfig, GdaDb};
use gdi::{AccessMode, AppVertexId};
use gdi_tests::harness::{apply_ops, install_ptype, read_state, reference_state, ReadState, WlOp};
use rma::CostModel;
use workloads::recovery::{run_kill_restart, RecoveryScenario};
use workloads::scratch::ScratchDir;

fn arb_op(ids: u64) -> impl Strategy<Value = WlOp> {
    prop_oneof![
        (0..ids).prop_map(WlOp::Create),
        (0..ids).prop_map(WlOp::Create),
        (0..ids, 0u64..1_000_000).prop_map(|(v, x)| WlOp::SetProp(v, x)),
        (0..ids, 0..ids).prop_map(|(a, b)| WlOp::AddEdge(a, b)),
        (0..ids).prop_map(WlOp::Delete),
    ]
}

/// Interrupted run: ops up to `cut`, a collective checkpoint, the rest
/// of the ops (redo tail only), then a crash + recovery; returns the
/// recovered read state.
fn recovered_state(
    nranks: usize,
    cfg: GdaConfig,
    ops: &[WlOp],
    cut: usize,
    ids: u64,
    dir: &std::path::Path,
) -> ReadState {
    {
        let (db, fabric) = GdaDb::with_fabric("dur", cfg, nranks, CostModel::zero());
        db.enable_persistence(PersistOptions::new(dir)).unwrap();
        fabric.run(|ctx| {
            let eng = db.attach(ctx);
            eng.init_collective();
            let ptype = install_ptype(&eng);
            apply_ops(&eng, &ops[..cut], ptype);
            eng.checkpoint().unwrap();
            apply_ops(&eng, &ops[cut..], ptype);
        });
        // drop: the crash (everything in memory is lost)
    }
    let (db, fabric, plan) = recover(PersistOptions::new(dir), CostModel::zero()).unwrap();
    let states = fabric.run(|ctx| {
        let eng = db.attach(ctx);
        let rec = plan.restore_rank(&eng).unwrap();
        assert_eq!(rec.errors, 0, "replay errors: {rec:?}");
        let ptype = eng.meta().ptype_from_name("val").unwrap();
        read_state(&eng, ids, ptype)
    });
    states.into_iter().next().unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The core durability contract: snapshot + redo replay ≡ the
    /// uninterrupted execution, for arbitrary op sequences, checkpoint
    /// positions and (1 or 2)-rank fabrics.
    #[test]
    fn snapshot_plus_replay_equals_uninterrupted(
        ops in prop::collection::vec(arb_op(12), 1..28),
        cut_frac in 0.0f64..1.0,
        two_ranks in prop::bool::ANY,
    ) {
        let ids = 12u64;
        let nranks = if two_ranks { 2 } else { 1 };
        let cut = ((ops.len() as f64 * cut_frac) as usize).min(ops.len());
        let cfg = GdaConfig::tiny();
        let td = ScratchDir::new("prop");
        let want = reference_state(nranks, cfg, &ops, ids);
        let got = recovered_state(nranks, cfg, &ops, cut, ids, td.path());
        prop_assert!(
            got == want,
            "recovered state diverged (cut={} of {}, P={}):\n got {:?}\nwant {:?}\n ops {:?}",
            cut, ops.len(), nranks, got, want, ops
        );
    }
}

/// The acceptance round trip at the service layer: tracked traffic,
/// checkpoint mid-stream, kill, `GdiServer::recover()`, and every
/// previously committed read returns identical results.
#[test]
fn server_round_trip_checkpoint_kill_recover() {
    let td = ScratchDir::new("server");
    let mut cfg = RecoveryScenario::new(td.path());
    cfg.nranks = 2;
    cfg.scale = 6;
    cfg.sessions = 6;
    cfg.ops_before = 25;
    cfg.ops_after = 25;
    cfg.cost = CostModel::zero();
    let report = run_kill_restart(&cfg);
    assert!(report.committed_writes > 0);
    assert!(
        report.passed(),
        "read-your-committed-writes across restart violated:\n{}",
        report.mismatches.join("\n")
    );
    assert_eq!(report.checkpoint.id, 1);
    let rec = report.recovery.expect("recovery metrics");
    assert!(rec.records > 0, "the redo tail must contain work: {rec:?}");
    assert_eq!(rec.errors, 0);
    assert_eq!(rec.ranks_restored, 2);
}

/// Recovery directly after an *unclean* checkpoint history: the newest
/// checkpoint attempt failed (injected), so recovery must come from
/// the previous snapshot plus the still-growing redo segment.
#[test]
fn recover_from_previous_snapshot_after_failed_checkpoint() {
    let td = ScratchDir::new("prevsnap");
    let cfg = GdaConfig::tiny();
    {
        let (db, fabric) = GdaDb::with_fabric("prev", cfg, 2, CostModel::zero());
        let store = db
            .enable_persistence(PersistOptions::new(td.path()))
            .unwrap();
        fabric.run(|ctx| {
            let eng = db.attach(ctx);
            eng.init_collective();
            if ctx.rank() == 0 {
                let tx = eng.begin(AccessMode::ReadWrite);
                for i in 0..8u64 {
                    tx.create_vertex(AppVertexId(i)).unwrap();
                }
                tx.commit().unwrap();
            }
            ctx.barrier();
            eng.checkpoint().unwrap();
            // commits after the good checkpoint: redo tail of segment 1
            if ctx.rank() == 1 {
                let tx = eng.begin(AccessMode::ReadWrite);
                tx.create_vertex(AppVertexId(101)).unwrap();
                tx.commit().unwrap();
            }
            ctx.barrier();
            if ctx.rank() == 0 {
                store.fault_plane().arm_at(
                    gda::faults::SNAP_WRITE,
                    Some(0),
                    0,
                    1,
                    gda::faults::FaultMode::Error,
                );
            }
            assert!(eng.checkpoint().is_err());
            // the tail keeps growing on the same segment after the
            // failed attempt
            if ctx.rank() == 0 {
                let tx = eng.begin(AccessMode::ReadWrite);
                tx.create_vertex(AppVertexId(102)).unwrap();
                tx.commit().unwrap();
            }
            ctx.barrier();
        });
    }
    let (db, fabric, plan) = recover(PersistOptions::new(td.path()), CostModel::zero()).unwrap();
    assert_eq!(plan.snapshot_id(), 1, "previous snapshot is the anchor");
    let db: Arc<GdaDb> = db;
    fabric.run(|ctx| {
        let eng = db.attach(ctx);
        let rec = plan.restore_rank(&eng).unwrap();
        assert_eq!(rec.errors, 0);
        let tx = eng.begin(AccessMode::ReadOnly);
        for i in (0..8u64).chain([101, 102]) {
            tx.translate_vertex_id(AppVertexId(i))
                .unwrap_or_else(|e| panic!("vertex {i} lost: {e}"));
        }
        tx.commit().unwrap();
    });
}

//! End-to-end integration: generator → bulk load → OLTP stream → OLAP
//! analytics → OLSP aggregate, all on one database instance, across
//! multiple ranks — the full paper pipeline in one test.

use gda::GdaDb;
use gdi::{AccessMode, AppVertexId, EdgeOrientation};
use graphgen::{load_into, sized_config, GraphSpec, LpgConfig};
use rma::CostModel;
use workloads::analytics::{bfs, build_view, pagerank, wcc_converged};
use workloads::bi2::{bi2, bi2_reference, Bi2Params};
use workloads::oltp::{run_oltp, Mix, OltpConfig};

fn rich_spec(scale: u32) -> GraphSpec {
    GraphSpec {
        scale,
        edge_factor: 8,
        seed: 4242,
        lpg: LpgConfig {
            num_labels: 4,
            num_ptypes: 4,
            labels_per_vertex: 2,
            props_per_vertex: 3,
            edge_label_fraction: 1.0,
            ..Default::default()
        },
    }
}

#[test]
fn full_pipeline_on_one_database() {
    let spec = rich_spec(8);
    let nranks = 4;
    let mut cfg = sized_config(&spec, nranks);
    cfg.blocks_per_rank += 4096;
    cfg.dht_heap_per_rank += 4096;
    let (db, fabric) = GdaDb::with_fabric("e2e", cfg, nranks, CostModel::default());

    fabric.run(|ctx| {
        let eng = db.attach(ctx);
        eng.init_collective();

        // 1. BULK: generator-driven ingestion
        let (meta, rep) = load_into(&eng, &spec);
        let total_v = ctx.allreduce_sum_u64(rep.vertices as u64);
        assert_eq!(total_v, spec.n_vertices());

        // 2. OLSP before mutations: distributed == sequential reference
        let params = Bi2Params {
            person_threshold: u64::MAX / 8,
            target_threshold: u64::MAX / 8,
            ..Default::default()
        };
        let count_before = bi2(&eng, &spec, &meta, &params);
        assert_eq!(count_before, bi2_reference(&spec, &params));

        // 3. OLAP: analytics agree with structure
        let apps = spec.vertices_for_rank(ctx.rank(), ctx.nranks());
        let view = build_view(&eng, &apps);
        let pr = pagerank(&eng, &view, 5, 0.85);
        let pr_total = ctx.allreduce_sum_f64(pr.iter().sum());
        assert!((pr_total - 1.0).abs() < 1e-9);
        let comp = wcc_converged(&eng, &view);
        let r = bfs(&eng, &view, gdi_bench::bfs_root(&spec));
        // BFS from a vertex must stay inside its weakly connected component
        let root_comp = {
            // find the root's component label (it lives on its owner rank)
            let root = gdi_bench::bfs_root(&spec);
            let local = view
                .app_index
                .get(&root)
                .map(|&i| comp[i])
                .unwrap_or(u64::MAX);
            ctx.allreduce_min_u64(local)
        };
        let comp_size =
            ctx.allreduce_sum_u64(comp.iter().filter(|&&c| c == root_comp).count() as u64);
        assert_eq!(
            r.visited, comp_size,
            "BFS reach must equal the root's WCC size (undirected traversal)"
        );

        // 4. OLTP: run a write-heavy stream, then verify invariants
        let res = run_oltp(
            &eng,
            &spec,
            &meta,
            &Mix::WRITE_INTENSIVE,
            &OltpConfig {
                ops_per_rank: 200,
                seed: 11,
            },
        );
        assert!(res.committed > 0);
        ctx.barrier();

        // invariant: every surviving edge has a mirror at the other side
        let tx = eng.begin(AccessMode::ReadOnly);
        let mut checked = 0;
        for &app in apps.iter().take(40) {
            let Ok(v) = tx.translate_vertex_id(AppVertexId(app)) else {
                continue; // deleted by the stream
            };
            for e in tx.edges(v, EdgeOrientation::Outgoing).unwrap() {
                let (o, t) = tx.edge_endpoints(e).unwrap();
                assert_eq!(o, v);
                let back = tx.neighbors(t, EdgeOrientation::Incoming, None).unwrap();
                assert!(back.contains(&v), "missing mirror for {app}");
                checked += 1;
                if checked > 50 {
                    break;
                }
            }
            if checked > 50 {
                break;
            }
        }
        tx.commit().unwrap();
    });
}

#[test]
fn graph500_and_gda_bfs_agree() {
    // the transactional LPG BFS and the raw CSR BFS must visit exactly the
    // same vertex count on the same generated graph
    let spec = GraphSpec {
        scale: 8,
        edge_factor: 8,
        seed: 77,
        lpg: LpgConfig::bare(),
    };
    let nranks = 3;
    let root = gdi_bench::bfs_root(&spec);

    let cfg = sized_config(&spec, nranks);
    let (db, fabric) = GdaDb::with_fabric("x", cfg, nranks, CostModel::default());
    let gda_res = fabric.run(|ctx| {
        let eng = db.attach(ctx);
        eng.init_collective();
        load_into(&eng, &spec);
        let apps = spec.vertices_for_rank(ctx.rank(), ctx.nranks());
        let view = build_view(&eng, &apps);
        bfs(&eng, &view, root)
    });

    let fabric2 = rma::FabricBuilder::new(nranks)
        .cost(CostModel::default())
        .build();
    let g500 = fabric2.run(|ctx| {
        let csr = baselines::build_csr(ctx, &spec);
        baselines::csr_bfs(ctx, &csr, root)
    });

    assert_eq!(gda_res[0].visited, g500[0].0);
    assert_eq!(gda_res[0].levels, g500[0].1);
}

#[test]
fn neo4j_janus_and_gda_store_equivalent_graphs() {
    // all three systems load the same generated graph; spot-check that
    // degree structure agrees
    let spec = GraphSpec {
        scale: 7,
        edge_factor: 4,
        seed: 3,
        lpg: LpgConfig::default(),
    };
    let nranks = 2;

    // reference degrees
    let mut want = vec![0usize; spec.n_vertices() as usize];
    for (u, v) in spec.edges_for_rank(0, 1) {
        want[u as usize] += 1;
        want[v as usize] += 1;
    }

    // GDA
    let cfg = sized_config(&spec, nranks);
    let (db, fabric) = GdaDb::with_fabric("eq", cfg, nranks, CostModel::zero());
    fabric.run(|ctx| {
        let eng = db.attach(ctx);
        eng.init_collective();
        load_into(&eng, &spec);
        let tx = eng.begin(AccessMode::ReadOnly);
        for app in (ctx.rank() as u64..spec.n_vertices()).step_by(nranks * 5) {
            let v = tx.translate_vertex_id(AppVertexId(app)).unwrap();
            assert_eq!(
                tx.edge_count(v, EdgeOrientation::Any).unwrap(),
                want[app as usize],
                "GDA degree of {app}"
            );
        }
        tx.commit().unwrap();
    });

    // Graph500 CSR (degree check is in its own tests; here: totals line up)
    let fabric2 = rma::FabricBuilder::new(nranks)
        .cost(CostModel::zero())
        .build();
    fabric2.run(|ctx| {
        let csr = baselines::build_csr(ctx, &spec);
        let local = csr.n_local_edges() as u64;
        let total = ctx.allreduce_sum_u64(local);
        assert_eq!(total, 2 * spec.n_edges());
    });
}

#[test]
fn crash_of_one_rank_fails_fast_not_hangs() {
    // the poisoned-barrier behaviour: a panicking rank must not deadlock
    // the fabric (regression test for the harness itself)
    let fabric = rma::FabricBuilder::new(3).cost(CostModel::zero()).build();
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        fabric.run(|ctx| {
            if ctx.rank() == 1 {
                panic!("injected failure");
            }
            ctx.barrier(); // ranks 0 and 2 would hang forever without poisoning
        });
    }));
    assert!(result.is_err(), "panic must propagate to the caller");
}

//! Differential oracle for the zero-transaction OLAP scan layer
//! (`gda::scan`): on random graphs, under random interleaved
//! insert/delete churn, the scan-built `CsrView` must stay logically
//! identical to the tx-built view — and a cached mirror revalidated
//! through `GdaRank::olap_view` must never serve a stale read.
//!
//! The churn driver alternates mutation batches (vertex create/delete,
//! edge add/delete, property updates) with oracle checks; every check
//! compares the epoch-validated cached view against a freshly built
//! tx view over the same partition, edge for edge.

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use gda::{GdaConfig, GdaDb, GdaRank};
use gdi::{AccessMode, AppVertexId, EdgeOrientation};
use rma::CostModel;
use workloads::analytics::{build_view, pagerank, scan_view, CsrView};

/// One random mutation step of the churn driver.
#[derive(Debug, Clone, Copy)]
enum ChurnOp {
    AddVertex,
    DeleteVertex,
    AddEdge,
    DeleteEdge,
    SetProp,
}

fn arb_op() -> impl Strategy<Value = ChurnOp> {
    // duplication stands in for weights (edge churn dominates)
    prop_oneof![
        Just(ChurnOp::AddVertex),
        Just(ChurnOp::AddVertex),
        Just(ChurnOp::DeleteVertex),
        Just(ChurnOp::AddEdge),
        Just(ChurnOp::AddEdge),
        Just(ChurnOp::AddEdge),
        Just(ChurnOp::AddEdge),
        Just(ChurnOp::DeleteEdge),
        Just(ChurnOp::SetProp),
        Just(ChurnOp::SetProp),
    ]
}

/// Shared-state-free tracking of the live app ids: the driver runs on
/// rank 0 only and re-derives targets from its own bookkeeping.
struct Driver {
    live: Vec<u64>,
    next_app: u64,
    rng: SmallRng,
}

impl Driver {
    fn pick(&mut self) -> Option<u64> {
        if self.live.is_empty() {
            None
        } else {
            let i = self.rng.gen_range(0..self.live.len());
            Some(self.live[i])
        }
    }

    fn apply(&mut self, eng: &GdaRank, op: ChurnOp, ptype: gdi::PTypeId) {
        let tx = eng.begin(AccessMode::ReadWrite);
        let ok = match op {
            ChurnOp::AddVertex => {
                self.next_app += 1;
                let app = self.next_app;
                match tx.create_vertex(AppVertexId(app)) {
                    Ok(_) => {
                        self.live.push(app);
                        true
                    }
                    Err(_) => false,
                }
            }
            ChurnOp::DeleteVertex => match self.pick() {
                Some(app) => match tx
                    .translate_vertex_id(AppVertexId(app))
                    .and_then(|v| tx.delete_vertex(v))
                {
                    Ok(()) => {
                        self.live.retain(|&a| a != app);
                        true
                    }
                    Err(_) => false,
                },
                None => false,
            },
            ChurnOp::AddEdge => {
                let (Some(a), Some(b)) = (self.pick(), self.pick()) else {
                    tx.abort();
                    return;
                };
                let dir = self.rng.gen_bool(0.7);
                tx.translate_vertex_id(AppVertexId(a))
                    .and_then(|va| {
                        tx.translate_vertex_id(AppVertexId(b))
                            .and_then(|vb| tx.add_edge(va, vb, None, dir))
                    })
                    .is_ok()
            }
            ChurnOp::DeleteEdge => match self.pick() {
                Some(app) => tx
                    .translate_vertex_id(AppVertexId(app))
                    .and_then(|v| {
                        let es = tx.edges(v, EdgeOrientation::Any)?;
                        match es.first() {
                            Some(&e) => tx.delete_edge(e),
                            None => Ok(()),
                        }
                    })
                    .is_ok(),
                None => false,
            },
            ChurnOp::SetProp => match self.pick() {
                Some(app) => tx
                    .translate_vertex_id(AppVertexId(app))
                    .and_then(|v| {
                        tx.update_property(v, ptype, &gdi::PropertyValue::U64(self.next_app))
                    })
                    .is_ok(),
                None => false,
            },
        };
        if ok {
            tx.commit().expect("churn commit");
        } else {
            tx.abort();
        }
    }
}

/// Build the tx oracle over exactly the partition a scan view covers
/// and compare. Returns the number of divergent views (0 or 1).
fn check_rank(eng: &GdaRank, view: &CsrView) -> usize {
    let want = build_view(eng, &view.apps.clone());
    usize::from(!view.logical_eq(&want))
}

fn run_churn_case(nranks: usize, seed: u64, ops: Vec<ChurnOp>, durable: bool) {
    let cfg = GdaConfig::tiny();
    let db = GdaDb::new("olap-scan-prop", cfg, nranks);
    let scratch = durable
        .then(|| workloads::scratch::ScratchDir::new(&format!("olap-scan-prop-{nranks}-{seed}")));
    if let Some(dir) = &scratch {
        db.enable_persistence(gda::PersistOptions::new(dir.path()))
            .unwrap();
    }
    let fabric = cfg.build_fabric(nranks, CostModel::default());
    let divergences = fabric.run(|ctx| {
        let eng = db.attach(ctx);
        eng.init_collective();
        // a deterministic base graph plus a property type for the
        // property-churn ops (must never invalidate a view)
        if ctx.rank() == 0 {
            eng.create_ptype(
                "p",
                gdi::Datatype::Uint64,
                gdi::EntityType::Vertex,
                gdi::Multiplicity::Single,
                gdi::SizeType::Fixed,
                1,
            )
            .unwrap();
        }
        ctx.barrier();
        eng.refresh_meta();
        let ptype = eng.meta().ptype_from_name("p").unwrap();
        let base: u64 = 18;
        if ctx.rank() == 0 {
            let tx = eng.begin(AccessMode::ReadWrite);
            let vids: Vec<_> = (0..base)
                .map(|a| tx.create_vertex(AppVertexId(a)).unwrap())
                .collect();
            for i in 0..base {
                tx.add_edge(
                    vids[i as usize],
                    vids[((i + 1) % base) as usize],
                    None,
                    true,
                )
                .unwrap();
            }
            tx.commit().unwrap();
        }
        ctx.barrier();

        let mut divergences = 0usize;
        let mut driver = Driver {
            live: (0..base).collect(),
            next_app: base,
            rng: SmallRng::seed_from_u64(seed),
        };
        // initial mirror (collective) + oracle check
        let mut view = eng.olap_view();
        divergences += check_rank(&eng, &view);
        for chunk in ops.chunks(4) {
            // churn runs on rank 0 only; everyone else waits (the scan
            // layer's quiescent-OLAP contract)
            if ctx.rank() == 0 {
                for &op in chunk {
                    driver.apply(&eng, op, ptype);
                }
            }
            ctx.barrier();
            // the epoch-validated cached view must match a fresh tx
            // oracle after every batch — a stale read is a divergence
            view = eng.olap_view();
            divergences += check_rank(&eng, &view);
        }
        // the fresh (uncached) scan builder agrees as well
        let fresh = scan_view(&eng);
        divergences += check_rank(&eng, &fresh);
        if !fresh.logical_eq(&view) {
            divergences += 1;
        }
        divergences
    });
    assert_eq!(
        divergences.iter().sum::<usize>(),
        0,
        "scan view diverged from the tx oracle under churn (seed {seed})"
    );
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12 })]

    /// In-memory databases: every epoch movement forces a rebuild; the
    /// rebuilt mirror must equal the tx oracle after every churn batch.
    #[test]
    fn scan_view_equals_tx_view_under_churn(
        seed in 0u64..1_000_000,
        nranks in 1usize..4,
        ops in prop::collection::vec(arb_op(), 4..28),
    ) {
        run_churn_case(nranks, seed, ops, false);
    }

    /// Durable databases additionally exercise the redo-log delta
    /// patch: small edge-only deltas are patched in place, membership
    /// changes force rebuilds — either way the oracle must hold.
    #[test]
    fn durable_scan_view_patches_stay_exact(
        seed in 0u64..1_000_000,
        nranks in 1usize..4,
        ops in prop::collection::vec(arb_op(), 4..20),
    ) {
        run_churn_case(nranks, seed, ops, true);
    }
}

/// The server wiring: collective OLAP jobs submitted through
/// `GdiServer::submit_olap` share one epoch-validated mirror — the
/// first job sweeps, later jobs revalidate and reuse, and interleaved
/// served writes retire it exactly when they change topology.
#[test]
fn server_olap_jobs_reuse_the_mirror_across_requests() {
    use server::{GdiServer, ServerOptions};

    let nranks = 2;
    let cfg = GdaConfig::tiny();
    let db = GdaDb::new("olap-scan-server", cfg, nranks);
    let fabric = cfg.build_fabric(nranks, CostModel::default());
    let server = GdiServer::new(db.clone(), ServerOptions::default());

    let srv = server.clone();
    std::thread::scope(|scope| {
        let ranks = {
            let server = server.clone();
            let db = db.clone();
            scope.spawn(move || {
                fabric.run(|ctx| {
                    let eng = db.attach(ctx);
                    eng.init_collective();
                    if ctx.rank() == 0 {
                        let tx = eng.begin(AccessMode::ReadWrite);
                        let vids: Vec<_> = (0..12u64)
                            .map(|a| tx.create_vertex(AppVertexId(a)).unwrap())
                            .collect();
                        for i in 0..12 {
                            tx.add_edge(vids[i], vids[(i + 1) % 12], None, true)
                                .unwrap();
                        }
                        tx.commit().unwrap();
                    }
                    ctx.barrier();
                    server.serve_rank(ctx)
                })
            })
        };

        // three identical PageRank jobs: the mirror is built once and
        // reused by the next two (epoch unchanged)
        let job = |srv: &GdiServer| {
            srv.submit_olap(|eng| {
                let v = eng.olap_view();
                let pr = pagerank(eng, &v, 5, 0.85);
                pr.iter().sum::<f64>()
            })
            .expect("submit olap")
            .wait()
        };
        let r1 = job(&srv);
        let r2 = job(&srv);
        let r3 = job(&srv);
        assert!(r1.is_committed() && r2.is_committed() && r3.is_committed());
        // a topology change between jobs retires the mirror
        let s = srv.session();
        let out = s
            .execute(server::Op::AddEdge {
                from: AppVertexId(3),
                to: AppVertexId(7),
                label: None,
            })
            .expect("submit edge");
        assert!(out.is_committed(), "edge add failed: {out:?}");
        let r4 = job(&srv);
        assert!(r4.is_committed());
        srv.shutdown();
        let summaries = ranks.join().expect("serve ranks");
        assert_eq!(summaries.len(), nranks);

        let m = srv.metrics();
        assert!(
            m.scan_reuses() >= 2 * nranks as u64,
            "jobs 2 and 3 must reuse the mirror: {} reuses",
            m.scan_reuses()
        );
        assert!(
            m.scan_builds() + m.scan_patches() >= 2,
            "the first job and the post-write job must rebuild/patch \
             (builds {}, patches {})",
            m.scan_builds(),
            m.scan_patches()
        );
    });
}

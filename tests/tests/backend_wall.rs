//! Differential oracle for the wall-clock execution backend: the same
//! logical workload must reach the identical observable state whether
//! the fabric charges LogGP costs (`Sim`) or runs free on real threads
//! with `Instant` timing (`Wall`). The backends share every atomic op —
//! only the clock differs — so any state divergence is a real bug in
//! the backend seam.
//!
//! Two layers:
//! * a property-based slice of the durability differential — arbitrary
//!   op sequences executed under `Wall` at P ∈ {1, 2, 4} against the
//!   single-rank simulated reference;
//! * the full service-layer kill/recover round trip of
//!   `workloads::recovery` pinned to `Wall` at P ∈ {1, 2, 4}.

use std::collections::BTreeMap;

use proptest::prelude::*;

use gda::{GdaConfig, GdaDb};
use gdi::{
    AccessMode, AppVertexId, Datatype, EdgeOrientation, EntityType, Multiplicity, PropertyValue,
    SizeType,
};
use rma::{BackendKind, CostModel};
use workloads::recovery::{run_kill_restart, RecoveryScenario};
use workloads::scratch::ScratchDir;

/// One logical operation, routed by its first vertex id.
#[derive(Debug, Clone, Copy)]
enum WlOp {
    Create(u64),
    SetProp(u64, u64),
    AddEdge(u64, u64),
    Delete(u64),
}

impl WlOp {
    fn routing(&self) -> u64 {
        match self {
            WlOp::Create(v) | WlOp::SetProp(v, _) | WlOp::Delete(v) | WlOp::AddEdge(v, _) => *v,
        }
    }
}

fn arb_op(ids: u64) -> impl Strategy<Value = WlOp> {
    prop_oneof![
        (0..ids).prop_map(WlOp::Create),
        (0..ids).prop_map(WlOp::Create),
        (0..ids, 0u64..1_000_000).prop_map(|(v, x)| WlOp::SetProp(v, x)),
        (0..ids, 0..ids).prop_map(|(a, b)| WlOp::AddEdge(a, b)),
        (0..ids).prop_map(WlOp::Delete),
    ]
}

/// Observable state: per application id, the property value and the
/// any-orientation edge count (`None` = id does not resolve).
type ReadState = BTreeMap<u64, Option<(Option<u64>, usize)>>;

fn install_ptype(eng: &gda::GdaRank) -> gdi::PTypeId {
    if eng.rank() == 0 {
        let p = eng
            .create_ptype(
                "val",
                Datatype::Uint64,
                EntityType::Vertex,
                Multiplicity::Single,
                SizeType::Fixed,
                1,
            )
            .unwrap();
        eng.ctx().barrier();
        p
    } else {
        eng.ctx().barrier();
        eng.refresh_meta();
        eng.meta().ptype_from_name("val").unwrap()
    }
}

/// Execute `ops` serially: each op runs on the rank owning its routing
/// vertex, with a barrier in between, so every topology and backend
/// sees the identical serial history.
fn apply_ops(eng: &gda::GdaRank, ops: &[WlOp], ptype: gdi::PTypeId) {
    let me = eng.rank();
    for op in ops {
        if gda::dptr::owner_rank(AppVertexId(op.routing()), eng.nranks()) == me {
            let tx = eng.begin(AccessMode::ReadWrite);
            let r = (|| -> Result<(), gdi::GdiError> {
                match *op {
                    WlOp::Create(v) => {
                        let id = tx.create_vertex(AppVertexId(v))?;
                        tx.add_property(id, ptype, &PropertyValue::U64(v))?;
                    }
                    WlOp::SetProp(v, x) => {
                        let id = tx.translate_vertex_id(AppVertexId(v))?;
                        tx.update_property(id, ptype, &PropertyValue::U64(x))?;
                    }
                    WlOp::AddEdge(a, b) => {
                        let ia = tx.translate_vertex_id(AppVertexId(a))?;
                        let ib = tx.translate_vertex_id_fresh(AppVertexId(b))?;
                        tx.add_edge(ia, ib, None, true)?;
                    }
                    WlOp::Delete(v) => {
                        let id = tx.translate_vertex_id(AppVertexId(v))?;
                        tx.delete_vertex(id)?;
                    }
                }
                Ok(())
            })();
            match r {
                Ok(()) => {
                    let _ = tx.commit();
                }
                Err(_) => tx.abort(),
            }
        }
        eng.ctx().barrier();
    }
}

fn read_state(eng: &gda::GdaRank, ids: u64, ptype: gdi::PTypeId) -> ReadState {
    let mut out = ReadState::new();
    let tx = eng.begin(AccessMode::ReadOnly);
    for v in 0..ids {
        let entry = match tx.translate_vertex_id(AppVertexId(v)) {
            Ok(id) => {
                let prop = tx.property(id, ptype).unwrap().and_then(|p| match p {
                    PropertyValue::U64(x) => Some(x),
                    _ => None,
                });
                let edges = tx.edge_count(id, EdgeOrientation::Any).unwrap();
                Some((prop, edges))
            }
            Err(_) => None,
        };
        out.insert(v, entry);
    }
    tx.commit().unwrap();
    out
}

/// Run the workload to completion on `nranks` ranks under `backend`
/// and return the final observable state plus the per-rank reports.
fn final_state(
    backend: BackendKind,
    nranks: usize,
    ops: &[WlOp],
    ids: u64,
) -> (ReadState, Vec<rma::RankReport>) {
    let (db, fabric) = GdaDb::with_fabric_on(
        "bw",
        GdaConfig::tiny(),
        nranks,
        CostModel::default(),
        backend,
    );
    let states = fabric.run(|ctx| {
        let eng = db.attach(ctx);
        eng.init_collective();
        let ptype = install_ptype(&eng);
        apply_ops(&eng, ops, ptype);
        ctx.barrier();
        read_state(&eng, ids, ptype)
    });
    let reports = fabric.last_reports();
    (states.into_iter().next().unwrap(), reports)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The backend seam must be invisible to the logical outcome:
    /// `Wall` at P ∈ {1, 2, 4} reaches exactly the state the simulated
    /// single-rank reference reaches, for arbitrary op sequences.
    #[test]
    fn wall_execution_matches_simulated_reference(
        ops in prop::collection::vec(arb_op(12), 1..24),
    ) {
        let ids = 12u64;
        let (want, _) = final_state(BackendKind::Sim, 1, &ops, ids);
        for nranks in [1usize, 2, 4] {
            let (got, reports) = final_state(BackendKind::Wall, nranks, &ops, ids);
            prop_assert!(
                got == want,
                "wall state diverged at P={}:\n got {:?}\nwant {:?}\n ops {:?}",
                nranks, got, want, ops
            );
            for r in &reports {
                prop_assert!(r.sim_time_ns == 0.0, "wall run charged the sim clock");
                prop_assert!(r.wall_time_ns > 0.0, "wall run kept no wall time");
            }
        }
    }
}

/// The service-layer acceptance loop under the wall backend: tracked
/// traffic, checkpoint mid-stream, kill, recover, and every committed
/// read returns identical results — at P ∈ {1, 2, 4}.
#[test]
fn recovery_round_trip_under_wall_backend() {
    for nranks in [1usize, 2, 4] {
        let td = ScratchDir::new(&format!("bw-recovery-{nranks}"));
        let mut cfg = RecoveryScenario::new(td.path());
        cfg.backend = Some(BackendKind::Wall);
        cfg.nranks = nranks;
        cfg.scale = 6;
        cfg.sessions = 4;
        cfg.ops_before = 20;
        cfg.ops_after = 20;
        cfg.cost = CostModel::default();
        let report = run_kill_restart(&cfg);
        assert!(report.committed_writes > 0, "P={nranks}: no committed work");
        assert!(
            report.passed(),
            "P={nranks}: read-your-committed-writes across restart violated:\n{}",
            report.mismatches.join("\n")
        );
        let rec = report.recovery.expect("recovery metrics");
        assert_eq!(rec.errors, 0, "P={nranks}: replay errors");
        assert!(rec.records > 0, "P={nranks}: empty redo tail");
        assert_eq!(rec.ranks_restored, nranks);
    }
}

//! Crash-point torture tests over the fault plane (`gda::faults`).
//!
//! The differential oracle: for an arbitrary scripted workload run
//! through a **checkpoint → delta checkpoint → maintenance** sequence
//! with ONE injected fault at an arbitrary storage crash point (snapshot
//! write, manifest write, `CURRENT` publish, log rotate, prune — torn or
//! erroring, any rank, any occurrence), the state read back after crash
//! recovery must equal the uninterrupted reference run exactly. Every
//! fault on these paths is survivable by construction: a voted abort
//! unwinds the attempt and the redo tails stay replayable.
//!
//! Plus a deterministic torn-redo-tail case at the integration level:
//! a crash mid-append leaves a half-written frame whose checksum fails;
//! recovery must truncate it and keep every earlier commit.
//!
//! Runs under both fabric backends (CI sets `GDI_FABRIC_BACKEND`) and
//! scales down via `PROPTEST_CASES` for the smoke form.

use std::sync::Arc;

use proptest::prelude::*;

use gda::faults::{self, FaultMode};
use gda::persist::{recover, PersistOptions};
use gda::{GdaConfig, GdaDb};
use gdi::{AccessMode, AppVertexId, PropertyValue};
use gdi_tests::harness::{apply_ops, install_ptype, read_state, reference_state, ReadState, WlOp};
use rma::CostModel;
use workloads::scratch::ScratchDir;

/// Storage crash points on the checkpoint/maintenance path. None of
/// them may lose a committed write — the equality oracle below. (Read
/// faults and `redo.append` are exercised by dedicated tests: they
/// legitimately cost an *undurable* tail, so exact equality is the
/// wrong oracle for them.)
const CRASH_POINTS: &[&str] = &[
    faults::SNAP_WRITE,
    faults::MANIFEST_WRITE,
    faults::CURRENT_RENAME,
    faults::REDO_ROTATE,
    faults::SNAP_PRUNE,
];

fn arb_op(ids: u64) -> impl Strategy<Value = WlOp> {
    prop_oneof![
        (0..ids).prop_map(WlOp::Create),
        (0..ids).prop_map(WlOp::Create),
        (0..ids, 0u64..1_000_000).prop_map(|(v, x)| WlOp::SetProp(v, x)),
        (0..ids, 0..ids).prop_map(|(a, b)| WlOp::AddEdge(a, b)),
        (0..ids).prop_map(WlOp::Delete),
    ]
}

/// Interrupted run: the scripted ops interleaved with a full checkpoint,
/// a delta checkpoint and a maintenance pass, with one fault armed at
/// `(point, rank, skip)`; then a crash and recovery. Returns the
/// recovered read state.
#[allow(clippy::too_many_arguments)]
fn tortured_state(
    nranks: usize,
    cfg: GdaConfig,
    ops: &[WlOp],
    cuts: (usize, usize),
    ids: u64,
    dir: &std::path::Path,
    point: &str,
    rank: Option<usize>,
    skip: u64,
    mode: FaultMode,
) -> ReadState {
    {
        let (db, fabric) = GdaDb::with_fabric("chaos", cfg, nranks, CostModel::zero());
        let store = db.enable_persistence(PersistOptions::new(dir)).unwrap();
        store.fault_plane().arm_at(point, rank, skip, 1, mode);
        fabric.run(|ctx| {
            let eng = db.attach(ctx);
            eng.init_collective();
            let ptype = install_ptype(&eng);
            apply_ops(&eng, &ops[..cuts.0], ptype);
            // any of these collective steps may be the crash point; a
            // voted failure must unwind without losing committed work
            let _ = eng.checkpoint();
            apply_ops(&eng, &ops[cuts.0..cuts.1], ptype);
            let _ = eng.checkpoint(); // dirty-chunk delta path
            let _ = eng.maintenance(); // vacuum + verify + prune path
            apply_ops(&eng, &ops[cuts.1..], ptype);
        });
        // drop: the crash (everything in memory is lost)
    }
    let (db, fabric, plan) = recover(PersistOptions::new(dir), CostModel::zero()).unwrap();
    let db: Arc<GdaDb> = db;
    let states = fabric.run(|ctx| {
        let eng = db.attach(ctx);
        let rec = plan.restore_rank(&eng).unwrap();
        assert_eq!(rec.errors, 0, "replay errors: {rec:?}");
        let ptype = eng.meta().ptype_from_name("val").unwrap();
        read_state(&eng, ids, ptype)
    });
    states.into_iter().next().unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Zero divergence at sampled crash points, P ∈ {1, 2, 4}: the
    /// recovered state equals the uninterrupted oracle no matter which
    /// storage fault fired where in the checkpoint→delta→maintenance
    /// sequence.
    #[test]
    fn crash_points_never_diverge_from_oracle(
        ops in prop::collection::vec(arb_op(10), 1..22),
        cut1_frac in 0.0f64..1.0,
        cut2_frac in 0.0f64..1.0,
        point_idx in 0usize..CRASH_POINTS.len(),
        rank_pick in 0usize..6,
        skip in 0u64..3,
        torn in prop::bool::ANY,
        p_pick in 0usize..3,
    ) {
        let ids = 10u64;
        let nranks = [1usize, 2, 4][p_pick];
        let (a, b) = (
            (ops.len() as f64 * cut1_frac) as usize,
            (ops.len() as f64 * cut2_frac) as usize,
        );
        let cuts = (a.min(b).min(ops.len()), a.max(b).min(ops.len()));
        let point = CRASH_POINTS[point_idx];
        // None = any rank; Some(r) scopes the fault to one rank
        let rank = (rank_pick < nranks).then_some(rank_pick);
        let mode = if torn && point == faults::SNAP_WRITE {
            FaultMode::TornWrite(16)
        } else {
            FaultMode::Error
        };
        let cfg = GdaConfig::tiny();
        let td = ScratchDir::new("chaos-prop");
        let want = reference_state(nranks, cfg, &ops, ids);
        let got = tortured_state(
            nranks, cfg, &ops, cuts, ids, td.path(), point, rank, skip, mode,
        );
        prop_assert!(
            got == want,
            "recovered state diverged (point={point} rank={rank:?} skip={skip} \
             mode={mode:?} cuts={cuts:?} of {} P={nranks}):\n got {got:?}\nwant {want:?}\n ops {ops:?}",
            ops.len()
        );
    }
}

/// Deterministic torn-tail regression at the integration level: a crash
/// mid-append leaves a half-written frame; the frame checksum must catch
/// it, recovery truncates the tail and keeps every commit before it.
#[test]
fn torn_redo_tail_is_truncated_at_last_valid_frame() {
    let td = ScratchDir::new("chaos-torn");
    let cfg = GdaConfig::tiny();
    {
        let (db, fabric) = GdaDb::with_fabric("torn", cfg, 2, CostModel::zero());
        let store = db
            .enable_persistence(PersistOptions::new(td.path()))
            .unwrap();
        fabric.run(|ctx| {
            let eng = db.attach(ctx);
            eng.init_collective();
            let ptype = install_ptype(&eng);
            apply_ops(
                &eng,
                &[WlOp::Create(0), WlOp::Create(1), WlOp::AddEdge(0, 1)],
                ptype,
            );
            eng.checkpoint().unwrap();
            // the next append on rank 0 "crashes" after 10 bytes
            if ctx.rank() == 0 {
                store.fault_plane().arm_at(
                    faults::REDO_APPEND,
                    Some(0),
                    0,
                    1,
                    FaultMode::TornWrite(10),
                );
            }
            ctx.barrier();
            // owner of id 2 is rank 0 on P=2: this commit's frame tears
            apply_ops(&eng, &[WlOp::Create(2)], ptype);
            ctx.barrier();
        });
        assert_eq!(store.log_errors(), 1, "torn append surfaced");
    }
    let (db, fabric, plan) = recover(PersistOptions::new(td.path()), CostModel::zero()).unwrap();
    let db: Arc<GdaDb> = db;
    fabric.run(|ctx| {
        let eng = db.attach(ctx);
        let rec = plan.restore_rank(&eng).unwrap();
        assert_eq!(rec.errors, 0, "truncation, not replay errors: {rec:?}");
        let ptype = eng.meta().ptype_from_name("val").unwrap();
        let tx = eng.begin(AccessMode::ReadOnly);
        // everything before the torn frame survives…
        for v in [0u64, 1] {
            let id = tx.translate_vertex_id(AppVertexId(v)).unwrap();
            assert_eq!(tx.property(id, ptype).unwrap(), Some(PropertyValue::U64(v)));
        }
        // …the torn commit is gone (its durability was lost, honestly)
        assert!(tx.translate_vertex_id(AppVertexId(2)).is_err());
        tx.commit().unwrap();
    });
}

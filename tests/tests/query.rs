//! Differential tests for the declarative query layer (`crates/query`).
//!
//! * a property-based sweep: for randomized graphs and randomized query
//!   shapes, the planner-picked plan AND every viable forced path must
//!   return exactly the sequential generator-space oracle
//!   (`workloads::queries::reference_eval`), on 1-, 2- and 4-rank
//!   fabrics;
//! * the durable axis: the same differential contract holds against a
//!   database that was checkpointed, killed and recovered from its
//!   snapshot (index postings included);
//! * a golden test pinning the stable [`query::Plan::explain`] format.

use proptest::prelude::*;

use gda::persist::{recover, PersistOptions};
use gda::{GdaDb, IndexDef, IndexId};
use gdi::{AppVertexId, CmpOp, EdgeOrientation, LabelId, PTypeId};
use graphgen::{sized_config, GraphSpec, LpgMeta};
use query::{executor, planner, AggTarget, Query, QueryBuilder, QueryValue};
use rma::CostModel;
use workloads::queries::{load_with_label_indexes, reference_eval, suite, SuiteParams};
use workloads::scratch::ScratchDir;

fn rich_spec(scale: u32, edge_factor: u32, seed: u64) -> GraphSpec {
    GraphSpec {
        scale,
        edge_factor,
        seed,
        lpg: graphgen::LpgConfig {
            num_labels: 4,
            num_ptypes: 4,
            labels_per_vertex: 2,
            props_per_vertex: 3,
            edge_label_fraction: 1.0,
            ..Default::default()
        },
    }
}

// ---------------------------------------------------------------------
// Randomized query shapes (generator index space; resolved to ids once
// the metadata is installed)
// ---------------------------------------------------------------------

#[derive(Debug, Clone)]
struct ExpandSketch {
    orient: EdgeOrientation,
    edge_label: Option<usize>,
    target_label: Option<usize>,
    target_prop: Option<(usize, u64)>,
}

#[derive(Debug, Clone)]
struct QuerySketch {
    root_label: Option<usize>,
    root_prop: Option<(usize, CmpOp, u64)>,
    app_id: Option<u64>,
    expands: Vec<ExpandSketch>,
    close: bool,
    agg: u8, // 0 count, 1 sum, 2 collect
    sum_prop: usize,
    target_last: bool,
}

fn arb_orient() -> impl Strategy<Value = EdgeOrientation> {
    prop_oneof![
        Just(EdgeOrientation::Outgoing),
        Just(EdgeOrientation::Outgoing),
        Just(EdgeOrientation::Any),
        Just(EdgeOrientation::Incoming),
    ]
}

fn arb_op() -> impl Strategy<Value = CmpOp> {
    prop_oneof![
        Just(CmpOp::Gt),
        Just(CmpOp::Le),
        Just(CmpOp::Ne),
        Just(CmpOp::Ge),
    ]
}

fn arb_expand() -> impl Strategy<Value = ExpandSketch> {
    (
        arb_orient(),
        prop::option::of(0usize..4),
        prop::option::of(0usize..4),
        prop::option::of((0usize..4, any::<u64>())),
    )
        .prop_map(
            |(orient, edge_label, target_label, target_prop)| ExpandSketch {
                orient,
                edge_label,
                target_label,
                target_prop,
            },
        )
}

fn arb_query() -> impl Strategy<Value = QuerySketch> {
    (
        prop::option::of(0usize..4),
        prop::option::of((0usize..4, arb_op(), any::<u64>())),
        prop::option::of(0u64..96),
        prop::collection::vec(arb_expand(), 0..3),
        any::<bool>(),
        0u8..3,
        0usize..4,
        any::<bool>(),
    )
        .prop_map(
            |(root_label, root_prop, app_id, expands, close, agg, sum_prop, target_last)| {
                QuerySketch {
                    root_label,
                    root_prop,
                    app_id,
                    expands,
                    close,
                    agg,
                    sum_prop,
                    target_last,
                }
            },
        )
}

fn build_query(meta: &LpgMeta, s: &QuerySketch) -> Query {
    let mut b = QueryBuilder::node("a");
    if let Some(l) = s.root_label {
        b = b.label(meta.label(l));
    }
    if let Some((p, op, v)) = s.root_prop {
        b = b.prop(meta.ptype(p), op, gdi::PropertyValue::U64(v));
    }
    if let Some(a) = s.app_id {
        b = b.with_app_id(AppVertexId(a));
    }
    let n = s.expands.len();
    for (i, e) in s.expands.iter().enumerate() {
        b = b.expand(e.orient, e.edge_label.map(|l| meta.label(l)));
        if s.close && i == n - 1 {
            b = b.close_cycle();
            continue;
        }
        b = b.to(&format!("v{}", i + 1));
        if let Some(l) = e.target_label {
            b = b.label(meta.label(l));
        }
        if let Some((p, v)) = e.target_prop {
            b = b.prop_gt(meta.ptype(p), v);
        }
    }
    let target = if s.target_last {
        AggTarget::Last
    } else {
        AggTarget::Root
    };
    match s.agg {
        0 => b.count(target),
        1 => b.sum(target, meta.ptype(s.sum_prop)),
        _ => b.collect_ids(target),
    }
}

/// Run `q` through the planner-picked plan and every viable forced
/// choice on a fresh `nranks`-rank database; every result must equal the
/// sequential oracle.
fn assert_all_paths_match(nranks: usize, spec: &GraphSpec, sketches: &[QuerySketch]) {
    let cfg = sized_config(spec, nranks);
    let (db, fabric) = GdaDb::with_fabric("qdiff", cfg, nranks, CostModel::zero());
    let spec = *spec;
    let sketches = sketches.to_vec();
    let outcomes = fabric.run(move |ctx| {
        let eng = db.attach(ctx);
        eng.init_collective();
        let (meta, _) = load_with_label_indexes(&eng, &spec);
        let _ = eng.olap_view();
        let cat = planner::Catalog::gather(&eng);
        let mut failures: Vec<String> = Vec::new();
        for (qi, s) in sketches.iter().enumerate() {
            let q = build_query(&meta, s);
            let want = reference_eval(&spec, &meta, &q);
            let picked = planner::plan(&cat, &q);
            let got = executor::execute(&eng, &q, &picked);
            if got.value != want {
                failures.push(format!(
                    "query {qi} [{}] planner pick {}: got {:?}, oracle {:?}",
                    q.display(),
                    picked.choice,
                    got.value,
                    want
                ));
            }
            for choice in planner::viable_choices(&cat, &q) {
                let Some(plan) = planner::plan_choice(&cat, &q, choice) else {
                    continue;
                };
                let got = executor::execute(&eng, &q, &plan);
                if got.value != want {
                    failures.push(format!(
                        "query {qi} [{}] forced {}: got {:?}, oracle {:?}",
                        q.display(),
                        choice,
                        got.value,
                        want
                    ));
                }
            }
        }
        failures
    });
    if let Some(f) = outcomes.into_iter().flatten().next() {
        panic!("{f}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// planner pick ≡ every forced path ≡ sequential oracle, for
    /// arbitrary query shapes on arbitrary small graphs, P ∈ {1, 2, 4}.
    #[test]
    fn randomized_queries_match_oracle_on_all_paths(
        scale in 5u32..=6,
        edge_factor in 2u32..=6,
        seed in 0u64..1000,
        pidx in 0usize..3,
        sketches in prop::collection::vec(arb_query(), 3..4),
    ) {
        let nranks = [1usize, 2, 4][pidx];
        let spec = rich_spec(scale, edge_factor, seed);
        assert_all_paths_match(nranks, &spec, &sketches);
    }
}

// ---------------------------------------------------------------------
// Durable axis: differential contract after checkpoint + crash + recover
// ---------------------------------------------------------------------

/// Reconstruct the generator's metadata handles from a recovered
/// catalog by the names `install_metadata` gave them.
fn remeta(eng: &gda::GdaRank, spec: &GraphSpec) -> LpgMeta {
    let snap = eng.meta();
    LpgMeta {
        labels: (0..spec.lpg.num_labels)
            .map(|i| snap.label_from_name(&format!("L{i}")).expect("label"))
            .collect(),
        ptypes: (0..spec.lpg.num_ptypes)
            .map(|i| snap.ptype_from_name(&format!("P{i}")).expect("ptype"))
            .collect(),
        all_index: eng
            .all_indexes()
            .into_iter()
            .find(|d| d.name == "__all")
            .map(|d| d.id),
    }
}

#[test]
fn suite_matches_oracle_after_recovery() {
    let spec = rich_spec(6, 8, 17);
    let params = SuiteParams::default();
    let nranks = 3;
    let td = ScratchDir::new("query-recover");
    {
        let cfg = sized_config(&spec, nranks);
        let (db, fabric) = GdaDb::with_fabric("qdur", cfg, nranks, CostModel::zero());
        db.enable_persistence(PersistOptions::new(td.path()))
            .unwrap();
        fabric.run(|ctx| {
            let eng = db.attach(ctx);
            eng.init_collective();
            let _ = load_with_label_indexes(&eng, &spec);
            eng.checkpoint().unwrap();
        });
        // drop: the crash — everything in memory is lost
    }
    let (db, fabric, plan) = recover(PersistOptions::new(td.path()), CostModel::zero()).unwrap();
    let outcomes = fabric.run(|ctx| {
        let eng = db.attach(ctx);
        let rec = plan.restore_rank(&eng).unwrap();
        assert_eq!(rec.errors, 0, "replay errors: {rec:?}");
        ctx.barrier();
        let meta = remeta(&eng, &spec);
        let _ = eng.olap_view();
        let cat = planner::Catalog::gather(&eng);
        // the recovered database must still carry the per-label postings
        assert!(
            cat.indexes
                .iter()
                .any(|ix| ix.def.name == "lab1" && ix.entries > 0),
            "per-label index postings lost in recovery: {:?}",
            cat.indexes
        );
        let mut results = Vec::new();
        for (name, q) in suite(&meta, &params) {
            let want = reference_eval(&spec, &meta, &q);
            let picked = planner::plan(&cat, &q);
            let got = executor::execute(&eng, &q, &picked);
            assert_eq!(
                got.value, want,
                "{name} (picked {}) diverged",
                picked.choice
            );
            for choice in planner::viable_choices(&cat, &q) {
                let Some(p) = planner::plan_choice(&cat, &q, choice) else {
                    continue;
                };
                let got = executor::execute(&eng, &q, &p);
                assert_eq!(got.value, want, "{name} (forced {choice}) diverged");
            }
            results.push((name, got.value));
        }
        results
    });
    // every rank agrees with rank 0
    let first = outcomes[0].clone();
    for o in &outcomes[1..] {
        assert_eq!(o, &first);
    }
    // sanity: the suite is not trivially empty on this graph
    assert!(first
        .iter()
        .any(|(_, v)| !matches!(v, QueryValue::Count(0) | QueryValue::Sum(0))));
}

// ---------------------------------------------------------------------
// Golden explain format
// ---------------------------------------------------------------------

fn golden_catalog() -> planner::Catalog {
    planner::Catalog {
        nranks: 4,
        n_vertices: 4096,
        n_labels: 4,
        indexes: vec![
            planner::IndexStat {
                def: IndexDef {
                    id: IndexId(1),
                    name: "__all".to_string(),
                    labels: vec![],
                    ptypes: vec![],
                },
                entries: 4096,
            },
            planner::IndexStat {
                def: IndexDef {
                    id: IndexId(2),
                    name: "lab1".to_string(),
                    labels: vec![LabelId(1)],
                    ptypes: vec![],
                },
                entries: 2048,
            },
        ],
        deg_out: 8.0,
        deg_any: 16.0,
        view_cached: true,
        cost: CostModel::default(),
        meta_epoch: 1,
    }
}

/// `Plan::explain` is a stable text format: tools (and humans) parse it,
/// so any change must be deliberate — update the golden string when it
/// is.
#[test]
fn explain_format_is_stable() {
    let cat = golden_catalog();
    let q = QueryBuilder::node("p")
        .label(LabelId(1))
        .prop_gt(PTypeId(10), 100)
        .expand_out(Some(LabelId(2)))
        .to("c")
        .label(LabelId(3))
        .prop_gt(PTypeId(11), 200)
        .count(AggTarget::Root);
    let plan = planner::plan(&cat, &q);
    let golden = "\
query: MATCH (p:#1)-[:#2]->(c:#3) RETURN count(DISTINCT p)
choice: index-scan(ix2)+csr est=0.152ms rows~227.6 [view]
  stage 1: index-scan[lab1] (p labels=1 props=1) rows~682.7 est=0.041ms
  stage 2: expand-csr out[lbl] to (c labels=1 props=1) rows~227.6 est=0.104ms
  stage 3: count(distinct p) rows~227.6 est=0.006ms
alternatives:
  index-scan(ix2)+csr      0.152ms
  sweep+csr                0.192ms
  index-scan(ix2)+tx       0.881ms
  sweep+tx                 0.932ms
";
    assert_eq!(
        plan.explain(),
        golden,
        "explain drifted:\n---- got ----\n{}\n---- want ----\n{golden}",
        plan.explain()
    );
}

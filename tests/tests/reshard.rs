//! Elastic resharding integration tests: the differential topology
//! oracle.
//!
//! * a property-based cross-topology equivalence check — for arbitrary
//!   operation traces and an arbitrary checkpoint position, *checkpoint
//!   at `P` → recover at `Q`* must yield a database whose **full
//!   logical contents** (every vertex, its property, its edge count and
//!   neighbor multiset, the DHT translations and the index postings)
//!   are identical for `Q ∈ {1, P−1, P, P+3}` — and identical to an
//!   uninterrupted execution that never crashed at all;
//! * an environment-driven `P → Q` round trip (`GDI_RESHARD_P` /
//!   `GDI_RESHARD_Q`) so CI can pin a rank-count matrix;
//! * a fault-injection retry: a failed reshard aborts collectively and
//!   a second attempt from the untouched snapshot succeeds.

use std::collections::{BTreeMap, BTreeSet};
use std::fs;
use std::path::Path;

use proptest::prelude::*;

use gda::persist::{recover_with_topology, PersistOptions};
use gda::{GdaConfig, GdaDb};
use gdi::{
    AccessMode, AppVertexId, Datatype, EdgeOrientation, EntityType, Multiplicity, PropertyValue,
    SizeType,
};
use rma::CostModel;
use workloads::scratch::ScratchDir;

/// One logical operation of the generated workload (routed by its
/// first vertex id, the server discipline).
#[derive(Debug, Clone, Copy)]
enum WlOp {
    Create(u64),
    SetProp(u64, u64),
    AddEdge(u64, u64),
    Delete(u64),
}

impl WlOp {
    fn routing(&self) -> u64 {
        match self {
            WlOp::Create(v) | WlOp::SetProp(v, _) | WlOp::Delete(v) | WlOp::AddEdge(v, _) => *v,
        }
    }
}

fn arb_op(ids: u64) -> impl Strategy<Value = WlOp> {
    prop_oneof![
        (0..ids).prop_map(WlOp::Create),
        (0..ids).prop_map(WlOp::Create),
        (0..ids, 0u64..1_000_000).prop_map(|(v, x)| WlOp::SetProp(v, x)),
        (0..ids, 0..ids).prop_map(|(a, b)| WlOp::AddEdge(a, b)),
        (0..ids).prop_map(WlOp::Delete),
    ]
}

/// The full observable contents of the database: per application id
/// `None` (id does not translate) or `(property value, any-orientation
/// edge count, sorted neighbor app-id multiset)`; plus the global set
/// of app ids the explicit index posts.
type FullState = (
    BTreeMap<u64, Option<(Option<u64>, usize, Vec<u64>)>>,
    BTreeSet<u64>,
);

/// Serial op application: each op runs on its routing vertex's owner
/// rank with barriers in between, so every run sees the identical
/// serial history regardless of the rank count.
fn apply_ops(eng: &gda::GdaRank, ops: &[WlOp], ptype: gdi::PTypeId) {
    let me = eng.rank();
    for op in ops {
        if gda::dptr::owner_rank(AppVertexId(op.routing()), eng.nranks()) == me {
            let tx = eng.begin(AccessMode::ReadWrite);
            let r = (|| -> Result<(), gdi::GdiError> {
                match *op {
                    WlOp::Create(v) => {
                        let id = tx.create_vertex(AppVertexId(v))?;
                        tx.add_property(id, ptype, &PropertyValue::U64(v))?;
                    }
                    WlOp::SetProp(v, x) => {
                        let id = tx.translate_vertex_id(AppVertexId(v))?;
                        tx.update_property(id, ptype, &PropertyValue::U64(x))?;
                    }
                    WlOp::AddEdge(a, b) => {
                        let ia = tx.translate_vertex_id(AppVertexId(a))?;
                        let ib = tx.translate_vertex_id_fresh(AppVertexId(b))?;
                        tx.add_edge(ia, ib, None, true)?;
                    }
                    WlOp::Delete(v) => {
                        let id = tx.translate_vertex_id(AppVertexId(v))?;
                        tx.delete_vertex(id)?;
                    }
                }
                Ok(())
            })();
            match r {
                Ok(()) => {
                    let _ = tx.commit();
                }
                Err(_) => tx.abort(),
            }
        }
        eng.ctx().barrier();
    }
}

/// Collective full-contents read (identical result on every rank).
fn read_full_state(
    eng: &gda::GdaRank,
    ids: u64,
    ptype: gdi::PTypeId,
    index: gda::IndexId,
) -> FullState {
    let mut map = BTreeMap::new();
    let tx = eng.begin(AccessMode::ReadOnly);
    for v in 0..ids {
        let entry = match tx.translate_vertex_id(AppVertexId(v)) {
            Ok(id) => {
                let prop = tx.property(id, ptype).unwrap().and_then(|p| match p {
                    PropertyValue::U64(x) => Some(x),
                    _ => None,
                });
                let edges = tx.edge_count(id, EdgeOrientation::Any).unwrap();
                let mut nbrs: Vec<u64> = tx
                    .neighbors(id, EdgeOrientation::Any, None)
                    .unwrap()
                    .into_iter()
                    .map(|n| tx.vertex_app_id(n).unwrap().0)
                    .collect();
                nbrs.sort_unstable();
                Some((prop, edges, nbrs))
            }
            Err(_) => None,
        };
        map.insert(v, entry);
    }
    tx.commit().unwrap();
    let mine: Vec<u64> = eng
        .local_index_vertices(index)
        .into_iter()
        .map(|p| p.app_id.0)
        .collect();
    let posted: BTreeSet<u64> = eng.ctx().allgatherv(mine).into_iter().flatten().collect();
    (map, posted)
}

/// Install the `val` property type and the all-vertices index on
/// rank 0; every rank returns both handles.
fn install_schema(eng: &gda::GdaRank) -> (gdi::PTypeId, gda::IndexId) {
    if eng.rank() == 0 {
        eng.create_ptype(
            "val",
            Datatype::Uint64,
            EntityType::Vertex,
            Multiplicity::Single,
            SizeType::Fixed,
            1,
        )
        .unwrap();
        eng.create_index("all", vec![], vec![]).unwrap();
        eng.ctx().barrier();
    } else {
        eng.ctx().barrier();
        eng.refresh_meta();
    }
    let p = eng.meta().ptype_from_name("val").unwrap();
    let ix = eng.all_indexes()[0].id;
    (p, ix)
}

/// Uninterrupted reference run at `nranks` (no persistence, no crash).
fn reference_state(nranks: usize, cfg: GdaConfig, ops: &[WlOp], ids: u64) -> FullState {
    let (db, fabric) = GdaDb::with_fabric("ref", cfg, nranks, CostModel::zero());
    let states = fabric.run(|ctx| {
        let eng = db.attach(ctx);
        eng.init_collective();
        let (ptype, ix) = install_schema(&eng);
        apply_ops(&eng, ops, ptype);
        ctx.barrier();
        read_full_state(&eng, ids, ptype, ix)
    });
    states.into_iter().next().unwrap()
}

/// Run ops at `P` with a mid-trace checkpoint and crash, leaving the
/// persistence directory behind.
fn run_and_crash(nranks: usize, cfg: GdaConfig, ops: &[WlOp], cut: usize, dir: &Path) {
    let (db, fabric) = GdaDb::with_fabric("dur", cfg, nranks, CostModel::zero());
    db.enable_persistence(PersistOptions::new(dir)).unwrap();
    fabric.run(|ctx| {
        let eng = db.attach(ctx);
        eng.init_collective();
        let (ptype, _) = install_schema(&eng);
        apply_ops(&eng, &ops[..cut], ptype);
        eng.checkpoint().unwrap();
        apply_ops(&eng, &ops[cut..], ptype);
    });
    // drop = the crash
}

/// Recover the crashed directory at `q` ranks and read everything.
fn recover_at(q: usize, dir: &Path, ids: u64) -> FullState {
    let (db, fabric, plan) =
        recover_with_topology(PersistOptions::new(dir), CostModel::zero(), Some(q)).unwrap();
    assert_eq!(db.nranks(), q);
    let states = fabric.run(|ctx| {
        let eng = db.attach(ctx);
        let rec = plan.restore_rank(&eng).unwrap();
        assert_eq!(rec.errors, 0, "restore errors at Q={q}: {rec:?}");
        let ptype = eng.meta().ptype_from_name("val").unwrap();
        let ix = eng.all_indexes()[0].id;
        read_full_state(&eng, ids, ptype, ix)
    });
    states.into_iter().next().unwrap()
}

/// Recursive directory copy, so each target topology reshards the
/// *pristine* `P`-rank snapshot (a reshard publishes its own
/// checkpoint, which would otherwise change the source topology for
/// the next `Q`).
fn copy_dir(src: &Path, dst: &Path) {
    fs::create_dir_all(dst).unwrap();
    for e in fs::read_dir(src).unwrap() {
        let e = e.unwrap();
        let to = dst.join(e.file_name());
        if e.file_type().unwrap().is_dir() {
            copy_dir(&e.path(), &to);
        } else {
            fs::copy(e.path(), &to).unwrap();
        }
    }
}

fn target_topologies(p: usize) -> Vec<usize> {
    let mut qs = vec![1, p.saturating_sub(1).max(1), p, p + 3];
    qs.sort_unstable();
    qs.dedup();
    qs
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The differential topology oracle: for arbitrary traces and
    /// checkpoint positions, recover-at-Q is logically identical to
    /// uninterrupted execution for every Q — including scale-in.
    #[test]
    fn reshard_at_any_topology_equals_uninterrupted(
        ops in prop::collection::vec(arb_op(12), 1..24),
        cut_frac in 0.0f64..1.0,
    ) {
        let ids = 12u64;
        let p = 2usize;
        let cut = ((ops.len() as f64 * cut_frac) as usize).min(ops.len());
        let cfg = GdaConfig::tiny();
        let base = ScratchDir::new("reshard-prop");
        let want = reference_state(p, cfg, &ops, ids);
        run_and_crash(p, cfg, &ops, cut, base.path());
        for q in target_topologies(p) {
            let work = ScratchDir::new(&format!("reshard-prop-q{q}"));
            copy_dir(base.path(), work.path());
            let got = recover_at(q, work.path(), ids);
            prop_assert!(
                got == want,
                "recover-at-Q diverged (P={}, Q={}, cut={} of {}):\n got {:?}\nwant {:?}\n ops {:?}",
                p, q, cut, ops.len(), got, want, ops
            );
        }
    }
}

/// The CI rank-count matrix: a fixed trace across `GDI_RESHARD_P` →
/// `GDI_RESHARD_Q` (defaults 2 → 5), equal to uninterrupted execution.
#[test]
fn env_matrix_round_trip() {
    let p: usize = std::env::var("GDI_RESHARD_P")
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(2);
    let q: usize = std::env::var("GDI_RESHARD_Q")
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(5);
    let ids = 16u64;
    let ops: Vec<WlOp> = (0..ids)
        .map(WlOp::Create)
        .chain((0..ids).map(|v| WlOp::SetProp(v, v * 31)))
        .chain((0..ids).map(|v| WlOp::AddEdge(v, (v + 3) % ids)))
        .chain([WlOp::Delete(5), WlOp::Delete(11), WlOp::Create(5)])
        .collect();
    let cfg = GdaConfig::tiny();
    let want = reference_state(p, cfg, &ops, ids);
    let dir = ScratchDir::new(&format!("reshard-matrix-{p}-{q}"));
    run_and_crash(p, cfg, &ops, ops.len() / 2, dir.path());
    let got = recover_at(q, dir.path(), ids);
    assert_eq!(got, want, "P={p} Q={q} matrix run diverged");
}

/// A failed reshard (injected on a receiving rank) must abort
/// collectively and leave the snapshot fully reshardable: the second
/// attempt succeeds with identical contents.
#[test]
fn failed_reshard_attempt_is_retryable() {
    let ids = 10u64;
    let ops: Vec<WlOp> = (0..ids)
        .map(WlOp::Create)
        .chain((0..ids).map(|v| WlOp::AddEdge(v, (v + 1) % ids)))
        .collect();
    let cfg = GdaConfig::tiny();
    let p = 2usize;
    let want = reference_state(p, cfg, &ops, ids);
    let dir = ScratchDir::new("reshard-retry");
    run_and_crash(p, cfg, &ops, ops.len() / 2, dir.path());
    // attempt 1: a receiving rank fails mid-redistribution
    {
        let (db, fabric, plan) =
            recover_with_topology(PersistOptions::new(dir.path()), CostModel::zero(), Some(4))
                .unwrap();
        db.persistence().unwrap().fault_plane().arm_at(
            gda::faults::RESHARD_REDISTRIBUTE,
            Some(1),
            0,
            1,
            gda::faults::FaultMode::Error,
        );
        let errs = fabric.run(|ctx| {
            let eng = db.attach(ctx);
            plan.restore_rank(&eng).err()
        });
        assert!(
            errs.iter().all(|e| e.is_some()),
            "collective abort: {errs:?}"
        );
    }
    // attempt 2: the snapshot and logs are untouched — reshard succeeds
    let got = recover_at(4, dir.path(), ids);
    assert_eq!(got, want, "retry after failed reshard diverged");
}

//! MVCC snapshot isolation: the anomaly boundary, pinned.
//!
//! Three deterministic tests nail the isolation level from both sides —
//! what snapshot isolation *admits* (write skew: overlapping reads,
//! disjoint writes, both commit) and what it *forbids* (overlapping
//! writes: exactly one transaction aborts on the write-write conflict;
//! a snapshot reader concurrent with a writer's lock neither blocks
//! nor aborts).
//!
//! A property-based differential harness then replays every snapshot
//! read against a sequential oracle at the read's pinned epoch, for
//! arbitrary interleavings of writers and long-held readers, at
//! P ∈ {1, 2, 4}, under both the simulated and the wall-clock backend,
//! in-memory and across a checkpoint + crash + recovery round trip
//! (which exercises the recovered watermark: restored too low, a fresh
//! pin would miss committed pre-crash state).

use std::collections::BTreeMap;
use std::sync::Mutex;

use proptest::prelude::*;

use gda::dptr::owner_rank;
use gda::persist::{recover, PersistOptions};
use gda::{GdaConfig, GdaDb, GdaRank};
use gdi::{
    AccessMode, AppVertexId, Datatype, EntityType, GdiError, Multiplicity, PropertyValue, SizeType,
    TxStatus,
};
use rma::{BackendKind, CostModel};
use workloads::scratch::ScratchDir;

fn app(v: u64) -> AppVertexId {
    AppVertexId(v)
}

fn install_ptype(eng: &GdaRank) -> gdi::PTypeId {
    if eng.rank() == 0 {
        let p = eng
            .create_ptype(
                "val",
                Datatype::Uint64,
                EntityType::Vertex,
                Multiplicity::Single,
                SizeType::Fixed,
                1,
            )
            .unwrap();
        eng.ctx().barrier();
        p
    } else {
        eng.ctx().barrier();
        eng.refresh_meta();
        eng.meta().ptype_from_name("val").unwrap()
    }
}

/// Rank 0 creates vertices `ids` with `val = init`, commits, barrier.
fn seed_vertices(eng: &GdaRank, ptype: gdi::PTypeId, ids: &[u64], init: u64) {
    if eng.rank() == 0 {
        let tx = eng.begin(AccessMode::ReadWrite);
        for &i in ids {
            let v = tx.create_vertex(app(i)).unwrap();
            tx.add_property(v, ptype, &PropertyValue::U64(init))
                .unwrap();
        }
        tx.commit().unwrap();
    }
    eng.ctx().barrier();
}

fn read_val(tx: &gda::Transaction, ptype: gdi::PTypeId, id: u64) -> Option<u64> {
    let v = tx.translate_vertex_id(app(id)).ok()?;
    match tx.property(v, ptype) {
        Ok(Some(PropertyValue::U64(x))) => Some(x),
        _ => None,
    }
}

// ---------------------------------------------------------------------
// Anomaly boundary, side 1: SI admits write skew
// ---------------------------------------------------------------------

/// Two concurrent transactions each read BOTH vertices (overlapping
/// read sets, sum == 2 at read time) and each write a DIFFERENT one
/// (disjoint write sets). Under snapshot isolation both commit — the
/// "sum must stay ≥ 1" constraint each validated against its reads is
/// jointly violated. This is the write-skew anomaly SI is *defined* to
/// admit; serializability would have aborted one.
#[test]
fn write_skew_admitted_for_disjoint_writes() {
    let (db, fabric) = GdaDb::with_fabric("skew", GdaConfig::tiny(), 2, CostModel::zero());
    fabric.run(|ctx| {
        let eng = db.attach(ctx);
        eng.init_collective();
        let ptype = install_ptype(&eng);
        seed_vertices(&eng, ptype, &[1, 2], 1);

        let tx = eng.begin(AccessMode::ReadWrite);
        let sum = read_val(&tx, ptype, 1).unwrap() + read_val(&tx, ptype, 2).unwrap();
        assert_eq!(sum, 2, "constraint holds at read time on every rank");
        ctx.barrier(); // both transactions have performed their (lock-free) reads

        // disjoint writes: rank 0 zeroes vertex 1, rank 1 zeroes vertex 2
        let mine = 1 + ctx.rank() as u64;
        let v = tx.translate_vertex_id(app(mine)).unwrap();
        tx.update_property(v, ptype, &PropertyValue::U64(0))
            .unwrap();
        ctx.barrier(); // both hold their write lock — no conflict: disjoint

        tx.commit()
            .expect("snapshot isolation admits write skew: both writers commit");
        ctx.barrier();

        let ro = eng.begin(AccessMode::ReadOnly);
        let sum = read_val(&ro, ptype, 1).unwrap() + read_val(&ro, ptype, 2).unwrap();
        ro.commit().unwrap();
        assert_eq!(sum, 0, "the jointly-violated constraint is the anomaly");
    });
}

// ---------------------------------------------------------------------
// Anomaly boundary, side 2: overlapping writes abort exactly one
// ---------------------------------------------------------------------

/// The same shape with overlapping WRITE sets is forbidden: both
/// transactions read both vertices, but both try to write vertex 1.
/// The write-write conflict must abort exactly one of them (the loser
/// of the write lock) while the winner commits.
#[test]
fn overlapping_writes_abort_exactly_one() {
    let (db, fabric) = GdaDb::with_fabric("ww", GdaConfig::tiny(), 2, CostModel::zero());
    fabric.run(|ctx| {
        let eng = db.attach(ctx);
        eng.init_collective();
        let ptype = install_ptype(&eng);
        seed_vertices(&eng, ptype, &[1, 2], 1);

        let tx = eng.begin(AccessMode::ReadWrite);
        let _ = read_val(&tx, ptype, 1).unwrap();
        let _ = read_val(&tx, ptype, 2).unwrap();
        ctx.barrier(); // overlapping lock-free reads done on both ranks

        let v1 = tx.translate_vertex_id(app(1)).unwrap();
        if ctx.rank() == 0 {
            // rank 0 takes the write lock first...
            tx.update_property(v1, ptype, &PropertyValue::U64(99))
                .unwrap();
            ctx.barrier();
            ctx.barrier(); // ...and holds it across rank 1's attempt
            tx.commit().expect("the write-lock winner commits");
        } else {
            ctx.barrier(); // rank 0 now holds the write lock on vertex 1
            let err = tx
                .update_property(v1, ptype, &PropertyValue::U64(77))
                .unwrap_err();
            assert_eq!(err, GdiError::LockConflict, "write-write conflict");
            assert_eq!(
                tx.status(),
                TxStatus::Aborted,
                "exactly one transaction aborts"
            );
            ctx.barrier();
        }
        ctx.barrier();

        let ro = eng.begin(AccessMode::ReadOnly);
        assert_eq!(read_val(&ro, ptype, 1), Some(99), "winner's write survives");
        ro.commit().unwrap();
    });
}

// ---------------------------------------------------------------------
// Satellite regression: snapshot reads bypass writer locks
// ---------------------------------------------------------------------

/// `begin(ReadOnly)` pins a snapshot by default: a snapshot read of an
/// object whose write lock is concurrently held neither blocks nor
/// aborts — it returns the pinned pre-update version.
#[test]
fn snapshot_read_under_writer_lock_neither_blocks_nor_aborts() {
    let (db, fabric) = GdaDb::with_fabric("pin", GdaConfig::tiny(), 1, CostModel::zero());
    fabric.run(|ctx| {
        let eng = db.attach(ctx);
        eng.init_collective();
        let ptype = install_ptype(&eng);
        seed_vertices(&eng, ptype, &[1], 1);

        let blocker = eng.begin(AccessMode::ReadWrite);
        let v = blocker.translate_vertex_id(app(1)).unwrap();
        blocker
            .update_property(v, ptype, &PropertyValue::U64(2))
            .unwrap(); // write lock on vertex 1 is now held

        let reader = eng.begin(AccessMode::ReadOnly);
        assert!(
            reader.snapshot_epoch().is_some(),
            "read-only transactions pin a snapshot by default"
        );
        assert_eq!(
            read_val(&reader, ptype, 1),
            Some(1),
            "snapshot read returns the pinned pre-update version"
        );
        assert_eq!(reader.status(), TxStatus::Active, "read did not abort");
        reader.commit().unwrap();

        blocker.commit().unwrap();

        let after = eng.begin(AccessMode::ReadOnly);
        assert_eq!(
            read_val(&after, ptype, 1),
            Some(2),
            "new pin sees the commit"
        );
        after.commit().unwrap();
    });
    let reports = fabric.last_reports();
    let pins: u64 = reports.iter().map(|r| r.snapshot_pins).sum();
    let sreads: u64 = reports.iter().map(|r| r.snapshot_reads).sum();
    assert!(pins >= 2, "both read-only transactions pinned ({pins})");
    assert!(
        sreads >= 1,
        "reads went through the snapshot path ({sreads})"
    );
}

// ---------------------------------------------------------------------
// Differential harness: snapshot reads vs a sequential oracle
// ---------------------------------------------------------------------

const IDS: u64 = 6;
const SLOTS: usize = 2;

/// One step of a serialized interleaving. `Write` commits on the id's
/// owner rank; `BeginRead` pins a snapshot on the slot's rank and holds
/// it open across later writes; `EndRead` performs every read at the
/// pinned epoch, checks it against the oracle, and unpins.
#[derive(Debug, Clone, Copy)]
enum SiOp {
    Write(u64, u64),
    BeginRead(usize),
    EndRead(usize),
}

fn arb_si_op() -> impl Strategy<Value = SiOp> {
    prop_oneof![
        (0..IDS, 0u64..1_000_000).prop_map(|(v, x)| SiOp::Write(v, x)),
        (0..SLOTS).prop_map(SiOp::BeginRead),
        (0..SLOTS).prop_map(SiOp::EndRead),
    ]
}

/// The oracle: every committed write as `(epoch, id, val)`, in epoch
/// order (execution is serialized by barriers, so push order == epoch
/// order). `base` holds writes that predate the epoch space of the
/// current fabric (i.e. recovered pre-crash state, visible to every
/// pin).
struct Oracle {
    base: BTreeMap<u64, u64>,
    log: Mutex<Vec<(u64, u64, u64)>>,
}

impl Oracle {
    fn expected_at(&self, snap: u64) -> BTreeMap<u64, u64> {
        let mut m = self.base.clone();
        for &(e, id, val) in self.log.lock().unwrap().iter() {
            if e <= snap {
                m.insert(id, val);
            }
        }
        m
    }
}

/// Run `ops` serially (one barrier per step) on an attached engine,
/// checking every `EndRead` against the oracle. Returns divergence
/// descriptions (empty = clean). `created` tracks which app ids exist,
/// maintained identically on every rank.
fn apply_si_ops(
    eng: &GdaRank,
    ptype: gdi::PTypeId,
    ops: &[SiOp],
    oracle: &Oracle,
    created: &mut std::collections::BTreeSet<u64>,
) -> Vec<String> {
    let me = eng.rank();
    let n = eng.nranks();
    let mut divergences = Vec::new();
    let mut open: Vec<Option<(gda::Transaction, u64)>> = (0..SLOTS).map(|_| None).collect();
    let mut open_slots = [false; SLOTS];
    let check = |tx: &gda::Transaction, snap: u64, divergences: &mut Vec<String>| {
        let want = oracle.expected_at(snap);
        for id in 0..IDS {
            let got = read_val(tx, ptype, id);
            if got != want.get(&id).copied() {
                divergences.push(format!(
                    "id {id} at snapshot {snap}: read {:?}, oracle {:?}",
                    got,
                    want.get(&id)
                ));
            }
        }
    };
    for op in ops {
        eng.ctx().barrier();
        match *op {
            SiOp::Write(id, val) => {
                let exists = created.contains(&id);
                if owner_rank(app(id), n) == me {
                    let tx = eng.begin(AccessMode::ReadWrite);
                    if exists {
                        let v = tx.translate_vertex_id(app(id)).unwrap();
                        tx.update_property(v, ptype, &PropertyValue::U64(val))
                            .unwrap();
                    } else {
                        let v = tx.create_vertex(app(id)).unwrap();
                        tx.add_property(v, ptype, &PropertyValue::U64(val)).unwrap();
                    }
                    tx.commit().unwrap();
                    oracle
                        .log
                        .lock()
                        .unwrap()
                        .push((eng.last_commit_epoch(), id, val));
                }
                created.insert(id);
            }
            SiOp::BeginRead(slot) => {
                if !open_slots[slot] {
                    open_slots[slot] = true;
                    if slot % n == me {
                        let tx = eng.begin(AccessMode::ReadOnly);
                        let snap = tx.snapshot_epoch().expect("read-only pins by default");
                        open[slot] = Some((tx, snap));
                    }
                }
            }
            SiOp::EndRead(slot) => {
                if open_slots[slot] {
                    open_slots[slot] = false;
                    if let Some((tx, snap)) = open[slot].take() {
                        check(&tx, snap, &mut divergences);
                        tx.commit().unwrap();
                    }
                }
            }
        }
    }
    // close leftover pins, still checking them
    for slot in open.iter_mut().take(SLOTS) {
        eng.ctx().barrier();
        if let Some((tx, snap)) = slot.take() {
            check(&tx, snap, &mut divergences);
            tx.commit().unwrap();
        }
    }
    eng.ctx().barrier();
    divergences
}

/// In-memory differential at (backend, nranks).
fn si_divergences(backend: BackendKind, nranks: usize, ops: &[SiOp]) -> Vec<String> {
    let (db, fabric) = GdaDb::with_fabric_on(
        "sidiff",
        GdaConfig::tiny(),
        nranks,
        CostModel::zero(),
        backend,
    );
    let oracle = Oracle {
        base: BTreeMap::new(),
        log: Mutex::new(Vec::new()),
    };
    let all = fabric.run(|ctx| {
        let eng = db.attach(ctx);
        eng.init_collective();
        let ptype = install_ptype(&eng);
        let mut created = std::collections::BTreeSet::new();
        apply_si_ops(&eng, ptype, ops, &oracle, &mut created)
    });
    all.into_iter().flatten().collect()
}

/// Differential across a crash: phase-1 ops, checkpoint, crash,
/// recover, then phase-2 ops with live snapshot checks. The recovered
/// watermark must cover every pre-crash epoch, or a fresh phase-2 pin
/// would miss committed phase-1 state (caught as a divergence).
fn si_divergences_recovered(
    backend: BackendKind,
    nranks: usize,
    ops1: &[SiOp],
    ops2: &[SiOp],
    dir: &std::path::Path,
) -> Vec<String> {
    let oracle1 = Oracle {
        base: BTreeMap::new(),
        log: Mutex::new(Vec::new()),
    };
    let mut created_after_p1 = std::collections::BTreeSet::new();
    {
        let (db, fabric) = GdaDb::with_fabric_on(
            "sidur",
            GdaConfig::tiny(),
            nranks,
            CostModel::zero(),
            backend,
        );
        db.enable_persistence(PersistOptions::new(dir).backend(backend))
            .unwrap();
        let phase1 = fabric.run(|ctx| {
            let eng = db.attach(ctx);
            eng.init_collective();
            let ptype = install_ptype(&eng);
            let mut created = std::collections::BTreeSet::new();
            let d = apply_si_ops(&eng, ptype, ops1, &oracle1, &mut created);
            eng.checkpoint().unwrap();
            (d, created)
        });
        let mut divergences: Vec<String> = Vec::new();
        for (d, created) in phase1 {
            divergences.extend(d);
            created_after_p1 = created;
        }
        if !divergences.is_empty() {
            return divergences;
        }
        // drop: the crash — everything in memory is lost
    }
    let base: BTreeMap<u64, u64> = {
        let mut m = BTreeMap::new();
        for &(_, id, val) in oracle1.log.lock().unwrap().iter() {
            m.insert(id, val);
        }
        m
    };
    let oracle2 = Oracle {
        base,
        log: Mutex::new(Vec::new()),
    };
    let (db, fabric, plan) =
        recover(PersistOptions::new(dir).backend(backend), CostModel::zero()).unwrap();
    let all = fabric.run(|ctx| {
        let eng = db.attach(ctx);
        let rec = plan.restore_rank(&eng).unwrap();
        assert_eq!(rec.errors, 0, "replay errors: {rec:?}");
        let ptype = eng.meta().ptype_from_name("val").unwrap();
        let mut created = created_after_p1.clone();
        apply_si_ops(&eng, ptype, ops2, &oracle2, &mut created)
    });
    all.into_iter().flatten().collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Every snapshot read equals the sequential oracle at its pinned
    /// epoch — readers held open across concurrent committed writes
    /// must keep returning the pinned versions (chain walks), at
    /// P ∈ {1, 2, 4} under both backends.
    #[test]
    fn snapshot_reads_match_sequential_oracle(
        ops in prop::collection::vec(arb_si_op(), 1..20),
    ) {
        for backend in [BackendKind::Sim, BackendKind::Wall] {
            for nranks in [1usize, 2, 4] {
                let d = si_divergences(backend, nranks, &ops);
                prop_assert!(
                    d.is_empty(),
                    "SI divergence at {:?} P={}:\n{}\nops {:?}",
                    backend, nranks, d.join("\n"), ops
                );
            }
        }
    }

    /// The same differential across checkpoint + crash + recovery: the
    /// recovered watermark and truncated chains must keep phase-2
    /// snapshot reads oracle-exact.
    #[test]
    fn snapshot_reads_match_oracle_after_recovery(
        ops1 in prop::collection::vec(arb_si_op(), 1..12),
        ops2 in prop::collection::vec(arb_si_op(), 1..12),
    ) {
        for backend in [BackendKind::Sim, BackendKind::Wall] {
            for nranks in [1usize, 2, 4] {
                let td = ScratchDir::new("sirec");
                let d = si_divergences_recovered(backend, nranks, &ops1, &ops2, td.path());
                prop_assert!(
                    d.is_empty(),
                    "post-recovery SI divergence at {:?} P={}:\n{}\nops1 {:?}\nops2 {:?}",
                    backend, nranks, d.join("\n"), ops1, ops2
                );
            }
        }
    }
}

//! Service-layer resilience regression tests: degraded read-only mode
//! (entered on a failed checkpoint or an erroring store, exited by the
//! next successful checkpoint), per-op deadlines, and idempotent retry
//! over the dedup window — all driven through injected faults on the
//! shared fault plane (`gda::faults`).

use std::sync::Arc;
use std::time::Duration;

use gda::faults::{self, FaultMode, PERSISTENT};
use gda::persist::PersistOptions;
use gda::{GdaConfig, GdaDb};
use gdi::AppVertexId;
use rma::CostModel;
use server::{GdiServer, Op, OpOutcome, OpReply, ServerOptions, SubmitError};
use workloads::scratch::ScratchDir;

fn add(v: u64) -> Op {
    Op::AddVertex {
        v: AppVertexId(v),
        label: None,
        prop: None,
    }
}

fn count(v: u64) -> Op {
    Op::CountEdges { v: AppVertexId(v) }
}

/// Boot a tiny persistence-enabled database and serve it while `body`
/// drives sessions against the server.
fn with_server(
    name: &str,
    dir: Option<&std::path::Path>,
    opts: ServerOptions,
    body: impl FnOnce(&GdiServer, &Arc<GdaDb>),
) {
    let cfg = GdaConfig::tiny();
    let nranks = 2;
    let db = GdaDb::new(name, cfg, nranks);
    if let Some(dir) = dir {
        db.enable_persistence(PersistOptions::new(dir))
            .expect("fresh persistence dir");
    }
    let fabric = cfg.build_fabric(nranks, CostModel::zero());
    fabric.run(|ctx| {
        db.attach(ctx).init_collective();
    });
    let srv = GdiServer::new(db.clone(), opts);
    std::thread::scope(|scope| {
        let s = &srv;
        let ranks = scope.spawn(move || fabric.run(|ctx| s.serve_rank(ctx)));
        body(&srv, &db);
        srv.shutdown();
        ranks.join().expect("serving fabric panicked");
    });
}

/// A failed collective checkpoint (injected snapshot-write fault) must
/// flip the server into degraded read-only mode: reads keep serving with
/// zero aborts, writes are rejected with the typed [`SubmitError::ReadOnly`],
/// and the first *successful* checkpoint exits degradation.
#[test]
fn failed_checkpoint_degrades_to_read_only_until_checkpoint_succeeds() {
    let dir = ScratchDir::new("resilience-degraded");
    with_server(
        "degraded",
        Some(dir.path()),
        ServerOptions::default(),
        |srv, db| {
            let session = srv.session();
            for v in 1..=8 {
                assert!(matches!(
                    session.execute(add(v)),
                    Ok(OpOutcome::Committed(_))
                ));
            }
            srv.checkpoint().expect("healthy checkpoint");
            assert!(!srv.degraded());

            // every snapshot write on rank 0 now fails: the next
            // checkpoint vote aborts on all ranks
            let store = db.persistence().expect("persistence enabled");
            store.fault_plane().arm_at(
                faults::SNAP_WRITE,
                Some(0),
                0,
                PERSISTENT,
                FaultMode::Error,
            );
            assert!(srv.checkpoint().is_err());
            assert!(srv.degraded(), "failed checkpoint must degrade");

            // reads keep serving — zero read aborts
            for v in 1..=8 {
                assert_eq!(
                    session.execute(count(v)).expect("reads pass admission"),
                    OpOutcome::Committed(OpReply::Count(0)),
                    "degraded reads must not abort"
                );
            }
            // writes are rejected with the typed error, unexecuted
            assert!(matches!(
                session.execute(add(99)),
                Err(SubmitError::ReadOnly)
            ));
            let m = srv.metrics();
            assert!(m.degraded);
            assert_eq!(m.degraded_entries, 1);
            assert!(m.write_rejects >= 1, "{m:?}");
            assert!(m.fault_hits >= 1, "injected fault must be visible");

            // the repaired store exits degradation on the next
            // successful checkpoint; writes are accepted again
            store.fault_plane().disarm_all();
            srv.checkpoint().expect("checkpoint after repair");
            assert!(!srv.degraded());
            assert!(matches!(
                session.execute(add(99)),
                Ok(OpOutcome::Committed(_))
            ));
        },
    );
}

/// Redo-log append errors observed on the store (commits whose
/// durability silently failed) must also degrade the server — and the
/// exit checkpoint captures the lost tail in a fresh snapshot.
#[test]
fn store_write_errors_degrade_to_read_only() {
    let dir = ScratchDir::new("resilience-logerr");
    with_server(
        "logerr",
        Some(dir.path()),
        ServerOptions::default(),
        |srv, db| {
            let session = srv.session();
            assert!(matches!(
                session.execute(add(1)),
                Ok(OpOutcome::Committed(_))
            ));
            let store = db.persistence().expect("persistence enabled");
            store
                .fault_plane()
                .arm_at(faults::REDO_APPEND, None, 0, PERSISTENT, FaultMode::Error);
            // this commit lands in memory but its redo append fails;
            // the serve loop's health observer must notice the error
            assert!(matches!(
                session.execute(add(2)),
                Ok(OpOutcome::Committed(_))
            ));
            let deadline = std::time::Instant::now() + Duration::from_secs(10);
            while !srv.degraded() && std::time::Instant::now() < deadline {
                std::thread::sleep(Duration::from_millis(1));
            }
            assert!(srv.degraded(), "store errors must degrade the server");
            assert!(matches!(
                session.execute(add(3)),
                Err(SubmitError::ReadOnly)
            ));
            assert!(matches!(
                session.execute(count(1)),
                Ok(OpOutcome::Committed(_))
            ));
            // repair + checkpoint: the snapshot covers the lost tail,
            // degradation exits, writes flow again
            store.fault_plane().disarm_all();
            srv.checkpoint().expect("exit checkpoint");
            assert!(!srv.degraded());
            assert!(matches!(
                session.execute(add(3)),
                Ok(OpOutcome::Committed(_))
            ));
        },
    );
}

/// A retried idempotency token must never double-apply: the serving
/// rank answers the retry from the dedup window instead of re-executing.
#[test]
fn idempotent_retry_never_double_applies() {
    with_server("idem", None, ServerOptions::default(), |srv, _db| {
        let session = srv.session();
        for v in [1, 2] {
            assert!(matches!(
                session.execute(add(v)),
                Ok(OpOutcome::Committed(_))
            ));
        }
        let edge = Op::AddEdge {
            from: AppVertexId(1),
            to: AppVertexId(2),
            label: None,
        };
        let first = session
            .execute_idempotent(edge.clone(), 42, 3)
            .expect("accepted");
        assert!(first.is_committed(), "{first:?}");
        // same token again — the "ack was lost, client retries" path
        let second = session.execute_idempotent(edge, 42, 3).expect("accepted");
        assert_eq!(second, first, "retry must return the recorded outcome");
        // the edge was applied exactly once
        assert_eq!(
            session.execute(count(1)).expect("read"),
            OpOutcome::Committed(OpReply::Count(1)),
            "token retry double-applied the edge"
        );
        assert!(srv.metrics().dedup_hits() >= 1);
    });
}

/// With a zero deadline every request outlives its budget in the queue
/// and must be shed *unexecuted* as `DeadlineExceeded`; the idempotent
/// helper burns its whole retry budget on the undecided outcome.
#[test]
fn zero_deadline_sheds_everything_unexecuted() {
    let opts = ServerOptions {
        deadline: Some(Duration::ZERO),
        ..ServerOptions::default()
    };
    with_server("deadline", None, opts, |srv, _db| {
        let session = srv.session();
        assert_eq!(
            session.execute(add(7)).expect("accepted"),
            OpOutcome::DeadlineExceeded
        );
        assert_eq!(
            session.execute(count(7)).expect("accepted"),
            OpOutcome::DeadlineExceeded
        );
        let out = session
            .execute_idempotent(add(8), 7, 2)
            .expect("accepted each attempt");
        assert_eq!(out, OpOutcome::DeadlineExceeded);
        let m = srv.metrics();
        assert!(m.deadline_misses() >= 5, "{m:?}");
        assert_eq!(m.retries, 2, "bounded retry budget");
        assert_eq!(m.committed(), 0, "nothing may have executed");
    });
}

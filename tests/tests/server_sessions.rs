//! Integration tests of the `server` service layer: concurrent-session
//! stress (exactly-once acknowledgement, no double-apply), group-commit
//! vs single-commit equivalence, OLAP jobs, admission control, the
//! ≥1000-session sustain check, translation-cache churn staleness and
//! the cached-vs-uncached equivalence property.

use gda::GdaDb;
use gdi::{AccessMode, AppVertexId, EdgeOrientation};
use graphgen::{sized_config, GraphSpec, LpgConfig};
use proptest::prelude::*;
use rma::CostModel;
use server::{AdmissionPolicy, GdiServer, Op, OpOutcome, ServerOptions};
use workloads::oltp::Mix;
use workloads::traffic::{load_and_serve, TrafficConfig};

fn spec(scale: u32, seed: u64) -> GraphSpec {
    GraphSpec {
        scale,
        edge_factor: 4,
        seed,
        lpg: LpgConfig::default(),
    }
}

/// A config with headroom for `extra` server-inserted vertices/edges.
fn server_cfg(s: &GraphSpec, nranks: usize, extra: usize) -> gda::GdaConfig {
    let mut cfg = sized_config(s, nranks);
    cfg.blocks_per_rank += (extra * 4).next_power_of_two();
    cfg.dht_heap_per_rank += (extra * 2).next_power_of_two();
    cfg
}

/// ≥64 concurrent sessions hammering a small graph with the
/// write-intensive mix: every session must observe exactly one outcome
/// per accepted op (no lost acks), and the server-side counters must
/// agree with the client-side ones (no double ack / double count).
#[test]
fn stress_64_sessions_conflicting_writes_exactly_once() {
    let s = spec(7, 11);
    let nranks = 4;
    let sessions = 64;
    let ops = 12;
    let db_cfg = server_cfg(&s, nranks, sessions * ops);
    let (db, fabric) = GdaDb::with_fabric("stress", db_cfg, nranks, CostModel::default());

    let cfg = TrafficConfig {
        sessions,
        ops_per_session: ops,
        mix: Mix::WRITE_INTENSIVE,
        seed: 99,
        workers: 8,
    };
    let run = load_and_serve(&db, &fabric, ServerOptions::default(), &s, &cfg);

    // client side: every session got exactly one ack per accepted op
    assert_eq!(run.traffic.per_session.len(), sessions);
    for (i, sr) in run.traffic.per_session.iter().enumerate() {
        assert_eq!(
            sr.acks + sr.rejected,
            ops as u64,
            "session {i}: acks {} + rejected {} != ops {ops}",
            sr.acks,
            sr.rejected
        );
        assert_eq!(
            sr.committed + sr.aborted + sr.indeterminate,
            sr.acks,
            "session {i}: outcome accounting broken"
        );
    }
    // blocking admission never sheds
    assert_eq!(run.traffic.rejected(), 0);
    assert_eq!(run.traffic.acks(), (sessions * ops) as u64);

    // server side agrees with client side
    let committed: u64 = run.metrics.committed();
    let aborted: u64 = run.metrics.aborted();
    assert_eq!(committed, run.traffic.committed(), "commit ack mismatch");
    // server counters fold commit-uncertain outcomes into "not committed"
    assert_eq!(
        aborted,
        run.traffic.aborted() + run.traffic.indeterminate(),
        "abort ack mismatch"
    );
    // the serve loops really did drain in batches
    let executed: u64 = run.summaries.iter().map(|r| r.executed).sum();
    assert_eq!(executed, (sessions * ops) as u64);
    assert!(committed > 0, "a write-intensive run must commit something");
}

/// Double-apply detector: sessions concurrently add fan-out edges from
/// one hub vertex; afterwards the hub's out-degree must equal exactly
/// the number of *committed* AddEdge acks — a lost ack or a re-applied
/// op would break the count.
#[test]
fn committed_edge_acks_match_stored_degree() {
    let s = spec(7, 5);
    let nranks = 4;
    let sessions = 48u64;
    let db_cfg = server_cfg(&s, nranks, 4096);
    let (db, fabric) = GdaDb::with_fabric("hub", db_cfg, nranks, CostModel::default());

    // load
    fabric.run(|ctx| {
        let eng = db.attach(ctx);
        eng.init_collective();
        graphgen::load_into(&eng, &s);
    });

    let hub = AppVertexId(0);
    let n = s.n_vertices();
    let before: usize = fabric.run(|ctx| {
        let eng = db.attach(ctx);
        if ctx.rank() == 0 {
            let tx = eng.begin(AccessMode::ReadOnly);
            let h = tx.translate_vertex_id(hub).unwrap();
            let d = tx.edge_count(h, EdgeOrientation::Outgoing).unwrap();
            tx.commit().unwrap();
            d
        } else {
            0
        }
    })[0];

    // serve: each session adds 6 distinct edges hub -> (spread targets)
    let server = GdiServer::new(db.clone(), ServerOptions::default());
    let mut committed_adds = 0u64;
    std::thread::scope(|scope| {
        let srv = &server;
        let fab = &fabric;
        let ranks = scope.spawn(move || fab.run(|ctx| srv.serve_rank(ctx)));
        let mut handles = Vec::new();
        for sid in 0..sessions {
            let srv = server.clone();
            handles.push(scope.spawn(move || {
                let session = srv.session();
                let mut committed = 0u64;
                for k in 0..6u64 {
                    let target = AppVertexId((1 + sid * 6 + k) % n);
                    let out = session
                        .execute(Op::AddEdge {
                            from: hub,
                            to: target,
                            label: None,
                        })
                        .expect("submission accepted");
                    if out.is_committed() {
                        committed += 1;
                    }
                }
                committed
            }));
        }
        for h in handles {
            committed_adds += h.join().expect("session thread panicked");
        }
        srv.shutdown();
        ranks.join().expect("serving fabric panicked");
    });

    let after: usize = fabric.run(|ctx| {
        let eng = db.attach(ctx);
        if ctx.rank() == 0 {
            let tx = eng.begin(AccessMode::ReadOnly);
            let h = tx.translate_vertex_id(hub).unwrap();
            let d = tx.edge_count(h, EdgeOrientation::Outgoing).unwrap();
            tx.commit().unwrap();
            d
        } else {
            0
        }
    })[0];

    assert_eq!(
        after - before,
        committed_adds as usize,
        "stored out-degree delta must equal committed AddEdge acks \
         (lost ack or double-apply otherwise)"
    );
}

/// Group commit and one-transaction-per-request serving must reach the
/// same final state on a conflict-free workload (and commit everything).
#[test]
fn group_commit_equals_single_commit_on_disjoint_writes() {
    let s = spec(7, 21);
    let nranks = 4;
    let sessions = 32u64;
    let per = 4u64; // creates per session

    let extract = |opts: ServerOptions, name: &str| -> Vec<(u64, usize)> {
        let db_cfg = server_cfg(&s, nranks, 4096);
        let (db, fabric) = GdaDb::with_fabric(name, db_cfg, nranks, CostModel::default());
        fabric.run(|ctx| {
            let eng = db.attach(ctx);
            eng.init_collective();
            graphgen::load_into(&eng, &s);
        });
        let n = s.n_vertices();
        let server = GdiServer::new(db.clone(), opts);
        std::thread::scope(|scope| {
            let srv = &server;
            let fab = &fabric;
            let ranks = scope.spawn(move || fab.run(|ctx| srv.serve_rank(ctx)));
            let mut handles = Vec::new();
            for sid in 0..sessions {
                let srv = server.clone();
                handles.push(scope.spawn(move || {
                    let session = srv.session();
                    for k in 0..per {
                        let v = AppVertexId(n + 1 + sid * per + k);
                        let out = session
                            .execute(Op::AddVertex {
                                v,
                                label: None,
                                prop: None,
                            })
                            .unwrap();
                        assert!(
                            out.is_committed(),
                            "disjoint create must commit, got {out:?}"
                        );
                        // link the new vertex to a deterministic base one
                        let out = session
                            .execute(Op::AddEdge {
                                from: v,
                                to: AppVertexId((sid * per + k) % n),
                                label: None,
                            })
                            .unwrap();
                        assert!(out.is_committed(), "disjoint edge must commit");
                    }
                }));
            }
            for h in handles {
                h.join().unwrap();
            }
            srv.shutdown();
            ranks.join().unwrap();
        });

        // canonical state: (app id, out-degree) of every server-created
        // vertex, in app-id order
        let states = fabric.run(|ctx| {
            let eng = db.attach(ctx);
            let mut out = Vec::new();
            if ctx.rank() == 0 {
                let tx = eng.begin(AccessMode::ReadOnly);
                for sid in 0..sessions {
                    for k in 0..per {
                        let app = n + 1 + sid * per + k;
                        let v = tx
                            .translate_vertex_id(AppVertexId(app))
                            .expect("created vertex must exist");
                        let d = tx.edge_count(v, EdgeOrientation::Outgoing).unwrap();
                        out.push((app, d));
                    }
                }
                tx.commit().unwrap();
            }
            out
        });
        let mut state = states.into_iter().next().unwrap();
        state.sort_unstable();
        state
    };

    let grouped = extract(ServerOptions::default(), "grouped");
    let single = extract(ServerOptions::unbatched(), "single");
    assert_eq!(
        grouped, single,
        "group commit must produce the same state as per-request commits"
    );
    assert!(grouped.iter().all(|&(_, d)| d == 1));
}

/// A collective OLAP job runs between interactive batches and returns a
/// scalar to the submitting session.
#[test]
fn olap_job_rendezvous_during_serving() {
    let s = spec(7, 3);
    let nranks = 3;
    let db_cfg = server_cfg(&s, nranks, 512);
    let (db, fabric) = GdaDb::with_fabric("olap", db_cfg, nranks, CostModel::default());
    fabric.run(|ctx| {
        let eng = db.attach(ctx);
        eng.init_collective();
        graphgen::load_into(&eng, &s);
    });

    let n = s.n_vertices();
    let server = GdiServer::new(db.clone(), ServerOptions::default());
    std::thread::scope(|scope| {
        let srv = &server;
        let fab = &fabric;
        let ranks = scope.spawn(move || fab.run(|ctx| srv.serve_rank(ctx)));

        // interactive traffic on the side
        let session = server.session();
        for i in 0..20u64 {
            session
                .execute(Op::CountEdges {
                    v: AppVertexId(i % n),
                })
                .unwrap();
        }
        // collective job: every rank resolves the vertices it owns, the
        // allreduced total must cover the whole graph
        let ticket = server
            .submit_olap(move |eng| {
                let tx = eng.begin(AccessMode::ReadOnly);
                let mut local = 0u64;
                for app in 0..n {
                    let id = AppVertexId(app);
                    if gda::dptr::owner_rank(id, eng.nranks()) == eng.rank()
                        && tx.translate_vertex_id(id).is_ok()
                    {
                        local += 1;
                    }
                }
                tx.commit().unwrap();
                eng.ctx().allreduce_sum_u64(local) as f64
            })
            .unwrap();
        let out = ticket.wait();
        match out {
            OpOutcome::Committed(server::OpReply::Scalar(total)) => {
                assert_eq!(total as u64, n, "OLAP job must see every vertex");
            }
            other => panic!("unexpected OLAP outcome {other:?}"),
        }
        server.shutdown();
        ranks.join().unwrap();
    });
}

/// Reject-mode admission control sheds load instead of blocking, and the
/// shed/served accounting stays exact.
#[test]
fn admission_control_sheds_overload() {
    let s = spec(7, 8);
    let nranks = 2;
    let db_cfg = server_cfg(&s, nranks, 2048);
    let (db, fabric) = GdaDb::with_fabric("shed", db_cfg, nranks, CostModel::default());

    let opts = ServerOptions {
        queue_capacity: 4, // tiny queues → guaranteed overload
        admission: AdmissionPolicy::Reject,
        ..ServerOptions::default()
    };
    let cfg = TrafficConfig {
        sessions: 32,
        ops_per_session: 10,
        mix: Mix::READ_INTENSIVE,
        seed: 12,
        workers: 8,
    };
    let run = load_and_serve(&db, &fabric, opts, &s, &cfg);

    let total = (cfg.sessions * cfg.ops_per_session) as u64;
    assert_eq!(run.traffic.acks() + run.traffic.rejected(), total);
    assert_eq!(
        run.traffic.acks(),
        run.traffic.committed() + run.traffic.aborted() + run.traffic.indeterminate()
    );
    // server-side shed counter agrees with the client view
    assert_eq!(run.metrics.rejected(), run.traffic.rejected());
}

/// Acceptance check: ≥1000 concurrent sessions on a 4-rank fabric, no
/// deadlock, no dropped response.
#[test]
fn sustains_1000_sessions_on_4_ranks() {
    let s = spec(8, 17);
    let nranks = 4;
    let sessions = 1000;
    let ops = 3;
    let db_cfg = server_cfg(&s, nranks, sessions * ops);
    let (db, fabric) = GdaDb::with_fabric("big", db_cfg, nranks, CostModel::default());

    let cfg = TrafficConfig {
        sessions,
        ops_per_session: ops,
        mix: Mix::LINKBENCH,
        seed: 7,
        workers: 16,
    };
    let run = load_and_serve(&db, &fabric, ServerOptions::default(), &s, &cfg);

    assert_eq!(run.traffic.per_session.len(), sessions);
    assert_eq!(run.traffic.rejected(), 0, "blocking admission never sheds");
    assert_eq!(run.traffic.acks(), (sessions * ops) as u64);
    assert!(run.traffic.committed() > 0);
    // latency metrics captured something sensible
    let lat = run.metrics.latency();
    assert_eq!(lat.count(), (sessions * ops) as u64);
    assert!(lat.percentile_ns(50.0) <= lat.percentile_ns(99.0));
    // fabric drain counters flowed through rma::CommStats
    let drained: u64 = run
        .metrics
        .per_rank
        .iter()
        .filter_map(|r| r.fabric.as_ref().map(|f| f.requests_served))
        .sum();
    assert_eq!(drained, (sessions * ops) as u64);
}

/// Translation-cache churn: concurrent sessions add, read, delete and
/// re-read their own (disjoint) vertices while also reading the shared
/// base graph and racing edges against other sessions' churn. The cache
/// must never serve a stale translation: a read of a vertex whose delete
/// was acknowledged must abort, a read of a just-added vertex and of any
/// base vertex must commit.
#[test]
fn churn_sessions_never_serve_stale_translations() {
    let s = spec(7, 31);
    let nranks = 4;
    let sessions = 16u64;
    let cycles = 8u64;
    let db_cfg = server_cfg(&s, nranks, (sessions * cycles * 4) as usize);
    assert!(db_cfg.translation_cache, "cache must be on for this test");
    let (db, fabric) = GdaDb::with_fabric("churn", db_cfg, nranks, CostModel::default());
    fabric.run(|ctx| {
        let eng = db.attach(ctx);
        eng.init_collective();
        graphgen::load_into(&eng, &s);
    });

    let n = s.n_vertices();
    let server = GdiServer::new(db.clone(), ServerOptions::default());
    std::thread::scope(|scope| {
        let srv = &server;
        let fab = &fabric;
        let ranks = scope.spawn(move || fab.run(|ctx| srv.serve_rank(ctx)));
        let mut handles = Vec::new();
        for sid in 0..sessions {
            let srv = server.clone();
            handles.push(scope.spawn(move || {
                let session = srv.session();
                for c in 0..cycles {
                    let v = AppVertexId(n + 1 + sid * 1000 + c);
                    let out = session
                        .execute(Op::AddVertex {
                            v,
                            label: None,
                            prop: None,
                        })
                        .unwrap();
                    assert!(out.is_committed(), "fresh add must commit: {out:?}");
                    // a read straight after the acknowledged add (same
                    // owner rank, FIFO): a stale *negative* cache entry
                    // would abort it
                    let out = session.execute(Op::CountEdges { v }).unwrap();
                    assert!(out.is_committed(), "read-after-add aborted: {out:?}");
                    // racing edge against a neighbour session's churned
                    // vertex: either outcome is legal, but the ack must
                    // arrive (no wedge, no panic)
                    let peer = AppVertexId(n + 1 + ((sid + 1) % sessions) * 1000 + c);
                    let _ = session
                        .execute(Op::AddEdge {
                            from: v,
                            to: peer,
                            label: None,
                        })
                        .unwrap();
                    let out = session.execute(Op::DeleteVertex { v }).unwrap();
                    assert!(out.is_committed(), "own delete must commit: {out:?}");
                    // the acknowledged delete must be visible: a stale
                    // *positive* cache entry would let this read commit
                    let out = session.execute(Op::CountEdges { v }).unwrap();
                    assert!(
                        !out.is_committed(),
                        "read-after-delete served a stale translation: {out:?}"
                    );
                    // base vertices are never deleted: always readable
                    let base = AppVertexId((sid * cycles + c) % n);
                    let out = session.execute(Op::CountEdges { v: base }).unwrap();
                    assert!(out.is_committed(), "base read aborted: {out:?}");
                }
            }));
        }
        for h in handles {
            h.join().expect("churn session panicked");
        }
        srv.shutdown();
        ranks.join().expect("serving fabric panicked");
    });

    // the cache was actually in play, and its counters flowed through
    // the fabric reports into the server metrics
    let m = server.metrics();
    assert!(
        m.cache_hits() > 0,
        "translation cache never hit during churn"
    );
    assert!(m.cache_misses() > 0);
}

/// Property: a single closed-loop session applying an arbitrary op
/// sequence observes *identical* outcomes (and leaves identical final
/// state) whether the translation cache is on or off.
#[derive(Debug, Clone)]
enum POp {
    Add(u64),
    Del(u64),
    Read(u64),
    Edge(u64, u64),
}

/// Run `ops` through a fresh server; returns per-op outcome summaries
/// and the final `(app id, out-degree)` state of every live vertex.
fn replay(ops: &[POp], s: &GraphSpec, cached: bool) -> (Vec<String>, Vec<(u64, usize)>) {
    let nranks = 2;
    let mut db_cfg = server_cfg(s, nranks, 4 * ops.len() + 64);
    db_cfg.translation_cache = cached;
    let name = if cached { "prop-cached" } else { "prop-raw" };
    let (db, fabric) = GdaDb::with_fabric(name, db_cfg, nranks, CostModel::default());
    fabric.run(|ctx| {
        let eng = db.attach(ctx);
        eng.init_collective();
        graphgen::load_into(&eng, s);
    });
    let server = GdiServer::new(db.clone(), ServerOptions::default());
    let mut outcomes = Vec::with_capacity(ops.len());
    std::thread::scope(|scope| {
        let srv = &server;
        let fab = &fabric;
        let ranks = scope.spawn(move || fab.run(|ctx| srv.serve_rank(ctx)));
        let session = server.session();
        for op in ops {
            let op = match *op {
                POp::Add(v) => Op::AddVertex {
                    v: AppVertexId(v),
                    label: None,
                    prop: None,
                },
                POp::Del(v) => Op::DeleteVertex { v: AppVertexId(v) },
                POp::Read(v) => Op::CountEdges { v: AppVertexId(v) },
                POp::Edge(a, b) => Op::AddEdge {
                    from: AppVertexId(a),
                    to: AppVertexId(b),
                    label: None,
                },
            };
            outcomes.push(format!("{:?}", session.execute(op).unwrap()));
        }
        srv.shutdown();
        ranks.join().expect("serving fabric panicked");
    });
    // canonical final state through the *uncached* diagnostic path
    let n = s.n_vertices();
    let states = fabric.run(|ctx| {
        let eng = db.attach(ctx);
        let mut out = Vec::new();
        if ctx.rank() == 0 {
            let tx = eng.begin(AccessMode::ReadOnly);
            for app in 0..(n + 64) {
                if eng.peek_translate(AppVertexId(app)).is_some() {
                    let id = tx.translate_vertex_id(AppVertexId(app)).unwrap();
                    let d = tx.edge_count(id, EdgeOrientation::Any).unwrap();
                    out.push((app, d));
                }
            }
            tx.commit().unwrap();
        }
        out
    });
    (outcomes, states.into_iter().next().unwrap())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn cached_and_uncached_replays_are_identical(
        raw_ops in prop::collection::vec((0u8..4, 0u64..24, 0u64..24), 1..32)
    ) {
        let s = spec(6, 13);
        let n = s.n_vertices();
        // map the raw tuples onto ops over a mixed id space: base-graph
        // ids (always present initially) and fresh ids (created/deleted
        // by the sequence itself)
        let id = |x: u64, fresh: bool| if fresh { n + 1 + (x % 24) } else { x % n };
        let ops: Vec<POp> = raw_ops
            .iter()
            .map(|&(k, x, y)| match k {
                0 => POp::Add(id(x, true)),
                1 => POp::Del(id(x, y % 2 == 0)),
                2 => POp::Read(id(x, y % 2 == 0)),
                _ => POp::Edge(id(x, y % 3 == 0), id(y, x % 3 == 0)),
            })
            .collect();
        let (out_cached, state_cached) = replay(&ops, &s, true);
        let (out_raw, state_raw) = replay(&ops, &s, false);
        prop_assert_eq!(out_cached, out_raw);
        prop_assert_eq!(state_cached, state_raw);
    }
}

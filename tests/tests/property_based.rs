//! Property-based tests (proptest) on the core data structures and
//! invariants: holder serialization, distributed pointers, property-value
//! codecs, constraints, histograms and the DHT under arbitrary operation
//! sequences.

use proptest::prelude::*;

use gda::dptr::{DPtr, TaggedIdx};
use gda::holder::{EdgeRecord, Entry, Holder};
use gdi::{CmpOp, Constraint, Datatype, Direction, LabelId, PTypeId, PropertyValue, Subconstraint};

// ---------------------------------------------------------------------
// DPtr / TaggedIdx
// ---------------------------------------------------------------------

proptest! {
    #[test]
    fn dptr_roundtrips(rank in 0usize..=u16::MAX as usize, off in 0u64..(1u64 << 48)) {
        let p = DPtr::new(rank, off);
        prop_assert_eq!(p.rank(), rank);
        prop_assert_eq!(p.offset(), off);
        prop_assert_eq!(DPtr::from_raw(p.raw()), p);
    }

    #[test]
    fn tagged_idx_bump_never_collides_with_original(tag in any::<u16>(), idx in 0u64..(1u64<<48), idx2 in 0u64..(1u64<<48)) {
        let t = TaggedIdx::new(tag, idx);
        // one bump always changes the raw value, even if pointing back at
        // the same index — the ABA property
        prop_assert_ne!(t.bump(idx2).raw(), t.raw());
        prop_assert_eq!(t.bump(idx2).idx(), idx2);
    }
}

// ---------------------------------------------------------------------
// Holder serialization
// ---------------------------------------------------------------------

fn arb_direction() -> impl Strategy<Value = Direction> {
    prop_oneof![
        Just(Direction::Out),
        Just(Direction::In),
        Just(Direction::Undirected)
    ]
}

fn arb_edge() -> impl Strategy<Value = EdgeRecord> {
    (
        0usize..64,
        0u64..(1u64 << 40),
        any::<u32>(),
        arb_direction(),
        prop::bool::ANY,
    )
        .prop_map(|(rank, off, label, dir, tomb)| {
            let mut e = EdgeRecord::lightweight(DPtr::new(rank, off & !7), label, dir);
            if tomb {
                e.flags |= EdgeRecord::TOMBSTONE;
            }
            e
        })
}

fn arb_entry() -> impl Strategy<Value = Entry> {
    prop_oneof![
        (1u32..2000).prop_map(|l| Entry::label(LabelId(l))),
        (3u32..500, prop::collection::vec(any::<u8>(), 0..100))
            .prop_map(|(p, data)| Entry::property(PTypeId(p), data)),
    ]
}

fn arb_holder() -> impl Strategy<Value = Holder> {
    (
        any::<u64>(),
        prop::bool::ANY,
        any::<u64>(),
        any::<u64>(),
        any::<u64>(),
        any::<u64>(),
        prop::collection::vec(arb_edge(), 0..24),
        prop::collection::vec(arb_entry(), 0..16),
    )
        .prop_map(
            |(app_id, is_edge, version, commit_epoch, prev, depth, edges, entries)| Holder {
                app_id,
                is_edge,
                version,
                commit_epoch,
                prev,
                depth: depth as u8,
                edges,
                entries,
            },
        )
}

proptest! {
    #[test]
    fn holder_encode_decode_roundtrip(h in arb_holder()) {
        let bytes = h.encode();
        prop_assert_eq!(bytes.len(), h.encoded_len());
        prop_assert_eq!(Holder::peek_total_len(&bytes), bytes.len());
        prop_assert_eq!(Holder::decode(&bytes), h);
    }

    #[test]
    fn holder_label_ops_preserve_properties(h in arb_holder(), l in 1u32..2000) {
        let mut h2 = h.clone();
        let label = LabelId(l);
        h2.add_label(label);
        prop_assert!(h2.has_label(label));
        // property entries untouched by label operations
        prop_assert_eq!(h2.ptypes(), h.ptypes());
        h2.remove_label(label);
        prop_assert!(!h2.has_label(label));
    }

    #[test]
    fn holder_edge_count_equals_live_records(h in arb_holder()) {
        let live = h.edges.iter().filter(|e| !e.is_tombstone()).count();
        prop_assert_eq!(h.edge_count(), live);
        prop_assert_eq!(h.live_edges().count(), live);
    }

    #[test]
    fn compaction_preserves_live_edges(h in arb_holder()) {
        let mut h2 = h.clone();
        let live: Vec<EdgeRecord> = h.live_edges().map(|(_, e)| *e).collect();
        h2.compact_edges();
        let after: Vec<EdgeRecord> = h2.live_edges().map(|(_, e)| *e).collect();
        prop_assert_eq!(live, after);
        prop_assert_eq!(h2.edges.len(), h2.edge_count());
    }
}

// ---------------------------------------------------------------------
// Property values
// ---------------------------------------------------------------------

proptest! {
    #[test]
    fn u64_value_roundtrip(v in any::<u64>()) {
        let pv = PropertyValue::U64(v);
        prop_assert_eq!(
            PropertyValue::decode(Datatype::Uint64, &pv.encode()).unwrap(),
            pv
        );
    }

    #[test]
    fn f64vec_roundtrip(v in prop::collection::vec(any::<f64>().prop_filter("finite", |x| x.is_finite()), 2..32)) {
        let pv = PropertyValue::F64Vec(v);
        prop_assert_eq!(
            PropertyValue::decode(Datatype::Double, &pv.encode()).unwrap(),
            pv
        );
    }

    #[test]
    fn text_roundtrip(s in ".{0,64}") {
        let pv = PropertyValue::Text(s);
        prop_assert_eq!(
            PropertyValue::decode(Datatype::Char, &pv.encode()).unwrap(),
            pv
        );
    }

    #[test]
    fn cmp_total_is_total_and_antisymmetric(a in any::<u64>(), b in any::<u64>()) {
        use std::cmp::Ordering;
        let x = PropertyValue::U64(a);
        let y = PropertyValue::U64(b);
        let xy = x.cmp_total(&y);
        let yx = y.cmp_total(&x);
        prop_assert_eq!(xy, yx.reverse());
        if a == b {
            prop_assert_eq!(xy, Ordering::Equal);
        }
    }
}

// ---------------------------------------------------------------------
// Constraints (DNF semantics)
// ---------------------------------------------------------------------

#[derive(Debug, Clone)]
struct Elem {
    labels: Vec<LabelId>,
    props: Vec<(PTypeId, u64)>,
}

impl gdi::constraint::ElementView for Elem {
    fn has_label(&self, label: LabelId) -> bool {
        self.labels.contains(&label)
    }
    fn properties(&self, ptype: PTypeId) -> Vec<PropertyValue> {
        self.props
            .iter()
            .filter(|(p, _)| *p == ptype)
            .map(|(_, v)| PropertyValue::U64(*v))
            .collect()
    }
}

fn arb_elem() -> impl Strategy<Value = Elem> {
    (
        prop::collection::vec(1u32..8, 0..4),
        prop::collection::vec((3u32..8, any::<u64>()), 0..5),
    )
        .prop_map(|(ls, ps)| Elem {
            labels: ls.into_iter().map(LabelId).collect(),
            props: ps.into_iter().map(|(p, v)| (PTypeId(p), v)).collect(),
        })
}

fn arb_sub() -> impl Strategy<Value = Subconstraint> {
    (
        prop::collection::vec((1u32..8, prop::bool::ANY), 0..3),
        prop::collection::vec(
            (
                3u32..8,
                prop_oneof![
                    Just(CmpOp::Eq),
                    Just(CmpOp::Ne),
                    Just(CmpOp::Lt),
                    Just(CmpOp::Le),
                    Just(CmpOp::Gt),
                    Just(CmpOp::Ge)
                ],
                any::<u64>(),
            ),
            0..3,
        ),
    )
        .prop_map(|(ls, ps)| {
            let mut s = Subconstraint::new();
            for (l, present) in ls {
                s = if present {
                    s.with_label(LabelId(l))
                } else {
                    s.without_label(LabelId(l))
                };
            }
            for (p, op, v) in ps {
                s = s.with_prop(PTypeId(p), op, PropertyValue::U64(v));
            }
            s
        })
}

proptest! {
    #[test]
    fn dnf_disjunction_is_or_of_conjunctions(
        subs in prop::collection::vec(arb_sub(), 1..4),
        e in arb_elem()
    ) {
        let c = subs.iter().fold(Constraint::any(), |c, s| c.or(s.clone()));
        let want = subs.iter().any(|s| s.eval(&e));
        prop_assert_eq!(c.eval(&e), want);
    }

    #[test]
    fn adding_a_true_subconstraint_makes_constraint_true(
        subs in prop::collection::vec(arb_sub(), 0..3),
        e in arb_elem()
    ) {
        let mut c = Constraint::default();
        for s in subs {
            c = c.or(s);
        }
        let c = c.or(Subconstraint::new()); // trivially true conjunction
        prop_assert!(c.eval(&e));
    }

    #[test]
    fn empty_constraint_matches_all(e in arb_elem()) {
        prop_assert!(Constraint::any().eval(&e));
    }
}

// ---------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------

proptest! {
    #[test]
    fn histogram_count_and_mean(samples in prop::collection::vec(1.0f64..1e9, 1..200)) {
        let mut h = workloads::Histogram::new();
        for &s in &samples {
            h.add(s);
        }
        prop_assert_eq!(h.count(), samples.len() as u64);
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        prop_assert!((h.mean_ns() - mean).abs() < 1e-6 * mean.max(1.0));
        // percentiles are monotone in p
        let p50 = h.percentile_ns(50.0);
        let p90 = h.percentile_ns(90.0);
        let p100 = h.percentile_ns(100.0);
        prop_assert!(p50 <= p90 && p90 <= p100);
        // max is within the top bucket bound
        prop_assert!(h.max_ns() <= p100);
    }

    #[test]
    fn histogram_merge_equals_bulk_add(
        a in prop::collection::vec(1.0f64..1e9, 0..100),
        b in prop::collection::vec(1.0f64..1e9, 0..100)
    ) {
        let mut ha = workloads::Histogram::new();
        let mut hb = workloads::Histogram::new();
        let mut hall = workloads::Histogram::new();
        for &s in &a { ha.add(s); hall.add(s); }
        for &s in &b { hb.add(s); hall.add(s); }
        ha.merge(&hb);
        // bucket counts and max must be identical; the mean only up to
        // floating-point summation order
        prop_assert_eq!(ha.count(), hall.count());
        prop_assert_eq!(ha.series(), hall.series());
        prop_assert_eq!(ha.max_ns(), hall.max_ns());
        let scale = hall.mean_ns().abs().max(1.0);
        prop_assert!((ha.mean_ns() - hall.mean_ns()).abs() < 1e-9 * scale);
    }
}

// ---------------------------------------------------------------------
// Generator invariants
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]
    #[test]
    fn edge_partitions_tile_the_stream(scale in 4u32..9, seed in any::<u64>(), nranks in 1usize..7) {
        let spec = graphgen::GraphSpec { scale, edge_factor: 4, seed, lpg: graphgen::LpgConfig::bare() };
        let whole = spec.edges_for_rank(0, 1);
        let parts: Vec<(u64, u64)> = (0..nranks).flat_map(|r| spec.edges_for_rank(r, nranks)).collect();
        prop_assert_eq!(whole, parts);
    }

    #[test]
    fn scramble_is_bijective_for_any_seed(scale in 4u32..12, seed in any::<u64>()) {
        let s = graphgen::KroneckerSampler::new(scale, seed);
        let n = 1u64 << scale;
        let mut seen = vec![false; n as usize];
        for v in 0..n {
            let x = s.scramble(v) as usize;
            prop_assert!(!seen[x]);
            seen[x] = true;
        }
    }
}
